//! Occupancy and seasonal profiles: when people are home and active, which
//! drives lighting, cooking, entertainment and hot-water loads.
//!
//! The simulation clock starts at `t = 0` = **Monday 00:00 UTC**, so weekday
//! versus weekend behaviour is a pure function of the timestamp.

use sms_core::timeseries::{Timestamp, SECONDS_PER_DAY};

/// Hour-resolution activity levels for one day, each in `[0, 1]`.
#[derive(Debug, Clone, Copy, PartialEq)]
pub struct DayProfile {
    /// Activity per hour-of-day.
    pub hourly: [f64; 24],
}

impl DayProfile {
    /// A typical 9-to-5 working household: morning and evening peaks,
    /// near-zero activity at night and low during office hours.
    pub fn working_weekday() -> Self {
        let mut h = [0.05; 24];
        h[6] = 0.5;
        h[7] = 0.9;
        h[8] = 0.6;
        h[9] = 0.15;
        for x in h.iter_mut().take(17).skip(10) {
            *x = 0.1;
        }
        h[17] = 0.5;
        h[18] = 0.9;
        h[19] = 1.0;
        h[20] = 0.95;
        h[21] = 0.8;
        h[22] = 0.5;
        h[23] = 0.2;
        DayProfile { hourly: h }
    }

    /// A weekend at home: later start, sustained daytime activity.
    pub fn weekend() -> Self {
        let mut h = [0.05; 24];
        for (i, x) in h.iter_mut().enumerate() {
            *x = match i {
                0..=7 => 0.05,
                8 => 0.3,
                9 => 0.6,
                10..=12 => 0.8,
                13..=17 => 0.7,
                18..=21 => 0.95,
                22 => 0.6,
                _ => 0.25,
            };
        }
        DayProfile { hourly: h }
    }

    /// A night-shift household: active at night, asleep through the morning.
    pub fn night_shift() -> Self {
        let mut h = [0.1; 24];
        for (i, x) in h.iter_mut().enumerate() {
            *x = match i {
                0..=4 => 0.7,
                5..=6 => 0.5,
                7..=13 => 0.05,
                14..=16 => 0.4,
                17..=20 => 0.6,
                21..=23 => 0.9,
                _ => 0.1,
            };
        }
        DayProfile { hourly: h }
    }

    /// A retiree/home-office household: steady moderate activity all day.
    pub fn home_all_day() -> Self {
        let mut h = [0.05; 24];
        for (i, x) in h.iter_mut().enumerate() {
            *x = match i {
                0..=6 => 0.05,
                7..=8 => 0.6,
                9..=17 => 0.55,
                18..=21 => 0.85,
                22 => 0.4,
                _ => 0.15,
            };
        }
        DayProfile { hourly: h }
    }

    /// Linear interpolation between hour anchors, so activity is continuous
    /// in time (no hard steps at hour boundaries).
    pub fn at_seconds(&self, second_of_day: i64) -> f64 {
        let s = second_of_day.rem_euclid(SECONDS_PER_DAY);
        let hour = (s / 3600) as usize;
        let frac = (s % 3600) as f64 / 3600.0;
        let next = (hour + 1) % 24;
        self.hourly[hour] * (1.0 - frac) + self.hourly[next] * frac
    }
}

/// Weekday + weekend pair, with an optional per-household clock shift
/// (early risers vs night owls — every real household has its own offset,
/// and this idiosyncrasy is part of what makes houses re-identifiable).
#[derive(Debug, Clone, Copy, PartialEq)]
pub struct WeeklyProfile {
    /// Monday–Friday profile.
    pub weekday: DayProfile,
    /// Saturday–Sunday profile.
    pub weekend: DayProfile,
    /// Shift of the household clock in seconds (positive = later schedule).
    pub shift_secs: i64,
}

impl WeeklyProfile {
    /// Standard working household.
    pub fn working() -> Self {
        WeeklyProfile {
            weekday: DayProfile::working_weekday(),
            weekend: DayProfile::weekend(),
            shift_secs: 0,
        }
    }

    /// Night-shift household (same rhythm all week).
    pub fn night_shift() -> Self {
        WeeklyProfile {
            weekday: DayProfile::night_shift(),
            weekend: DayProfile::night_shift(),
            shift_secs: 0,
        }
    }

    /// Home-all-day household.
    pub fn home_all_day() -> Self {
        WeeklyProfile {
            weekday: DayProfile::home_all_day(),
            weekend: DayProfile::home_all_day(),
            shift_secs: 0,
        }
    }

    /// The same profile shifted by whole/fractional hours.
    pub fn shifted(mut self, hours: f64) -> Self {
        self.shift_secs = (hours * 3600.0) as i64;
        self
    }

    /// Day-of-week index for a timestamp (0 = Monday, 6 = Sunday; the clock
    /// starts on a Monday).
    pub fn day_of_week(t: Timestamp) -> u8 {
        t.div_euclid(SECONDS_PER_DAY).rem_euclid(7) as u8
    }

    /// Whether `t` falls on a weekend.
    pub fn is_weekend(t: Timestamp) -> bool {
        Self::day_of_week(t) >= 5
    }

    /// Activity level in `[0, 1]` at timestamp `t` (household clock shift
    /// applied to the time-of-day, not to the weekday decision).
    pub fn activity_at(&self, t: Timestamp) -> f64 {
        let profile = if Self::is_weekend(t) { &self.weekend } else { &self.weekday };
        profile.at_seconds((t - self.shift_secs).rem_euclid(SECONDS_PER_DAY))
    }
}

/// Smooth annual seasonality in `[0, 1]`: 1 at mid-winter (heating peak),
/// 0 at mid-summer. The clock's day 0 is taken as January 1st.
pub fn winter_factor(t: Timestamp) -> f64 {
    let day_of_year = t.div_euclid(SECONDS_PER_DAY).rem_euclid(365) as f64;
    let phase = 2.0 * std::f64::consts::PI * day_of_year / 365.0;
    // Cosine peaking at day 15 (mid-January).
    0.5 + 0.5 * (phase - 2.0 * std::f64::consts::PI * 15.0 / 365.0).cos()
}

/// Daylight factor in `[0, 1]`: 1 at solar noon, 0 at night, with seasonal
/// day-length modulation. Drives the lighting load's inverse dependence.
pub fn daylight_factor(t: Timestamp) -> f64 {
    let s = t.rem_euclid(SECONDS_PER_DAY) as f64;
    let noon = 12.0 * 3600.0;
    // Half-day length: 6h in winter, 8.5h in summer.
    let half_day = 3600.0 * (8.5 - 2.5 * winter_factor(t));
    let d = (s - noon).abs();
    if d >= half_day {
        0.0
    } else {
        (std::f64::consts::FRAC_PI_2 * (1.0 - d / half_day)).sin()
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn day_of_week_starts_monday() {
        assert_eq!(WeeklyProfile::day_of_week(0), 0);
        assert_eq!(WeeklyProfile::day_of_week(SECONDS_PER_DAY * 5), 5);
        assert!(WeeklyProfile::is_weekend(SECONDS_PER_DAY * 6 + 100));
        assert!(!WeeklyProfile::is_weekend(SECONDS_PER_DAY * 7), "next Monday");
        assert_eq!(WeeklyProfile::day_of_week(-1), 6, "just before epoch is Sunday");
    }

    #[test]
    fn interpolation_is_continuous() {
        let p = DayProfile::working_weekday();
        // Just before and after an hour boundary should be close.
        let before = p.at_seconds(7 * 3600 - 1);
        let after = p.at_seconds(7 * 3600 + 1);
        assert!((before - after).abs() < 0.01);
        // Anchors hit exactly.
        assert_eq!(p.at_seconds(19 * 3600), 1.0);
    }

    #[test]
    fn profiles_bounded() {
        for p in [
            DayProfile::working_weekday(),
            DayProfile::weekend(),
            DayProfile::night_shift(),
            DayProfile::home_all_day(),
        ] {
            for s in (0..SECONDS_PER_DAY).step_by(600) {
                let a = p.at_seconds(s);
                assert!((0.0..=1.0).contains(&a), "{a} at {s}");
            }
        }
    }

    #[test]
    fn working_profile_peaks_in_evening() {
        let w = WeeklyProfile::working();
        let midnight = w.activity_at(3600);
        let evening = w.activity_at(19 * 3600);
        let office_hours = w.activity_at(14 * 3600);
        assert!(evening > office_hours);
        assert!(office_hours > midnight || midnight < 0.1);
    }

    #[test]
    fn weekend_differs_from_weekday_for_working_household() {
        let w = WeeklyProfile::working();
        // 11:00 Monday vs 11:00 Saturday.
        let monday = w.activity_at(11 * 3600);
        let saturday = w.activity_at(5 * SECONDS_PER_DAY + 11 * 3600);
        assert!(saturday > monday * 3.0, "weekend midday at home: {saturday} vs {monday}");
    }

    #[test]
    fn winter_factor_annual_cycle() {
        let jan = winter_factor(15 * SECONDS_PER_DAY);
        let jul = winter_factor(196 * SECONDS_PER_DAY);
        assert!(jan > 0.99, "mid-January is peak winter: {jan}");
        assert!(jul < 0.05, "mid-July is peak summer: {jul}");
    }

    #[test]
    fn daylight_zero_at_night_positive_at_noon() {
        assert_eq!(daylight_factor(2 * 3600), 0.0);
        assert!(daylight_factor(12 * 3600) > 0.9);
        // Summer days are longer: 18:30 is light in July, dark in January.
        let t_summer = 196 * SECONDS_PER_DAY + 18 * 3600 + 1800;
        let t_winter = 15 * SECONDS_PER_DAY + 18 * 3600 + 1800;
        assert!(daylight_factor(t_summer) > 0.0);
        assert_eq!(daylight_factor(t_winter), 0.0);
    }
}
