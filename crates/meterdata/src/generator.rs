//! Dataset generators: REDD-like (the paper's evaluation substrate),
//! Smart\*-like and Irish-CER-like presets (the other two datasets the paper
//! surveys in §3).

use crate::dataset::{HouseRecord, MeterDataset};
use crate::gaps::GapConfig;
use crate::house::{House, HouseConfig, Occupancy};
use sms_core::error::Result;
use sms_core::timeseries::{Timestamp, SECONDS_PER_DAY};

/// Everything needed to materialize a dataset.
#[derive(Debug, Clone)]
pub struct DatasetSpec {
    /// House configurations (ids must be unique).
    pub houses: Vec<HouseConfig>,
    /// Per-house gap policies, matched by index (defaults to moderate).
    pub gaps: Vec<GapConfig>,
    /// Simulation start timestamp.
    pub start: Timestamp,
    /// Duration in days.
    pub days: i64,
    /// Sampling interval in seconds (REDD ≈ 1, CER = 1800).
    pub interval_secs: i64,
    /// Master seed.
    pub seed: u64,
}

impl DatasetSpec {
    /// Materializes every house's series, with gaps applied.
    pub fn generate(&self) -> Result<MeterDataset> {
        let mut records = Vec::with_capacity(self.houses.len());
        for (i, cfg) in self.houses.iter().enumerate() {
            let house = House::build(cfg.clone(), self.seed);
            let raw =
                house.generate(self.start, self.days * SECONDS_PER_DAY, self.interval_secs)?;
            let gaps = self.gaps.get(i).copied().unwrap_or_else(GapConfig::moderate);
            let series = gaps.apply(&raw, self.seed ^ ((cfg.id as u64) << 8))?;
            records.push(HouseRecord { house_id: cfg.id, series });
        }
        MeterDataset::new(records, self.interval_secs)
    }
}

/// The six REDD-like house configurations. Houses differ in occupancy
/// rhythm, appliance stock, and overall scale, so their consumption
/// statistics are mutually distinctive — the property the paper's
/// classification experiment (house re-identification) depends on.
pub fn redd_like_houses() -> Vec<HouseConfig> {
    vec![
        // House 1: average dual-income family, all-electric.
        HouseConfig::average(1),
        // House 2: frugal single-person flat, gas heat & stove, no dryer.
        HouseConfig {
            id: 2,
            occupancy: Occupancy::Working,
            scale: 0.7,
            fridge_watts: 90.0,
            base_watts: 8.0,
            electronics_watts: 90.0,
            lighting_watts: 140.0,
            water_heater_watts: 0.0,
            cooking_watts: 1200.0,
            dryer_watts: 0.0,
            dishwasher_watts: 0.0,
            hvac_heat_watts: 0.0,
            hvac_cool_watts: 0.0,
            laundry_prob: 0.15,
            cooking_enthusiasm: 0.6,
            schedule_shift_hours: 1.5, // night owl
            ev_charger_watts: 0.0,
        },
        // House 3: large home-all-day family, electric heating, keen cooks.
        HouseConfig {
            id: 3,
            occupancy: Occupancy::HomeAllDay,
            scale: 1.25,
            fridge_watts: 160.0,
            base_watts: 25.0,
            electronics_watts: 220.0,
            lighting_watts: 420.0,
            water_heater_watts: 3500.0,
            cooking_watts: 2600.0,
            dryer_watts: 2600.0,
            dishwasher_watts: 1900.0,
            hvac_heat_watts: 2400.0,
            hvac_cool_watts: 0.0,
            laundry_prob: 0.45,
            cooking_enthusiasm: 1.3,
            schedule_shift_hours: -1.0, // early household
            ev_charger_watts: 0.0,
        },
        // House 4: night-shift household with air conditioning.
        HouseConfig {
            id: 4,
            occupancy: Occupancy::NightShift,
            scale: 0.95,
            fridge_watts: 110.0,
            base_watts: 18.0,
            electronics_watts: 180.0,
            lighting_watts: 320.0,
            water_heater_watts: 2800.0,
            cooking_watts: 1800.0,
            dryer_watts: 2200.0,
            dishwasher_watts: 0.0,
            hvac_heat_watts: 0.0,
            hvac_cool_watts: 1500.0,
            laundry_prob: 0.3,
            cooking_enthusiasm: 0.9,
            schedule_shift_hours: 0.0,
            ev_charger_watts: 0.0,
        },
        // House 5: modest household whose uplink is broken most days — the
        // house the paper drops from forecasting for lack of data.
        HouseConfig {
            id: 5,
            occupancy: Occupancy::Working,
            scale: 0.75,
            fridge_watts: 100.0,
            base_watts: 12.0,
            electronics_watts: 120.0,
            lighting_watts: 220.0,
            water_heater_watts: 2500.0,
            cooking_watts: 1500.0,
            dryer_watts: 0.0,
            dishwasher_watts: 1700.0,
            hvac_heat_watts: 0.0,
            hvac_cool_watts: 0.0,
            laundry_prob: 0.25,
            cooking_enthusiasm: 0.8,
            schedule_shift_hours: -2.0, // very early riser
            ev_charger_watts: 0.0,
        },
        // House 6: big consumer — electric heat *and* AC, heavy appliances.
        HouseConfig {
            id: 6,
            occupancy: Occupancy::HomeAllDay,
            scale: 1.5,
            fridge_watts: 180.0,
            base_watts: 35.0,
            electronics_watts: 300.0,
            lighting_watts: 520.0,
            water_heater_watts: 4200.0,
            cooking_watts: 3000.0,
            dryer_watts: 3000.0,
            dishwasher_watts: 2000.0,
            hvac_heat_watts: 3200.0,
            hvac_cool_watts: 1800.0,
            laundry_prob: 0.5,
            cooking_enthusiasm: 1.1,
            schedule_shift_hours: 0.75,
            ev_charger_watts: 0.0,
        },
    ]
}

/// Per-house gap policies matching [`redd_like_houses`]: house 5 gets severe
/// gaps (the paper skips it in forecasting), the rest light/moderate.
pub fn redd_like_gaps() -> Vec<GapConfig> {
    vec![
        GapConfig::light(),
        GapConfig::light(),
        GapConfig::moderate(),
        GapConfig::light(),
        GapConfig::severe(),
        GapConfig::moderate(),
    ]
}

/// REDD-like spec: 6 houses at `interval_secs` sampling for `days` days.
/// The real REDD measures every second for 1–2 months; full-scale generation
/// is `redd_like(seed, 36, 1)`, but most experiments run fine at coarser
/// intervals (e.g. 3–10 s) with identical structure.
pub fn redd_like(seed: u64, days: i64, interval_secs: i64) -> DatasetSpec {
    DatasetSpec {
        houses: redd_like_houses(),
        gaps: redd_like_gaps(),
        start: 0,
        days,
        interval_secs,
        seed,
    }
}

/// Smart*-like spec: `n_houses` houses for 1 day at coarse resolution (the
/// real Smart\* has 443 houses × 24 h).
pub fn smart_star_like(seed: u64, n_houses: u32, interval_secs: i64) -> DatasetSpec {
    let occupancies =
        [Occupancy::Working, Occupancy::HomeAllDay, Occupancy::NightShift, Occupancy::Working];
    let houses = (1..=n_houses)
        .map(|id| {
            let mut c = HouseConfig::average(id);
            c.occupancy = occupancies[(id as usize) % occupancies.len()];
            c.scale = 0.5 + 1.5 * crate::rng::uniform(seed, 0x55AA, id as u64);
            c.schedule_shift_hours = -2.0 + 4.0 * crate::rng::uniform(seed, 0x55AB, id as u64);
            c
        })
        .collect();
    DatasetSpec {
        houses,
        gaps: vec![GapConfig::none(); n_houses as usize],
        start: 0,
        days: 1,
        interval_secs,
        seed,
    }
}

/// Irish-CER-like spec: 30-minute readings over `days` days (the real trial
/// is ~5000 houses × 1.5 years; scale `n_houses`/`days` to taste). Spans
/// seasons, which the §4 drift experiment exploits.
pub fn cer_like(seed: u64, n_houses: u32, days: i64) -> DatasetSpec {
    let mut spec = smart_star_like(seed ^ 0xCE4, n_houses, 1800);
    spec.days = days;
    spec.gaps = vec![GapConfig::light(); n_houses as usize];
    // CER spans seasons; give every house electric heating (and some AC) so
    // the seasonal signal the paper's §4 drift discussion needs is present.
    for c in spec.houses.iter_mut() {
        c.hvac_heat_watts = 1500.0 + 1500.0 * crate::rng::uniform(seed, 0xCE41, c.id as u64);
        if c.id % 2 == 0 {
            c.hvac_cool_watts = 800.0 + 800.0 * crate::rng::uniform(seed, 0xCE42, c.id as u64);
        }
    }
    spec
}

/// A fleet whose houses change character mid-stream: phase A runs the
/// `before` spec's configs, and from `drift_day` onward every house switches
/// to the matching config in `after_houses` (same ids, different appliance
/// stock / seasonal load). Generation is a pure function of
/// `(seed, timestamp)`: both phases are materialized independently over the
/// full duration and spliced at the cut timestamp, so the pre-cut samples
/// are bit-identical to an undrifted run.
#[derive(Debug, Clone)]
pub struct DriftedSpec {
    /// Phase-A spec (house configs before the drift).
    pub before: DatasetSpec,
    /// Phase-B house configs, matched to `before.houses` by index (ids must
    /// agree).
    pub after_houses: Vec<HouseConfig>,
    /// Day offset from `before.start` at which every house cuts over.
    pub drift_day: i64,
}

impl DriftedSpec {
    /// Materializes the spliced fleet.
    pub fn generate(&self) -> Result<MeterDataset> {
        let phase_a = self.before.generate()?;
        let mut after = self.before.clone();
        after.houses = self.after_houses.clone();
        let phase_b = after.generate()?;
        let cut = self.before.start + self.drift_day * SECONDS_PER_DAY;
        let mut records = Vec::with_capacity(phase_a.records().len());
        for (ra, rb) in phase_a.records().iter().zip(phase_b.records()) {
            let samples = ra
                .series
                .iter()
                .filter(|(t, _)| *t < cut)
                .chain(rb.series.iter().filter(|(t, _)| *t >= cut))
                .map(|(t, v)| sms_core::timeseries::Sample::new(t, v))
                .collect();
            let series = sms_core::timeseries::TimeSeries::from_samples(samples)?;
            records.push(HouseRecord { house_id: ra.house_id, series });
        }
        MeterDataset::new(records, self.before.interval_secs)
    }
}

/// Drift-injected CER-like fleet for the §4 adaptation experiment: at
/// `drift_day` every house gains new always-on equipment (a +450 W step in
/// base load — an appliance-fleet change), a modest seasonal heating uptick,
/// and a seasonally shifted daily rhythm. The change is location-dominant
/// (the marginal distribution translates upward while keeping its spread),
/// which a day-one lookup table cannot represent but a re-learned one can
/// match at the original accuracy.
pub fn cer_drifted(seed: u64, n_houses: u32, days: i64, drift_day: i64) -> DriftedSpec {
    let before = cer_like(seed, n_houses, days);
    let after_houses = before
        .houses
        .iter()
        .map(|c| {
            let mut c = c.clone();
            c.base_watts += 450.0;
            c.hvac_heat_watts += 100.0 + 100.0 * crate::rng::uniform(seed, 0xD41F, c.id as u64);
            c.schedule_shift_hours += 1.5;
            c
        })
        .collect();
    DriftedSpec { before, after_houses, drift_day }
}

/// Fleet helper for the parallel engine and its benchmarks: materializes a
/// gap-free `n_houses`-strong fleet of `days`-day streams at
/// `interval_secs`, returning just the per-house series in house-id order
/// (what `sms_core::engine::encode_fleet` consumes).
pub fn fleet_series(
    seed: u64,
    n_houses: u32,
    days: i64,
    interval_secs: i64,
) -> Result<Vec<sms_core::timeseries::TimeSeries>> {
    let mut spec = smart_star_like(seed, n_houses, interval_secs);
    spec.days = days;
    let ds = spec.generate()?;
    Ok(ds.records().iter().map(|r| r.series.clone()).collect())
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn fleet_series_shape_and_determinism() {
        let f = fleet_series(9, 5, 2, 600).unwrap();
        assert_eq!(f.len(), 5);
        for h in &f {
            assert_eq!(h.len(), 2 * (SECONDS_PER_DAY / 600) as usize, "gap-free fleet");
        }
        assert_eq!(f, fleet_series(9, 5, 2, 600).unwrap());
        assert_ne!(f, fleet_series(10, 5, 2, 600).unwrap());
    }

    #[test]
    fn redd_like_six_distinct_houses() {
        let ds = redd_like(42, 3, 30).generate().unwrap();
        assert_eq!(ds.house_count(), 6);
        assert_eq!(ds.house_ids(), vec![1, 2, 3, 4, 5, 6]);
        // Scales must separate: house 6 ≫ house 2 on mean power.
        let m6 = ds.house(6).unwrap().mean().unwrap();
        let m2 = ds.house(2).unwrap().mean().unwrap();
        assert!(m6 > m2 * 2.5, "house 6 mean {m6} vs house 2 mean {m2}");
    }

    #[test]
    fn house_5_fails_completeness_most_days() {
        let ds = redd_like(7, 10, 60).generate().unwrap();
        let complete = ds.paper_complete_days();
        let h5_days = complete.iter().filter(|d| d.house_id == 5).count();
        let h1_days = complete.iter().filter(|d| d.house_id == 1).count();
        assert!(h1_days >= 8, "house 1 mostly complete: {h1_days}");
        assert!(h5_days <= 3, "house 5 mostly incomplete: {h5_days}");
    }

    #[test]
    fn generation_is_deterministic() {
        let a = redd_like(1, 1, 60).generate().unwrap();
        let b = redd_like(1, 1, 60).generate().unwrap();
        let c = redd_like(2, 1, 60).generate().unwrap();
        assert_eq!(a, b);
        assert_ne!(a, c);
    }

    #[test]
    fn smart_star_spec_shape() {
        let ds = smart_star_like(3, 10, 300).generate().unwrap();
        assert_eq!(ds.house_count(), 10);
        for r in ds.records() {
            assert_eq!(r.series.len(), (SECONDS_PER_DAY / 300) as usize, "1 day, no gaps");
        }
    }

    #[test]
    fn cer_spec_is_half_hourly() {
        let spec = cer_like(3, 4, 14);
        assert_eq!(spec.interval_secs, 1800);
        let ds = spec.generate().unwrap();
        assert_eq!(ds.house_count(), 4);
        assert_eq!(ds.interval_secs(), 1800);
        assert!(ds.total_samples() > 4 * 14 * 40, "roughly 48 samples/day/house");
    }

    #[test]
    fn drifted_fleet_is_deterministic_and_prefix_identical() {
        let a = cer_drifted(7, 3, 10, 5).generate().unwrap();
        let b = cer_drifted(7, 3, 10, 5).generate().unwrap();
        assert_eq!(a, b, "drift injection must be pure in (seed, timestamp)");
        // Pre-cut samples are bit-identical to the undrifted fleet.
        let plain = cer_like(7, 3, 10).generate().unwrap();
        let cut = 5 * SECONDS_PER_DAY;
        for (d, p) in a.records().iter().zip(plain.records()) {
            let pre_d: Vec<(i64, f64)> = d.series.iter().filter(|(t, _)| *t < cut).collect();
            let pre_p: Vec<(i64, f64)> = p.series.iter().filter(|(t, _)| *t < cut).collect();
            assert_eq!(pre_d, pre_p, "house {}", d.house_id);
        }
    }

    #[test]
    fn drifted_fleet_shifts_the_marginal_upward() {
        let ds = cer_drifted(11, 2, 12, 6).generate().unwrap();
        let cut = 6 * SECONDS_PER_DAY;
        for r in ds.records() {
            let pre: Vec<f64> = r.series.iter().filter(|(t, _)| *t < cut).map(|(_, v)| v).collect();
            let post: Vec<f64> =
                r.series.iter().filter(|(t, _)| *t >= cut).map(|(_, v)| v).collect();
            let mean = |v: &[f64]| v.iter().sum::<f64>() / v.len().max(1) as f64;
            // The injected +450 W base shift realizes as a smaller marginal
            // shift once duty cycles and gaps dilute it; require a material
            // (not exact) move.
            assert!(
                mean(&post) > mean(&pre) + 250.0,
                "house {}: post mean {} vs pre mean {}",
                r.house_id,
                mean(&post),
                mean(&pre)
            );
        }
    }

    #[test]
    fn marginal_distribution_is_right_skewed() {
        // The log-normal shape of Fig. 2: mean well above median.
        let ds = redd_like(11, 4, 10).generate().unwrap();
        let s = ds.house(1).unwrap();
        let vals = s.values();
        let mut sorted = vals.clone();
        sorted.sort_by(|a, b| a.partial_cmp(b).unwrap());
        let median = sorted[sorted.len() / 2];
        let mean = s.mean().unwrap();
        assert!(
            mean > median * 1.3,
            "right-skewed marginal expected: mean {mean}, median {median}"
        );
    }
}
