//! Multi-house datasets and the day-level bookkeeping the paper's
//! experiments need: splitting by day, the ≥ 20 h completeness filter, and
//! per-house training/evaluation splits.

use sms_core::error::{Error, Result};
use sms_core::timeseries::{TimeSeries, Timestamp};

/// One house's identified series.
#[derive(Debug, Clone, PartialEq)]
pub struct HouseRecord {
    /// House id (class label for classification).
    pub house_id: u32,
    /// The mains power series.
    pub series: TimeSeries,
}

/// One complete day of one house, after day-splitting.
#[derive(Debug, Clone, PartialEq)]
pub struct HouseDay {
    /// House id.
    pub house_id: u32,
    /// Midnight timestamp the day starts at.
    pub day_start: Timestamp,
    /// The day's samples.
    pub series: TimeSeries,
}

/// A multi-house meter dataset with a nominal sampling interval.
#[derive(Debug, Clone, PartialEq)]
pub struct MeterDataset {
    records: Vec<HouseRecord>,
    interval_secs: i64,
}

impl MeterDataset {
    /// Assembles a dataset; `interval_secs` is the nominal sampling interval
    /// used for coverage accounting.
    pub fn new(records: Vec<HouseRecord>, interval_secs: i64) -> Result<Self> {
        if interval_secs <= 0 {
            return Err(Error::InvalidParameter {
                name: "interval_secs",
                reason: format!("must be positive, got {interval_secs}"),
            });
        }
        let mut ids: Vec<u32> = records.iter().map(|r| r.house_id).collect();
        ids.sort_unstable();
        ids.dedup();
        if ids.len() != records.len() {
            return Err(Error::InvalidParameter {
                name: "records",
                reason: "duplicate house ids".to_string(),
            });
        }
        Ok(MeterDataset { records, interval_secs })
    }

    /// Nominal sampling interval in seconds.
    pub fn interval_secs(&self) -> i64 {
        self.interval_secs
    }

    /// All house records.
    pub fn records(&self) -> &[HouseRecord] {
        &self.records
    }

    /// Number of houses.
    pub fn house_count(&self) -> usize {
        self.records.len()
    }

    /// House ids in insertion order.
    pub fn house_ids(&self) -> Vec<u32> {
        self.records.iter().map(|r| r.house_id).collect()
    }

    /// Looks up one house's series.
    pub fn house(&self, id: u32) -> Option<&TimeSeries> {
        self.records.iter().find(|r| r.house_id == id).map(|r| &r.series)
    }

    /// Splits every house into days.
    pub fn days(&self) -> Vec<HouseDay> {
        let mut out = Vec::new();
        for r in &self.records {
            for (day_start, series) in r.series.split_days() {
                out.push(HouseDay { house_id: r.house_id, day_start, series });
            }
        }
        out
    }

    /// Days with at least `min_coverage_secs` of data (the paper uses 20 h =
    /// 72 000 s, §3.1: "putting the threshold at 20h per day of data").
    pub fn complete_days(&self, min_coverage_secs: i64) -> Vec<HouseDay> {
        self.days()
            .into_iter()
            .filter(|d| d.series.coverage_seconds(self.interval_secs) >= min_coverage_secs)
            .collect()
    }

    /// The paper's default 20-hour completeness filter.
    pub fn paper_complete_days(&self) -> Vec<HouseDay> {
        self.complete_days(20 * 3600)
    }

    /// Restriction of every house to its first `duration` seconds (the
    /// paper's "first two days" training protocol).
    pub fn head_duration(&self, duration: i64) -> MeterDataset {
        MeterDataset {
            records: self
                .records
                .iter()
                .map(|r| HouseRecord {
                    house_id: r.house_id,
                    series: r.series.head_duration(duration),
                })
                .collect(),
            interval_secs: self.interval_secs,
        }
    }

    /// Total sample count across houses.
    pub fn total_samples(&self) -> usize {
        self.records.iter().map(|r| r.series.len()).sum()
    }

    /// Pools every value of every house (for global, all-houses lookup
    /// tables, the `+` variants of the paper's Table 1 / Fig. 7).
    pub fn pooled_values(&self) -> Vec<f64> {
        let mut out = Vec::with_capacity(self.total_samples());
        for r in &self.records {
            out.extend(r.series.iter().map(|(_, v)| v));
        }
        out
    }
}

/// Groups complete days per house: `(house_id, days)` in house order.
pub fn days_by_house(days: &[HouseDay]) -> Vec<(u32, Vec<&HouseDay>)> {
    let mut out: Vec<(u32, Vec<&HouseDay>)> = Vec::new();
    for d in days {
        match out.iter_mut().find(|(id, _)| *id == d.house_id) {
            Some((_, v)) => v.push(d),
            None => out.push((d.house_id, vec![d])),
        }
    }
    out
}

#[cfg(test)]
mod tests {
    use super::*;
    use sms_core::timeseries::{Sample, SECONDS_PER_DAY};

    fn series_covering(day: i64, seconds: i64, interval: i64) -> TimeSeries {
        let n = (seconds / interval) as usize;
        TimeSeries::from_regular(day * SECONDS_PER_DAY, interval, &vec![50.0; n]).unwrap()
    }

    #[test]
    fn construction_validates() {
        assert!(MeterDataset::new(vec![], 0).is_err());
        let r = HouseRecord { house_id: 1, series: TimeSeries::new() };
        assert!(MeterDataset::new(vec![r.clone(), r], 1).is_err(), "duplicate ids");
    }

    #[test]
    fn days_and_completeness_filter() {
        // House 1: one full day + one half day. House 2: one quarter day.
        let mut s1 = series_covering(0, SECONDS_PER_DAY, 60);
        for s in series_covering(1, SECONDS_PER_DAY / 2, 60).into_samples() {
            s1.push(s.t, s.v).unwrap();
        }
        let s2 = series_covering(0, SECONDS_PER_DAY / 4, 60);
        let ds = MeterDataset::new(
            vec![HouseRecord { house_id: 1, series: s1 }, HouseRecord { house_id: 2, series: s2 }],
            60,
        )
        .unwrap();
        assert_eq!(ds.days().len(), 3);
        let complete = ds.paper_complete_days();
        assert_eq!(complete.len(), 1);
        assert_eq!(complete[0].house_id, 1);
        assert_eq!(complete[0].day_start, 0);
        // A 12-hour threshold admits the half day too.
        assert_eq!(ds.complete_days(12 * 3600).len(), 2);
    }

    #[test]
    fn head_duration_restricts_all_houses() {
        let ds = MeterDataset::new(
            vec![
                HouseRecord { house_id: 1, series: series_covering(0, 3 * SECONDS_PER_DAY, 600) },
                HouseRecord { house_id: 2, series: series_covering(0, 3 * SECONDS_PER_DAY, 600) },
            ],
            600,
        )
        .unwrap();
        let head = ds.head_duration(2 * SECONDS_PER_DAY);
        for r in head.records() {
            assert_eq!(r.series.len(), (2 * SECONDS_PER_DAY / 600) as usize);
        }
    }

    #[test]
    fn pooled_values_concatenates() {
        let a = TimeSeries::from_samples(vec![Sample::new(0, 1.0), Sample::new(1, 2.0)]).unwrap();
        let b = TimeSeries::from_samples(vec![Sample::new(0, 3.0)]).unwrap();
        let ds = MeterDataset::new(
            vec![HouseRecord { house_id: 1, series: a }, HouseRecord { house_id: 2, series: b }],
            1,
        )
        .unwrap();
        assert_eq!(ds.pooled_values(), vec![1.0, 2.0, 3.0]);
        assert_eq!(ds.total_samples(), 3);
        assert_eq!(ds.house_ids(), vec![1, 2]);
        assert!(ds.house(2).is_some());
        assert!(ds.house(9).is_none());
    }

    #[test]
    fn days_by_house_groups_in_order() {
        let mk = |h, d| HouseDay {
            house_id: h,
            day_start: d * SECONDS_PER_DAY,
            series: TimeSeries::new(),
        };
        let days = vec![mk(1, 0), mk(2, 0), mk(1, 1)];
        let grouped = days_by_house(&days);
        assert_eq!(grouped.len(), 2);
        assert_eq!(grouped[0].0, 1);
        assert_eq!(grouped[0].1.len(), 2);
        assert_eq!(grouped[1].0, 2);
    }
}
