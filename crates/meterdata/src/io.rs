//! CSV persistence for meter series and datasets. The format mirrors the
//! REDD release: one `timestamp value` pair per line (we use a comma), one
//! file per house, named `house_<id>.csv`.

use crate::dataset::{HouseRecord, MeterDataset};
use sms_core::error::{Error, Result};
use sms_core::timeseries::TimeSeries;
use std::fs;
use std::io::{BufRead, BufReader, BufWriter, Write};
use std::path::Path;

/// Writes one series as `timestamp,value` lines.
pub fn write_series_csv(series: &TimeSeries, path: &Path) -> Result<()> {
    let file = fs::File::create(path)
        .map_err(|e| Error::WireFormat(format!("create {}: {e}", path.display())))?;
    let mut w = BufWriter::new(file);
    for (t, v) in series.iter() {
        writeln!(w, "{t},{v}")
            .map_err(|e| Error::WireFormat(format!("write {}: {e}", path.display())))?;
    }
    w.flush().map_err(|e| Error::WireFormat(format!("flush {}: {e}", path.display())))
}

/// Reads a `timestamp,value` CSV back into a series. Blank lines and lines
/// starting with `#` are skipped.
pub fn read_series_csv(path: &Path) -> Result<TimeSeries> {
    let file = fs::File::open(path)
        .map_err(|e| Error::WireFormat(format!("open {}: {e}", path.display())))?;
    let reader = BufReader::new(file);
    let mut out = TimeSeries::new();
    for (lineno, line) in reader.lines().enumerate() {
        let line = line.map_err(|e| Error::WireFormat(format!("read {}: {e}", path.display())))?;
        let trimmed = line.trim();
        if trimmed.is_empty() || trimmed.starts_with('#') {
            continue;
        }
        let (ts, vs) = trimmed.split_once(',').ok_or_else(|| {
            Error::WireFormat(format!(
                "{}:{}: expected `timestamp,value`",
                path.display(),
                lineno + 1
            ))
        })?;
        let t: i64 = ts.trim().parse().map_err(|e| {
            Error::WireFormat(format!("{}:{}: bad timestamp: {e}", path.display(), lineno + 1))
        })?;
        let v: f64 = vs.trim().parse().map_err(|e| {
            Error::WireFormat(format!("{}:{}: bad value: {e}", path.display(), lineno + 1))
        })?;
        out.push(t, v)?;
    }
    Ok(out)
}

/// Writes a dataset as `house_<id>.csv` files plus an `interval.txt` marker
/// under `dir` (created if needed).
pub fn write_dataset(ds: &MeterDataset, dir: &Path) -> Result<()> {
    fs::create_dir_all(dir)
        .map_err(|e| Error::WireFormat(format!("mkdir {}: {e}", dir.display())))?;
    fs::write(dir.join("interval.txt"), ds.interval_secs().to_string())
        .map_err(|e| Error::WireFormat(format!("write interval: {e}")))?;
    for r in ds.records() {
        write_series_csv(&r.series, &dir.join(format!("house_{}.csv", r.house_id)))?;
    }
    Ok(())
}

/// Reads a dataset directory written by [`write_dataset`].
pub fn read_dataset(dir: &Path) -> Result<MeterDataset> {
    let interval: i64 = fs::read_to_string(dir.join("interval.txt"))
        .map_err(|e| Error::WireFormat(format!("read interval: {e}")))?
        .trim()
        .parse()
        .map_err(|e| Error::WireFormat(format!("bad interval: {e}")))?;
    let mut records = Vec::new();
    let mut entries: Vec<_> = fs::read_dir(dir)
        .map_err(|e| Error::WireFormat(format!("read_dir {}: {e}", dir.display())))?
        .filter_map(|e| e.ok())
        .map(|e| e.path())
        .filter(|p| {
            p.file_name()
                .and_then(|n| n.to_str())
                .map(|n| n.starts_with("house_") && n.ends_with(".csv"))
                .unwrap_or(false)
        })
        .collect();
    entries.sort();
    for path in entries {
        let name = path.file_stem().and_then(|n| n.to_str()).unwrap_or_default();
        let id: u32 = name
            .trim_start_matches("house_")
            .parse()
            .map_err(|e| Error::WireFormat(format!("bad house file name {name}: {e}")))?;
        records.push(HouseRecord { house_id: id, series: read_series_csv(&path)? });
    }
    MeterDataset::new(records, interval)
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::generator::redd_like;

    fn tmpdir(name: &str) -> std::path::PathBuf {
        let d =
            std::env::temp_dir().join(format!("meterdata_io_test_{name}_{}", std::process::id()));
        let _ = fs::remove_dir_all(&d);
        fs::create_dir_all(&d).unwrap();
        d
    }

    #[test]
    fn series_roundtrip() {
        let d = tmpdir("series");
        let s = TimeSeries::from_regular(100, 60, &[1.5, 2.25, 0.0, 1e6]).unwrap();
        let p = d.join("s.csv");
        write_series_csv(&s, &p).unwrap();
        let back = read_series_csv(&p).unwrap();
        assert_eq!(back, s);
        let _ = fs::remove_dir_all(&d);
    }

    #[test]
    fn read_skips_comments_and_blank_lines() {
        let d = tmpdir("comments");
        let p = d.join("s.csv");
        fs::write(&p, "# header\n\n10,1.5\n 20 , 2.5 \n").unwrap();
        let s = read_series_csv(&p).unwrap();
        assert_eq!(s.timestamps(), vec![10, 20]);
        assert_eq!(s.values(), vec![1.5, 2.5]);
        let _ = fs::remove_dir_all(&d);
    }

    #[test]
    fn read_reports_malformed_lines() {
        let d = tmpdir("bad");
        let p = d.join("s.csv");
        fs::write(&p, "10;1.5\n").unwrap();
        let err = read_series_csv(&p).unwrap_err().to_string();
        assert!(err.contains(":1:"), "line number in error: {err}");
        fs::write(&p, "abc,1.5\n").unwrap();
        assert!(read_series_csv(&p).is_err());
        fs::write(&p, "10,xyz\n").unwrap();
        assert!(read_series_csv(&p).is_err());
        let _ = fs::remove_dir_all(&d);
    }

    #[test]
    fn dataset_roundtrip() {
        let d = tmpdir("dataset");
        let ds = redd_like(5, 1, 600).generate().unwrap();
        write_dataset(&ds, &d).unwrap();
        let back = read_dataset(&d).unwrap();
        assert_eq!(back.house_count(), ds.house_count());
        assert_eq!(back.interval_secs(), ds.interval_secs());
        for r in ds.records() {
            assert_eq!(back.house(r.house_id).unwrap(), &r.series);
        }
        let _ = fs::remove_dir_all(&d);
    }

    #[test]
    fn missing_files_error_cleanly() {
        let d = tmpdir("missing");
        assert!(read_series_csv(&d.join("nope.csv")).is_err());
        assert!(read_dataset(&d.join("nope")).is_err());
        let _ = fs::remove_dir_all(&d);
    }
}
