//! Deterministic, random-access pseudo-randomness for the simulator.
//!
//! Appliance models need noise that is (a) reproducible from a seed and
//! (b) *random-access* — the power at time `t` must be computable without
//! simulating every preceding second, so that experiments can generate
//! arbitrary sub-ranges cheaply and tests can probe single instants. We use
//! SplitMix64-style hashing of `(seed, stream, index)` triples rather than a
//! sequential RNG.

/// SplitMix64 finalizer: avalanche-mixes one 64-bit word.
#[inline]
pub fn mix64(mut z: u64) -> u64 {
    z = z.wrapping_add(0x9E3779B97F4A7C15);
    z = (z ^ (z >> 30)).wrapping_mul(0xBF58476D1CE4E5B9);
    z = (z ^ (z >> 27)).wrapping_mul(0x94D049BB133111EB);
    z ^ (z >> 31)
}

/// Hashes a `(seed, stream, index)` triple into one well-mixed word.
/// `stream` separates independent noise channels (one per appliance and
/// purpose); `index` is typically a time bucket.
#[inline]
pub fn hash3(seed: u64, stream: u64, index: u64) -> u64 {
    mix64(mix64(seed ^ mix64(stream)).wrapping_add(index.wrapping_mul(0x2545F4914F6CDD1D)))
}

/// Uniform `[0, 1)` from a hash word.
#[inline]
pub fn unit_f64(h: u64) -> f64 {
    (h >> 11) as f64 / (1u64 << 53) as f64
}

/// Uniform `[0, 1)` from a `(seed, stream, index)` triple.
#[inline]
pub fn uniform(seed: u64, stream: u64, index: u64) -> f64 {
    unit_f64(hash3(seed, stream, index))
}

/// Uniform in `[lo, hi)`.
#[inline]
pub fn uniform_in(seed: u64, stream: u64, index: u64, lo: f64, hi: f64) -> f64 {
    lo + (hi - lo) * uniform(seed, stream, index)
}

/// Standard normal via Box–Muller over two derived uniforms.
pub fn gaussian(seed: u64, stream: u64, index: u64) -> f64 {
    let u1 = unit_f64(hash3(seed, stream, index)).max(1e-12);
    let u2 = unit_f64(hash3(seed, stream ^ 0xDEAD_BEEF, index));
    (-2.0 * u1.ln()).sqrt() * (2.0 * std::f64::consts::PI * u2).cos()
}

/// Log-normal with parameters of the underlying normal.
pub fn log_normal(seed: u64, stream: u64, index: u64, mu: f64, sigma: f64) -> f64 {
    (mu + sigma * gaussian(seed, stream, index)).exp()
}

/// Bernoulli event with probability `p`.
#[inline]
pub fn bernoulli(seed: u64, stream: u64, index: u64, p: f64) -> bool {
    uniform(seed, stream, index) < p
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn deterministic_and_stream_separated() {
        assert_eq!(hash3(1, 2, 3), hash3(1, 2, 3));
        assert_ne!(hash3(1, 2, 3), hash3(1, 2, 4));
        assert_ne!(hash3(1, 2, 3), hash3(1, 3, 3));
        assert_ne!(hash3(1, 2, 3), hash3(2, 2, 3));
    }

    #[test]
    fn uniform_is_in_unit_interval_and_roughly_uniform() {
        let mut sum = 0.0;
        let n = 10_000;
        for i in 0..n {
            let u = uniform(42, 7, i);
            assert!((0.0..1.0).contains(&u));
            sum += u;
        }
        let mean = sum / n as f64;
        assert!((mean - 0.5).abs() < 0.02, "mean {mean}");
    }

    #[test]
    fn gaussian_moments() {
        let n = 20_000;
        let (mut sum, mut sq) = (0.0, 0.0);
        for i in 0..n {
            let g = gaussian(9, 1, i);
            sum += g;
            sq += g * g;
        }
        let mean = sum / n as f64;
        let var = sq / n as f64 - mean * mean;
        assert!(mean.abs() < 0.03, "mean {mean}");
        assert!((var - 1.0).abs() < 0.05, "var {var}");
    }

    #[test]
    fn log_normal_is_positive() {
        for i in 0..1000 {
            assert!(log_normal(3, 3, i, 4.0, 1.0) > 0.0);
        }
    }

    #[test]
    fn bernoulli_rate() {
        let hits = (0..10_000).filter(|&i| bernoulli(5, 5, i, 0.25)).count();
        assert!((hits as f64 / 10_000.0 - 0.25).abs() < 0.02);
    }

    #[test]
    fn uniform_in_respects_bounds() {
        for i in 0..100 {
            let v = uniform_in(1, 1, i, 10.0, 20.0);
            assert!((10.0..20.0).contains(&v));
        }
    }
}
