//! Property-based tests for the simulator: determinism, physical
//! plausibility, meter quantization, gap-injection laws, and random access.

use meterdata::gaps::GapConfig;
use meterdata::generator::{redd_like, smart_star_like};
use meterdata::house::{House, HouseConfig};
use proptest::prelude::*;
use sms_core::timeseries::TimeSeries;

proptest! {
    #![proptest_config(ProptestConfig::with_cases(24))]

    #[test]
    fn house_power_is_deterministic_plausible_and_quantized(
        seed in 0u64..1000,
        id in 1u32..20,
        t0 in 0i64..5_000_000,
    ) {
        let house = House::build(HouseConfig::average(id), seed);
        for dt in [0i64, 37, 9999] {
            let t = t0 + dt;
            let w1 = house.power_at(t);
            let w2 = house.power_at(t);
            prop_assert_eq!(w1, w2, "deterministic");
            prop_assert!((0.0..30_000.0).contains(&w1), "plausible watts: {w1}");
            prop_assert_eq!(w1.fract(), 0.0, "1 W meter quantization");
        }
    }

    #[test]
    fn generate_matches_random_access(seed in 0u64..200, start in 0i64..1_000_000) {
        let house = House::build(HouseConfig::average(3), seed);
        let series = house.generate(start, 600, 60).unwrap();
        prop_assert_eq!(series.len(), 10);
        for (t, v) in series.iter() {
            prop_assert_eq!(v, house.power_at(t));
        }
    }

    #[test]
    fn gap_injection_is_a_subset_filter(seed in 0u64..200) {
        let n = 2000usize;
        let base = TimeSeries::from_regular(0, 60, &vec![100.0; n]).unwrap();
        for cfg in [GapConfig::light(), GapConfig::moderate(), GapConfig::severe()] {
            let gapped = cfg.apply(&base, seed).unwrap();
            prop_assert!(gapped.len() <= base.len());
            // Every surviving sample exists in the original with equal value.
            let original: std::collections::BTreeMap<i64, f64> = base.iter().collect();
            for (t, v) in gapped.iter() {
                prop_assert_eq!(original.get(&t), Some(&v));
            }
            // Idempotence: re-applying the same gaps removes nothing more.
            let twice = cfg.apply(&gapped, seed).unwrap();
            prop_assert_eq!(twice, gapped);
        }
    }

    #[test]
    fn severity_ordering_of_gap_presets(seed in 0u64..100) {
        let n = 5000usize;
        let base = TimeSeries::from_regular(0, 60, &vec![1.0; n]).unwrap();
        let light = GapConfig::light().apply(&base, seed).unwrap().len();
        let severe = GapConfig::severe().apply(&base, seed).unwrap().len();
        let none = GapConfig::none().apply(&base, seed).unwrap().len();
        prop_assert_eq!(none, n);
        prop_assert!(severe <= light, "severe {severe} removes at least as much as light {light}");
    }

    #[test]
    fn redd_preset_is_seed_deterministic(seed in 0u64..50) {
        let a = redd_like(seed, 1, 600).generate().unwrap();
        let b = redd_like(seed, 1, 600).generate().unwrap();
        prop_assert_eq!(&a, &b);
        let c = redd_like(seed + 1, 1, 600).generate().unwrap();
        prop_assert_ne!(&a, &c);
    }

    #[test]
    fn smart_star_houses_differ_from_each_other(seed in 0u64..30) {
        let ds = smart_star_like(seed, 4, 600).generate().unwrap();
        let means: Vec<f64> =
            ds.records().iter().map(|r| r.series.mean().unwrap()).collect();
        // At least one pair differs substantially (houses are parameterized
        // with different scales).
        let min = means.iter().cloned().fold(f64::INFINITY, f64::min);
        let max = means.iter().cloned().fold(f64::NEG_INFINITY, f64::max);
        prop_assert!(max > min, "house means should not all coincide: {means:?}");
    }
}
