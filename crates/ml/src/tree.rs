//! C4.5 decision tree (Weka's `J48` equivalent) and the randomized variant
//! underlying random forests.
//!
//! Implemented: gain-ratio splits, multiway splits on nominal attributes,
//! binary threshold splits on numeric attributes, and C4.5's pessimistic
//! error-based pruning (confidence factor 0.25, Weka's `Stats.addErrs`
//! formula). Missing values follow the most-populated branch — a documented
//! simplification of C4.5's fractional instances; the paper's filtered
//! datasets contain no missing feature values, so this never triggers there.

use crate::classifier::{normalize_distribution, Classifier};
use crate::data::{AttributeKind, Instances, Value, MISSING_CODE};
use crate::error::{Error, Result};
use rand::rngs::StdRng;
use rand::seq::SliceRandom;
use rand::SeedableRng;

/// How a tree searches for the best split at each node.
///
/// Both strategies produce **identical trees**: every node statistic is an
/// integer-valued class histogram (exact in f64), so the split chosen is
/// invariant to the order rows are visited in, and the RNG stream (feature
/// subsampling) is consumed identically. The per-node-sort path is kept for
/// benchmarking and as an executable specification of the presorted one.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Default)]
pub enum SplitSearch {
    /// Argsort every numeric attribute **once per fit**, then maintain the
    /// sorted orders through splits with a stable counting partition;
    /// nominal attributes use flat per-branch class histograms. This turns
    /// the per-node `O(s log s)` re-sort of the naive C4.5 into `O(s)` work
    /// per node per attribute.
    #[default]
    Presorted,
    /// The textbook approach: re-sort the node's rows for every numeric
    /// candidate attribute and materialize `Vec<Vec<usize>>` partitions for
    /// nominal ones.
    PerNodeSort,
}

/// Tree nodes. Every node keeps its training class distribution so
/// prediction can return calibrated-ish probabilities.
#[derive(Debug, Clone)]
enum Node {
    Leaf {
        dist: Vec<f64>,
        /// Training instances that actually reached this leaf. Differs from
        /// `dist.sum()` only for the virtual leaves created for empty
        /// nominal branches (which carry the parent's distribution for
        /// prediction but no real mass — and must contribute zero estimated
        /// errors during pruning).
        real_n: f64,
    },
    Nominal {
        attr: usize,
        children: Vec<Node>,
        /// Branch taken for missing values (most populated in training).
        default_branch: usize,
        dist: Vec<f64>,
    },
    Numeric {
        attr: usize,
        threshold: f64,
        left: Box<Node>,
        right: Box<Node>,
        /// `true` when the left branch had more training mass.
        default_left: bool,
        dist: Vec<f64>,
    },
}

impl Node {
    fn count_nodes(&self) -> usize {
        match self {
            Node::Leaf { .. } => 1,
            Node::Nominal { children, .. } => {
                1 + children.iter().map(Node::count_nodes).sum::<usize>()
            }
            Node::Numeric { left, right, .. } => 1 + left.count_nodes() + right.count_nodes(),
        }
    }

    fn depth(&self) -> usize {
        match self {
            Node::Leaf { .. } => 1,
            Node::Nominal { children, .. } => {
                1 + children.iter().map(Node::depth).max().unwrap_or(0)
            }
            Node::Numeric { left, right, .. } => 1 + left.depth().max(right.depth()),
        }
    }
}

/// Split-search policy shared by C4.5 and random trees.
#[derive(Debug, Clone)]
struct BuildOptions {
    /// Minimum instances in at least two branches of an accepted split
    /// (Weka's `minNumObj`, default 2).
    min_leaf: usize,
    /// Use gain ratio (C4.5) instead of plain information gain.
    gain_ratio: bool,
    /// Consider only a random subset of this many attributes per node.
    feature_subset: Option<usize>,
    /// Maximum tree depth (0 = unlimited).
    max_depth: usize,
}

fn entropy(counts: &[f64]) -> f64 {
    let total: f64 = counts.iter().sum();
    if total <= 0.0 {
        return 0.0;
    }
    counts
        .iter()
        .filter(|&&c| c > 0.0)
        .map(|&c| {
            let p = c / total;
            -p * p.log2()
        })
        .sum()
}

/// Candidate split found at a node.
enum Split {
    Nominal { attr: usize, partitions: Vec<Vec<usize>> },
    Numeric { attr: usize, threshold: f64, left: Vec<usize>, right: Vec<usize> },
}

struct Builder<'a> {
    data: &'a Instances,
    n_classes: usize,
    opts: BuildOptions,
    rng: StdRng,
}

impl<'a> Builder<'a> {
    fn class_dist(&self, rows: &[usize]) -> Result<Vec<f64>> {
        let mut d = vec![0.0; self.n_classes];
        for &i in rows {
            d[self.data.class_of(i)?] += 1.0;
        }
        Ok(d)
    }

    fn build(
        &mut self,
        rows: &[usize],
        used_nominal: &mut Vec<bool>,
        depth: usize,
    ) -> Result<Node> {
        let dist = self.class_dist(rows)?;
        let h = entropy(&dist);
        let depth_ok = self.opts.max_depth == 0 || depth < self.opts.max_depth;
        if h == 0.0 || rows.len() < 2 * self.opts.min_leaf || !depth_ok {
            let real_n = dist.iter().sum();
            return Ok(Node::Leaf { dist, real_n });
        }

        let candidates = self.candidate_attributes(used_nominal);
        let mut best: Option<(f64, Split)> = None;
        for attr in candidates {
            if let Some((score, split)) = self.evaluate_attribute(attr, rows, h)? {
                if best.as_ref().map(|(s, _)| score > *s).unwrap_or(true) {
                    best = Some((score, split));
                }
            }
        }

        let Some((_, split)) = best else {
            let real_n = dist.iter().sum();
            return Ok(Node::Leaf { dist, real_n });
        };

        match split {
            Split::Nominal { attr, partitions } => {
                used_nominal[attr] = true;
                let mut children = Vec::with_capacity(partitions.len());
                let mut default_branch = 0;
                let mut best_size = 0;
                for (b, part) in partitions.iter().enumerate() {
                    if part.len() > best_size {
                        best_size = part.len();
                        default_branch = b;
                    }
                    if part.is_empty() {
                        // Empty branch: predict with the parent distribution,
                        // but carry zero real mass (see `Node::Leaf::real_n`).
                        children.push(Node::Leaf { dist: dist.clone(), real_n: 0.0 });
                    } else {
                        children.push(self.build(part, used_nominal, depth + 1)?);
                    }
                }
                used_nominal[attr] = false;
                Ok(Node::Nominal { attr, children, default_branch, dist })
            }
            Split::Numeric { attr, threshold, left, right } => {
                let default_left = left.len() >= right.len();
                let l = self.build(&left, used_nominal, depth + 1)?;
                let r = self.build(&right, used_nominal, depth + 1)?;
                Ok(Node::Numeric {
                    attr,
                    threshold,
                    left: Box::new(l),
                    right: Box::new(r),
                    default_left,
                    dist,
                })
            }
        }
    }

    fn candidate_attributes(&mut self, used_nominal: &[bool]) -> Vec<usize> {
        let mut feats: Vec<usize> = self
            .data
            .feature_indices()
            .into_iter()
            .filter(|&a| {
                // A nominal attribute splits once per path; numeric can repeat.
                !(self.data.attributes()[a].is_nominal() && used_nominal[a])
            })
            .collect();
        if let Some(m) = self.opts.feature_subset {
            feats.shuffle(&mut self.rng);
            feats.truncate(m.max(1));
        }
        feats
    }

    fn evaluate_attribute(
        &self,
        attr: usize,
        rows: &[usize],
        parent_entropy: f64,
    ) -> Result<Option<(f64, Split)>> {
        match &self.data.attributes()[attr].kind {
            AttributeKind::Nominal(labels) => {
                self.evaluate_nominal(attr, labels.len(), rows, parent_entropy)
            }
            AttributeKind::Numeric => self.evaluate_numeric(attr, rows, parent_entropy),
        }
    }

    fn evaluate_nominal(
        &self,
        attr: usize,
        card: usize,
        rows: &[usize],
        parent_entropy: f64,
    ) -> Result<Option<(f64, Split)>> {
        let mut partitions: Vec<Vec<usize>> = vec![Vec::new(); card];
        let mut missing = Vec::new();
        for &i in rows {
            match self.data.row(i)[attr] {
                Value::Nominal(v) => partitions[v as usize].push(i),
                Value::Missing => missing.push(i),
                Value::Numeric(_) => {
                    return Err(Error::SchemaMismatch(format!(
                        "attribute {attr} declared nominal but holds a numeric value"
                    )))
                }
            }
        }
        // Route missing rows into the largest branch.
        if !missing.is_empty() {
            let biggest = (0..card).max_by_key(|&b| partitions[b].len()).unwrap_or(0);
            partitions[biggest].extend(missing);
        }
        // Weka requirement: at least two branches carrying min_leaf instances.
        let populated = partitions.iter().filter(|p| p.len() >= self.opts.min_leaf).count();
        if populated < 2 {
            return Ok(None);
        }
        let n = rows.len() as f64;
        let mut cond = 0.0;
        let mut split_info_counts = Vec::with_capacity(card);
        for part in &partitions {
            split_info_counts.push(part.len() as f64);
            if !part.is_empty() {
                let d = self.class_dist(part)?;
                cond += part.len() as f64 / n * entropy(&d);
            }
        }
        let gain = parent_entropy - cond;
        if gain <= 1e-12 {
            return Ok(None);
        }
        let score = if self.opts.gain_ratio {
            let si = entropy(&split_info_counts);
            if si <= 1e-12 {
                return Ok(None);
            }
            gain / si
        } else {
            gain
        };
        Ok(Some((score, Split::Nominal { attr, partitions })))
    }

    fn evaluate_numeric(
        &self,
        attr: usize,
        rows: &[usize],
        parent_entropy: f64,
    ) -> Result<Option<(f64, Split)>> {
        // Collect (value, class); missing rows are routed to the bigger side
        // after the threshold is chosen.
        let mut pairs: Vec<(f64, usize, usize)> = Vec::with_capacity(rows.len());
        let mut missing = Vec::new();
        for &i in rows {
            match self.data.row(i)[attr] {
                Value::Numeric(v) => pairs.push((v, self.data.class_of(i)?, i)),
                Value::Missing => missing.push(i),
                Value::Nominal(_) => {
                    return Err(Error::SchemaMismatch(format!(
                        "attribute {attr} declared numeric but holds a nominal value"
                    )))
                }
            }
        }
        if pairs.len() < 2 * self.opts.min_leaf {
            return Ok(None);
        }
        // total_cmp keeps any NaN (the missing sentinel, should one leak
        // through) ordered last instead of panicking mid-fit.
        pairs.sort_by(|a, b| a.0.total_cmp(&b.0));

        // Sweep: maintain left class counts; candidate thresholds between
        // consecutive distinct values.
        let total_dist = {
            let mut d = vec![0.0; self.n_classes];
            for &(_, c, _) in &pairs {
                d[c] += 1.0;
            }
            d
        };
        let n = pairs.len() as f64;
        let mut left_dist = vec![0.0; self.n_classes];
        let mut best: Option<(f64, usize, f64)> = None; // (gain, cut_pos, threshold)
        for cut in 1..pairs.len() {
            left_dist[pairs[cut - 1].1] += 1.0;
            if pairs[cut - 1].0 == pairs[cut].0 {
                continue;
            }
            if cut < self.opts.min_leaf || pairs.len() - cut < self.opts.min_leaf {
                continue;
            }
            let mut right_dist = total_dist.clone();
            for (r, l) in right_dist.iter_mut().zip(&left_dist) {
                *r -= l;
            }
            let cond =
                cut as f64 / n * entropy(&left_dist) + (n - cut as f64) / n * entropy(&right_dist);
            let gain = parent_entropy - cond;
            if best.map(|(g, _, _)| gain > g).unwrap_or(true) {
                let threshold = (pairs[cut - 1].0 + pairs[cut].0) / 2.0;
                best = Some((gain, cut, threshold));
            }
        }
        let Some((gain, cut, threshold)) = best else { return Ok(None) };
        if gain <= 1e-12 {
            return Ok(None);
        }
        let score = if self.opts.gain_ratio {
            let si = entropy(&[cut as f64, n - cut as f64]);
            if si <= 1e-12 {
                return Ok(None);
            }
            gain / si
        } else {
            gain
        };
        let mut left: Vec<usize> = pairs[..cut].iter().map(|&(_, _, i)| i).collect();
        let mut right: Vec<usize> = pairs[cut..].iter().map(|&(_, _, i)| i).collect();
        if left.len() >= right.len() {
            left.extend(missing);
        } else {
            right.extend(missing);
        }
        Ok(Some((score, Split::Numeric { attr, threshold, left, right })))
    }
}

/// Candidate split found at a node by the presorted search. Row membership
/// is implicit (recoverable from the column codes / sorted order), so
/// nothing per-row is materialized until the split is actually committed.
enum SegSplit {
    Nominal {
        attr: usize,
        /// Branch sizes *after* missing rows were folded into `biggest`.
        sizes: Vec<usize>,
        /// Branch that absorbs missing values (largest before folding).
        biggest: usize,
    },
    Numeric {
        attr: usize,
        threshold: f64,
        /// Rows (of the node's non-missing ones, in attribute order) that go
        /// left of the threshold.
        cut: usize,
        /// Non-missing row count for this attribute in the node.
        non_missing: usize,
    },
}

/// Stably reorders `seg` (one node's slice of an index array) so rows land
/// grouped by their branch in `side`, preserving relative order within each
/// branch. `counts[b]` is the number of rows going to branch `b`.
fn stable_partition(seg: &mut [u32], scratch: &mut Vec<u32>, side: &[u16], counts: &[usize]) {
    scratch.clear();
    scratch.extend_from_slice(seg);
    let mut cursors = Vec::with_capacity(counts.len());
    let mut acc = 0;
    for &c in counts {
        cursors.push(acc);
        acc += c;
    }
    for &r in scratch.iter() {
        let b = side[r as usize] as usize;
        seg[cursors[b]] = r;
        cursors[b] += 1;
    }
}

/// The presorted split search. Each numeric attribute is argsorted **once**
/// at construction; every accepted split then repartitions each attribute's
/// index array (and the master row array) with one stable counting pass, so
/// sorted order survives all the way down the tree. Nominal attributes are
/// scanned into flat `card × n_classes` histograms instead of materialized
/// `Vec<Vec<usize>>` partitions. A node is a contiguous `[lo, hi)` segment
/// of every index array.
struct PresortedBuilder<'a> {
    data: &'a Instances,
    n_classes: usize,
    opts: BuildOptions,
    rng: StdRng,
    /// Class code per row (validated non-missing up front).
    classes: Vec<u32>,
    /// Row ids, permuted so each node owns a contiguous segment.
    master: Vec<u32>,
    /// Per numeric attribute: row ids sorted by value (missing/NaN last);
    /// empty for nominal attributes. Same segment structure as `master`.
    sorted: Vec<Vec<u32>>,
    /// Branch marker per row id, valid only while committing one split.
    side: Vec<u16>,
    /// Reusable buffer for `stable_partition`.
    scratch: Vec<u32>,
}

impl<'a> PresortedBuilder<'a> {
    fn new(data: &'a Instances, n_classes: usize, opts: BuildOptions, rng: StdRng) -> Result<Self> {
        let n = data.len();
        let mut classes = Vec::with_capacity(n);
        for i in 0..n {
            classes.push(data.class_of(i)? as u32);
        }
        let mut sorted = vec![Vec::new(); data.attributes().len()];
        for a in data.feature_indices() {
            if let Some(vals) = data.numeric_values(a) {
                let mut idx: Vec<u32> = (0..n as u32).collect();
                // Stable + total_cmp: ties keep row order, NaN sentinels
                // (missing values) sort after every real number.
                idx.sort_by(|&x, &y| vals[x as usize].total_cmp(&vals[y as usize]));
                sorted[a] = idx;
            }
        }
        Ok(PresortedBuilder {
            data,
            n_classes,
            opts,
            rng,
            classes,
            master: (0..n as u32).collect(),
            sorted,
            side: vec![0; n],
            scratch: Vec::with_capacity(n),
        })
    }

    fn build_root(&mut self, used_nominal: &mut Vec<bool>) -> Result<Node> {
        self.build(0, self.data.len(), used_nominal, 0)
    }

    fn segment_dist(&self, lo: usize, hi: usize) -> Vec<f64> {
        let mut d = vec![0.0; self.n_classes];
        for &r in &self.master[lo..hi] {
            d[self.classes[r as usize] as usize] += 1.0;
        }
        d
    }

    fn candidate_attributes(&mut self, used_nominal: &[bool]) -> Vec<usize> {
        let mut feats: Vec<usize> = self
            .data
            .feature_indices()
            .into_iter()
            .filter(|&a| !(self.data.attributes()[a].is_nominal() && used_nominal[a]))
            .collect();
        if let Some(m) = self.opts.feature_subset {
            feats.shuffle(&mut self.rng);
            feats.truncate(m.max(1));
        }
        feats
    }

    /// Repartitions `master` and every numeric attribute's sorted array
    /// over `[lo, hi)` according to `side`, returning the child segment
    /// boundaries (`branches + 1` entries).
    fn partition(&mut self, lo: usize, hi: usize, branches: usize) -> Vec<usize> {
        let mut counts = vec![0usize; branches];
        for &r in &self.master[lo..hi] {
            counts[self.side[r as usize] as usize] += 1;
        }
        let mut starts = Vec::with_capacity(branches + 1);
        let mut acc = lo;
        starts.push(lo);
        for &c in &counts {
            acc += c;
            starts.push(acc);
        }
        let side = &self.side;
        stable_partition(&mut self.master[lo..hi], &mut self.scratch, side, &counts);
        for arr in self.sorted.iter_mut().filter(|v| !v.is_empty()) {
            stable_partition(&mut arr[lo..hi], &mut self.scratch, side, &counts);
        }
        starts
    }

    fn build(
        &mut self,
        lo: usize,
        hi: usize,
        used_nominal: &mut Vec<bool>,
        depth: usize,
    ) -> Result<Node> {
        let dist = self.segment_dist(lo, hi);
        let h = entropy(&dist);
        let depth_ok = self.opts.max_depth == 0 || depth < self.opts.max_depth;
        if h == 0.0 || hi - lo < 2 * self.opts.min_leaf || !depth_ok {
            let real_n = dist.iter().sum();
            return Ok(Node::Leaf { dist, real_n });
        }

        let candidates = self.candidate_attributes(used_nominal);
        let mut best: Option<(f64, SegSplit)> = None;
        for attr in candidates {
            if let Some((score, split)) = self.evaluate(attr, lo, hi, h) {
                if best.as_ref().map(|(s, _)| score > *s).unwrap_or(true) {
                    best = Some((score, split));
                }
            }
        }

        let Some((_, split)) = best else {
            let real_n = dist.iter().sum();
            return Ok(Node::Leaf { dist, real_n });
        };

        match split {
            SegSplit::Nominal { attr, sizes, biggest } => {
                let codes = self.data.nominal_codes(attr).expect("nominal column");
                for &r in &self.master[lo..hi] {
                    let code = codes[r as usize];
                    self.side[r as usize] =
                        if code == MISSING_CODE { biggest as u16 } else { code };
                }
                let starts = self.partition(lo, hi, sizes.len());
                let mut default_branch = 0;
                let mut best_size = 0;
                for (b, &sz) in sizes.iter().enumerate() {
                    if sz > best_size {
                        best_size = sz;
                        default_branch = b;
                    }
                }
                used_nominal[attr] = true;
                let mut children = Vec::with_capacity(sizes.len());
                for b in 0..sizes.len() {
                    let (blo, bhi) = (starts[b], starts[b + 1]);
                    if blo == bhi {
                        // Empty branch: parent distribution, zero real mass.
                        children.push(Node::Leaf { dist: dist.clone(), real_n: 0.0 });
                    } else {
                        children.push(self.build(blo, bhi, used_nominal, depth + 1)?);
                    }
                }
                used_nominal[attr] = false;
                Ok(Node::Nominal { attr, children, default_branch, dist })
            }
            SegSplit::Numeric { attr, threshold, cut, non_missing } => {
                let m = non_missing;
                // Missing rows follow the larger side; that side is also the
                // prediction default (matching the per-node-sort path, where
                // `default_left` is measured after missing rows land).
                let left_gets_missing = cut >= m - cut;
                {
                    let seg = &self.sorted[attr][lo..hi];
                    for (k, &r) in seg.iter().enumerate() {
                        let s = if k < cut {
                            0u16
                        } else if k < m || !left_gets_missing {
                            1
                        } else {
                            0
                        };
                        self.side[r as usize] = s;
                    }
                }
                let starts = self.partition(lo, hi, 2);
                let l = self.build(starts[0], starts[1], used_nominal, depth + 1)?;
                let r = self.build(starts[1], starts[2], used_nominal, depth + 1)?;
                Ok(Node::Numeric {
                    attr,
                    threshold,
                    left: Box::new(l),
                    right: Box::new(r),
                    default_left: left_gets_missing,
                    dist,
                })
            }
        }
    }

    fn evaluate(&self, attr: usize, lo: usize, hi: usize, h: f64) -> Option<(f64, SegSplit)> {
        match &self.data.attributes()[attr].kind {
            AttributeKind::Nominal(labels) => self.evaluate_nominal(attr, labels.len(), lo, hi, h),
            AttributeKind::Numeric => self.evaluate_numeric(attr, lo, hi, h),
        }
    }

    fn evaluate_nominal(
        &self,
        attr: usize,
        card: usize,
        lo: usize,
        hi: usize,
        parent_entropy: f64,
    ) -> Option<(f64, SegSplit)> {
        let codes = self.data.nominal_codes(attr).expect("nominal column");
        let nc = self.n_classes;
        // One flat histogram pass replaces the naive path's per-branch index
        // vectors + per-branch class_dist re-scans.
        let mut counts = vec![0u32; card * nc];
        let mut missing_dist = vec![0u32; nc];
        let mut sizes = vec![0usize; card];
        let mut n_missing = 0usize;
        for &r in &self.master[lo..hi] {
            let c = self.classes[r as usize] as usize;
            let code = codes[r as usize];
            if code == MISSING_CODE {
                missing_dist[c] += 1;
                n_missing += 1;
            } else {
                sizes[code as usize] += 1;
                counts[code as usize * nc + c] += 1;
            }
        }
        // Route missing rows into the largest branch (`max_by_key` keeps the
        // last maximum — same tie rule as the naive path).
        let biggest = (0..card).max_by_key(|&b| sizes[b]).unwrap_or(0);
        if n_missing > 0 {
            sizes[biggest] += n_missing;
            for (slot, &m) in counts[biggest * nc..(biggest + 1) * nc].iter_mut().zip(&missing_dist)
            {
                *slot += m;
            }
        }
        let populated = sizes.iter().filter(|&&s| s >= self.opts.min_leaf).count();
        if populated < 2 {
            return None;
        }
        let n = (hi - lo) as f64;
        let mut cond = 0.0;
        let mut split_info_counts = Vec::with_capacity(card);
        let mut dbuf = vec![0.0; nc];
        for b in 0..card {
            split_info_counts.push(sizes[b] as f64);
            if sizes[b] > 0 {
                for (slot, &count) in dbuf.iter_mut().zip(&counts[b * nc..(b + 1) * nc]) {
                    *slot = f64::from(count);
                }
                cond += sizes[b] as f64 / n * entropy(&dbuf);
            }
        }
        let gain = parent_entropy - cond;
        if gain <= 1e-12 {
            return None;
        }
        let score = if self.opts.gain_ratio {
            let si = entropy(&split_info_counts);
            if si <= 1e-12 {
                return None;
            }
            gain / si
        } else {
            gain
        };
        Some((score, SegSplit::Nominal { attr, sizes, biggest }))
    }

    fn evaluate_numeric(
        &self,
        attr: usize,
        lo: usize,
        hi: usize,
        parent_entropy: f64,
    ) -> Option<(f64, SegSplit)> {
        let vals = self.data.numeric_values(attr).expect("numeric column");
        let seg = &self.sorted[attr][lo..hi];
        // Missing (NaN) sentinels sort last, so the non-missing rows are a
        // prefix; no re-sort, no (value, class) pair materialization.
        let m = seg.partition_point(|&r| !vals[r as usize].is_nan());
        if m < 2 * self.opts.min_leaf {
            return None;
        }
        let nc = self.n_classes;
        let mut total = vec![0u32; nc];
        for &r in &seg[..m] {
            total[self.classes[r as usize] as usize] += 1;
        }
        let n = m as f64;
        let mut left = vec![0u32; nc];
        let mut lbuf = vec![0.0; nc];
        let mut rbuf = vec![0.0; nc];
        let mut best: Option<(f64, usize, f64)> = None; // (gain, cut, threshold)
        for cut in 1..m {
            let prev = seg[cut - 1] as usize;
            left[self.classes[prev] as usize] += 1;
            if vals[prev] == vals[seg[cut] as usize] {
                continue;
            }
            if cut < self.opts.min_leaf || m - cut < self.opts.min_leaf {
                continue;
            }
            for c in 0..nc {
                lbuf[c] = f64::from(left[c]);
                rbuf[c] = f64::from(total[c] - left[c]);
            }
            let cond = cut as f64 / n * entropy(&lbuf) + (n - cut as f64) / n * entropy(&rbuf);
            let gain = parent_entropy - cond;
            if best.map(|(g, _, _)| gain > g).unwrap_or(true) {
                let threshold = (vals[prev] + vals[seg[cut] as usize]) / 2.0;
                best = Some((gain, cut, threshold));
            }
        }
        let (gain, cut, threshold) = best?;
        if gain <= 1e-12 {
            return None;
        }
        let score = if self.opts.gain_ratio {
            let si = entropy(&[cut as f64, n - cut as f64]);
            if si <= 1e-12 {
                return None;
            }
            gain / si
        } else {
            gain
        };
        Some((score, SegSplit::Numeric { attr, threshold, cut, non_missing: m }))
    }
}

/// Builds a tree with the requested strategy; shared by [`C45`] and
/// [`RandomTree`].
fn build_tree(
    data: &Instances,
    n_classes: usize,
    opts: BuildOptions,
    seed: u64,
    strategy: SplitSearch,
) -> Result<Node> {
    let mut used = vec![false; data.attributes().len()];
    match strategy {
        SplitSearch::Presorted => {
            let mut builder =
                PresortedBuilder::new(data, n_classes, opts, StdRng::seed_from_u64(seed))?;
            builder.build_root(&mut used)
        }
        SplitSearch::PerNodeSort => {
            let mut builder = Builder { data, n_classes, opts, rng: StdRng::seed_from_u64(seed) };
            let rows: Vec<usize> = (0..data.len()).collect();
            builder.build(&rows, &mut used, 0)
        }
    }
}

/// Weka's `Stats.addErrs`: additional errors to charge a leaf making `e`
/// errors over `n` instances, at confidence `cf` (pessimistic upper bound of
/// the binomial error rate).
fn added_errors(n: f64, e: f64, cf: f64) -> f64 {
    if cf > 0.5 {
        return 0.0; // no pruning pressure
    }
    if e < 1.0 {
        let base = n * (1.0 - cf.powf(1.0 / n));
        if e == 0.0 {
            return base;
        }
        return base + e * (added_errors(n, 1.0, cf) - base);
    }
    if e + 0.5 >= n {
        return (n - e).max(0.0);
    }
    // Normal approximation to the binomial upper confidence limit.
    let z = crate::stats_util::probit(1.0 - cf);
    let f = (e + 0.5) / n;
    let r = (f + z * z / (2.0 * n) + z * (f / n - f * f / n + z * z / (4.0 * n * n)).sqrt())
        / (1.0 + z * z / n);
    r * n - e
}

/// `(real instance mass, training errors)` of a node treated as a leaf:
/// errors are the real mass times the misclassification fraction of the
/// distribution's majority class.
fn leaf_errors(dist: &[f64], real_n: f64) -> (f64, f64) {
    let total: f64 = dist.iter().sum();
    if total <= 0.0 || real_n <= 0.0 {
        return (0.0, 0.0);
    }
    let max = dist.iter().copied().fold(0.0, f64::max);
    (real_n, real_n * (1.0 - max / total))
}

/// Pessimistic estimated error of a (pruned) subtree: the sum over its
/// leaves of `e + addErrs(n, e)`.
fn subtree_estimated_errors(node: &Node, cf: f64) -> f64 {
    match node {
        Node::Leaf { dist, real_n } => {
            let (n, e) = leaf_errors(dist, *real_n);
            if n == 0.0 {
                0.0
            } else {
                e + added_errors(n, e, cf)
            }
        }
        Node::Nominal { children, .. } => {
            children.iter().map(|c| subtree_estimated_errors(c, cf)).sum()
        }
        Node::Numeric { left, right, .. } => {
            subtree_estimated_errors(left, cf) + subtree_estimated_errors(right, cf)
        }
    }
}

/// Pessimistic post-pruning: replace a subtree with a leaf when the leaf's
/// estimated error does not exceed the subtree's (computed recursively over
/// the subtree's actual leaves, as in C4.5).
fn prune(node: Node, cf: f64) -> Node {
    match node {
        Node::Leaf { dist, real_n } => Node::Leaf { dist, real_n },
        Node::Nominal { attr, children, default_branch, dist } => {
            let children: Vec<Node> = children.into_iter().map(|c| prune(c, cf)).collect();
            let subtree_est: f64 = children.iter().map(|c| subtree_estimated_errors(c, cf)).sum();
            let real_n: f64 = dist.iter().sum();
            let (n, e) = leaf_errors(&dist, real_n);
            let leaf_est = e + added_errors(n, e, cf);
            if leaf_est <= subtree_est + 0.1 {
                Node::Leaf { dist, real_n }
            } else {
                Node::Nominal { attr, children, default_branch, dist }
            }
        }
        Node::Numeric { attr, threshold, left, right, default_left, dist } => {
            let left = Box::new(prune(*left, cf));
            let right = Box::new(prune(*right, cf));
            let subtree_est =
                subtree_estimated_errors(&left, cf) + subtree_estimated_errors(&right, cf);
            let real_n: f64 = dist.iter().sum();
            let (n, e) = leaf_errors(&dist, real_n);
            let leaf_est = e + added_errors(n, e, cf);
            if leaf_est <= subtree_est + 0.1 {
                Node::Leaf { dist, real_n }
            } else {
                Node::Numeric { attr, threshold, left, right, default_left, dist }
            }
        }
    }
}

fn predict_node<'n>(mut node: &'n Node, row: &[Value]) -> Result<&'n [f64]> {
    loop {
        match node {
            Node::Leaf { dist, .. } => return Ok(dist),
            Node::Nominal { attr, children, default_branch, .. } => {
                let branch = match row.get(*attr) {
                    Some(Value::Nominal(v)) => (*v as usize).min(children.len() - 1),
                    Some(Value::Missing) | None => *default_branch,
                    Some(Value::Numeric(_)) => {
                        return Err(Error::SchemaMismatch(format!(
                            "attribute {attr}: numeric value at a nominal split"
                        )))
                    }
                };
                node = &children[branch];
            }
            Node::Numeric { attr, threshold, left, right, default_left, .. } => {
                let go_left = match row.get(*attr) {
                    Some(Value::Numeric(v)) => *v <= *threshold,
                    Some(Value::Missing) | None => *default_left,
                    Some(Value::Nominal(_)) => {
                        return Err(Error::SchemaMismatch(format!(
                            "attribute {attr}: nominal value at a numeric split"
                        )))
                    }
                };
                node = if go_left { left } else { right };
            }
        }
    }
}

/// C4.5 decision tree (J48): gain-ratio splits, pessimistic pruning.
#[derive(Debug, Clone)]
pub struct C45 {
    /// Minimum instances per accepted branch (Weka `minNumObj`).
    pub min_leaf: usize,
    /// Pruning confidence factor (Weka `confidenceFactor`, default 0.25).
    pub confidence: f64,
    /// Whether to prune at all (Weka `unpruned` inverted).
    pub pruning: bool,
    /// Split-search strategy (identical trees either way; see [`SplitSearch`]).
    pub split_search: SplitSearch,
    root: Option<Node>,
    n_classes: usize,
}

impl Default for C45 {
    fn default() -> Self {
        C45 {
            min_leaf: 2,
            confidence: 0.25,
            pruning: true,
            split_search: SplitSearch::default(),
            root: None,
            n_classes: 0,
        }
    }
}

impl C45 {
    /// J48 with Weka's default parameters.
    pub fn new() -> Self {
        Self::default()
    }

    /// An unpruned variant.
    pub fn unpruned() -> Self {
        C45 { pruning: false, ..Self::default() }
    }

    /// Number of nodes in the fitted tree.
    pub fn node_count(&self) -> usize {
        self.root.as_ref().map(Node::count_nodes).unwrap_or(0)
    }

    /// Depth of the fitted tree.
    pub fn depth(&self) -> usize {
        self.root.as_ref().map(Node::depth).unwrap_or(0)
    }
}

impl Classifier for C45 {
    fn fit(&mut self, data: &Instances) -> Result<()> {
        if data.is_empty() {
            return Err(Error::EmptyDataset("C45::fit"));
        }
        self.n_classes = data.num_classes()?;
        let opts = BuildOptions {
            min_leaf: self.min_leaf,
            gain_ratio: true,
            feature_subset: None,
            max_depth: 0,
        };
        let mut root = build_tree(data, self.n_classes, opts, 0, self.split_search)?;
        if self.pruning {
            root = prune(root, self.confidence);
        }
        self.root = Some(root);
        Ok(())
    }

    fn predict_proba(&self, row: &[Value]) -> Result<Vec<f64>> {
        let root = self.root.as_ref().ok_or(Error::NotFitted("C45"))?;
        let dist = predict_node(root, row)?;
        // Laplace-correct the leaf distribution.
        let mut p: Vec<f64> = dist.iter().map(|&c| c + 1.0).collect();
        normalize_distribution(&mut p);
        Ok(p)
    }

    fn name(&self) -> &'static str {
        "J48"
    }
}

/// Randomized tree for forests: per-node random feature subsets, plain
/// information gain, no pruning (Weka's `RandomTree`).
#[derive(Debug, Clone)]
pub struct RandomTree {
    /// Features considered per node (`0` = `ceil(log2(F)) + 1`, Weka's default).
    pub feature_subset: usize,
    /// Minimum instances per branch.
    pub min_leaf: usize,
    /// Maximum depth (0 = unlimited).
    pub max_depth: usize,
    /// RNG seed.
    pub seed: u64,
    /// Split-search strategy (identical trees either way; see [`SplitSearch`]).
    pub split_search: SplitSearch,
    root: Option<Node>,
    n_classes: usize,
}

impl RandomTree {
    /// Random tree with the given seed and Weka-style defaults.
    pub fn new(seed: u64) -> Self {
        RandomTree {
            feature_subset: 0,
            min_leaf: 1,
            max_depth: 0,
            seed,
            split_search: SplitSearch::default(),
            root: None,
            n_classes: 0,
        }
    }
}

impl Classifier for RandomTree {
    fn fit(&mut self, data: &Instances) -> Result<()> {
        if data.is_empty() {
            return Err(Error::EmptyDataset("RandomTree::fit"));
        }
        self.n_classes = data.num_classes()?;
        let f = data.feature_indices().len();
        let subset = if self.feature_subset == 0 {
            ((f as f64).log2().ceil() as usize + 1).min(f)
        } else {
            self.feature_subset.min(f)
        };
        let opts = BuildOptions {
            min_leaf: self.min_leaf,
            gain_ratio: false,
            feature_subset: Some(subset),
            max_depth: self.max_depth,
        };
        self.root = Some(build_tree(data, self.n_classes, opts, self.seed, self.split_search)?);
        Ok(())
    }

    fn predict_proba(&self, row: &[Value]) -> Result<Vec<f64>> {
        let root = self.root.as_ref().ok_or(Error::NotFitted("RandomTree"))?;
        let dist = predict_node(root, row)?;
        let mut p = dist.to_vec();
        normalize_distribution(&mut p);
        Ok(p)
    }

    fn name(&self) -> &'static str {
        "RandomTree"
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::data::{nominal_row, numeric_row, Attribute, DatasetBuilder};

    fn and_dataset() -> Instances {
        // class = f0 AND f1 — needs depth 2, and each feature has positive
        // gain at the root (unlike XOR, which defeats any greedy splitter).
        let mut ds = DatasetBuilder::nominal(2, 2, 2).unwrap();
        for _ in 0..10 {
            ds.push_row(nominal_row(&[0, 0], 0)).unwrap();
            ds.push_row(nominal_row(&[0, 1], 0)).unwrap();
            ds.push_row(nominal_row(&[1, 0], 0)).unwrap();
            ds.push_row(nominal_row(&[1, 1], 1)).unwrap();
        }
        ds
    }

    #[test]
    fn learns_conjunction() {
        let mut tree = C45::new();
        tree.fit(&and_dataset()).unwrap();
        assert_eq!(tree.predict(&nominal_row(&[0, 0], 0)).unwrap(), 0);
        assert_eq!(tree.predict(&nominal_row(&[0, 1], 0)).unwrap(), 0);
        assert_eq!(tree.predict(&nominal_row(&[1, 0], 0)).unwrap(), 0);
        assert_eq!(tree.predict(&nominal_row(&[1, 1], 0)).unwrap(), 1);
        assert!(tree.node_count() >= 4, "AND needs both features: {}", tree.node_count());
    }

    #[test]
    fn xor_defeats_greedy_splitting() {
        // Both features have exactly zero gain at the root of XOR, so C4.5
        // (like Weka's J48) degenerates to a single majority leaf. This
        // documents the known greedy limitation rather than a bug.
        let mut ds = DatasetBuilder::nominal(2, 2, 2).unwrap();
        for _ in 0..10 {
            ds.push_row(nominal_row(&[0, 0], 0)).unwrap();
            ds.push_row(nominal_row(&[0, 1], 1)).unwrap();
            ds.push_row(nominal_row(&[1, 0], 1)).unwrap();
            ds.push_row(nominal_row(&[1, 1], 0)).unwrap();
        }
        let mut tree = C45::new();
        tree.fit(&ds).unwrap();
        assert_eq!(tree.node_count(), 1);
    }

    #[test]
    fn learns_numeric_threshold() {
        let mut ds = DatasetBuilder::numeric(1, 2).unwrap();
        for i in 0..50 {
            let v = i as f64;
            ds.push_row(numeric_row(&[v], u32::from(v > 25.0))).unwrap();
        }
        let mut tree = C45::new();
        tree.fit(&ds).unwrap();
        assert_eq!(tree.predict(&numeric_row(&[10.0], 0)).unwrap(), 0);
        assert_eq!(tree.predict(&numeric_row(&[40.0], 0)).unwrap(), 1);
        assert!(tree.depth() >= 2);
    }

    #[test]
    fn pruning_collapses_noise_splits() {
        // Class is (almost) independent of the feature: an unpruned tree may
        // split on noise; a pruned one should be (nearly) a single leaf.
        let mut ds = DatasetBuilder::nominal(4, 2, 2).unwrap();
        for i in 0..200u32 {
            let noise = [(i * 7) % 2, (i * 13) % 2, (i * 29) % 2, (i * 31) % 2];
            // 90% class 0 regardless of features.
            let class = u32::from(i % 10 == 0);
            ds.push_row(nominal_row(&noise, class)).unwrap();
        }
        let mut pruned = C45::new();
        pruned.fit(&ds).unwrap();
        let mut unpruned = C45::unpruned();
        unpruned.fit(&ds).unwrap();
        assert!(
            pruned.node_count() <= unpruned.node_count(),
            "pruned {} vs unpruned {}",
            pruned.node_count(),
            unpruned.node_count()
        );
        assert_eq!(pruned.predict(&nominal_row(&[0, 0, 0, 0], 0)).unwrap(), 0);
    }

    #[test]
    fn added_errors_monotone_in_confidence() {
        // Lower confidence = more pessimism = more added errors.
        let strict = added_errors(100.0, 5.0, 0.1);
        let loose = added_errors(100.0, 5.0, 0.4);
        assert!(strict > loose, "{strict} vs {loose}");
        assert_eq!(added_errors(100.0, 5.0, 0.6), 0.0, "cf > 0.5 disables pruning pressure");
        assert!(added_errors(10.0, 0.0, 0.25) > 0.0, "even error-free leaves get a charge");
    }

    #[test]
    fn missing_values_follow_default_branch() {
        let mut ds = DatasetBuilder::nominal(1, 2, 2).unwrap();
        for _ in 0..30 {
            ds.push_row(nominal_row(&[0], 0)).unwrap();
        }
        for _ in 0..10 {
            ds.push_row(nominal_row(&[1], 1)).unwrap();
        }
        let mut tree = C45::unpruned();
        tree.fit(&ds).unwrap();
        // Missing goes down the majority (value 0) branch.
        assert_eq!(tree.predict(&[Value::Missing, Value::Missing]).unwrap(), 0);
    }

    #[test]
    fn random_tree_learns_conjunction() {
        let ds = and_dataset();
        let mut correct_any = false;
        for seed in 0..4 {
            let mut rt = RandomTree::new(seed);
            rt.fit(&ds).unwrap();
            let ok = [(0, 0, 0), (0, 1, 0), (1, 0, 0), (1, 1, 1)]
                .iter()
                .all(|&(a, b, c)| rt.predict(&nominal_row(&[a, b], 0)).unwrap() == c);
            correct_any |= ok;
        }
        assert!(correct_any, "some seed must solve AND (both features available)");
    }

    #[test]
    fn unfitted_errors() {
        let tree = C45::new();
        assert!(matches!(tree.predict_proba(&[]), Err(Error::NotFitted("C45"))));
        let rt = RandomTree::new(0);
        assert!(rt.predict_proba(&[]).is_err());
    }

    #[test]
    fn single_class_dataset_yields_single_leaf() {
        let mut ds = DatasetBuilder::nominal(2, 3, 2).unwrap();
        for i in 0..20u32 {
            ds.push_row(nominal_row(&[i % 3, (i + 1) % 3], 0)).unwrap();
        }
        let mut tree = C45::new();
        tree.fit(&ds).unwrap();
        assert_eq!(tree.node_count(), 1);
        assert_eq!(tree.predict(&nominal_row(&[2, 2], 0)).unwrap(), 0);
    }

    /// Mixed nominal/numeric dataset with missing values in both kinds of
    /// column — the worst case for split bookkeeping.
    fn mixed_dataset_with_missing() -> Instances {
        let attrs = vec![
            Attribute::numeric("kwh"),
            Attribute::nominal("sym", vec!["a".into(), "b".into(), "c".into()]),
            Attribute::numeric("peak"),
            Attribute::nominal("class", vec!["lo".into(), "hi".into()]),
        ];
        let mut ds = Instances::new(attrs, 3).unwrap();
        for i in 0..120u32 {
            let kwh = if i % 11 == 0 {
                Value::Missing
            } else {
                Value::Numeric(f64::from(i % 40) + f64::from(i % 3) * 0.25)
            };
            let sym = if i % 17 == 0 { Value::Missing } else { Value::Nominal(i % 3) };
            let peak = Value::Numeric(f64::from((i * 7) % 23));
            let class = Value::Nominal(u32::from(i % 40 > 18));
            ds.push_row(vec![kwh, sym, peak, class]).unwrap();
        }
        ds
    }

    /// The presorted search must grow byte-for-byte the same trees as the
    /// per-node-sort reference on every dataset shape we have, including
    /// missing (NaN-sentinel) values — the regression case for the old
    /// `partial_cmp(..).expect("finite values")` sort.
    #[test]
    fn presorted_matches_per_node_sort() {
        let numeric = {
            let mut ds = DatasetBuilder::numeric(2, 2).unwrap();
            for i in 0..80 {
                ds.push_row(numeric_row(
                    &[(i % 13) as f64, ((i * 5) % 17) as f64],
                    u32::from(i % 13 > 6),
                ))
                .unwrap();
            }
            ds
        };
        for ds in [and_dataset(), numeric, mixed_dataset_with_missing()] {
            for pruning in [true, false] {
                let mut fast = C45 { pruning, ..C45::default() };
                let mut slow =
                    C45 { pruning, split_search: SplitSearch::PerNodeSort, ..C45::default() };
                fast.fit(&ds).unwrap();
                slow.fit(&ds).unwrap();
                assert_eq!(fast.node_count(), slow.node_count(), "pruning={pruning}");
                assert_eq!(fast.depth(), slow.depth(), "pruning={pruning}");
                for i in 0..ds.len() {
                    let row = ds.row(i);
                    assert_eq!(
                        fast.predict_proba(&row).unwrap(),
                        slow.predict_proba(&row).unwrap(),
                        "row {i}, pruning={pruning}"
                    );
                }
            }
            for seed in 0..3 {
                let mut fast = RandomTree::new(seed);
                let mut slow = RandomTree::new(seed);
                slow.split_search = SplitSearch::PerNodeSort;
                fast.fit(&ds).unwrap();
                slow.fit(&ds).unwrap();
                for i in 0..ds.len() {
                    let row = ds.row(i);
                    assert_eq!(
                        fast.predict_proba(&row).unwrap(),
                        slow.predict_proba(&row).unwrap(),
                        "row {i}, seed={seed}"
                    );
                }
            }
        }
    }

    #[test]
    fn missing_numeric_values_sort_last_and_follow_larger_side() {
        let ds = mixed_dataset_with_missing();
        for strategy in [SplitSearch::Presorted, SplitSearch::PerNodeSort] {
            let mut tree = C45 { split_search: strategy, ..C45::default() };
            tree.fit(&ds).unwrap();
            // Fully-missing probe rows must route through default branches.
            let p = tree.predict_proba(&[Value::Missing, Value::Missing, Value::Missing]).unwrap();
            assert!((p.iter().sum::<f64>() - 1.0).abs() < 1e-9, "{strategy:?}");
        }
    }

    #[test]
    fn proba_sums_to_one() {
        let mut tree = C45::new();
        tree.fit(&and_dataset()).unwrap();
        let p = tree.predict_proba(&nominal_row(&[0, 1], 0)).unwrap();
        assert!((p.iter().sum::<f64>() - 1.0).abs() < 1e-9);
        assert!(p.iter().all(|&x| x >= 0.0));
    }
}
