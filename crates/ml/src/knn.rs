//! k-nearest-neighbours classifier (Weka's `IBk` equivalent) with the HEOM
//! mixed-type distance: overlap distance for nominal attributes,
//! range-normalized absolute difference for numeric ones. A useful extra
//! baseline for the symbolic experiments — it works unchanged on nominal
//! symbol vectors, which is exactly the flexibility the paper advertises.

use crate::classifier::{normalize_distribution, Classifier};
use crate::data::{AttributeKind, Instances, Value};
use crate::error::{Error, Result};

/// k-NN with majority vote (distance-weighted optional).
#[derive(Debug, Clone)]
pub struct Knn {
    /// Number of neighbours (default 3).
    pub k: usize,
    /// Weight votes by inverse distance.
    pub distance_weighted: bool,
    train: Option<Instances>,
    /// Per-attribute numeric ranges for normalization.
    ranges: Vec<Option<(f64, f64)>>,
    n_classes: usize,
}

impl Knn {
    /// k-NN with `k` neighbours.
    pub fn new(k: usize) -> Self {
        Knn { k, distance_weighted: false, train: None, ranges: Vec::new(), n_classes: 0 }
    }

    fn distance(&self, data: &Instances, i: usize, row: &[Value]) -> Result<f64> {
        let mut d = 0.0;
        for a in data.feature_indices() {
            let x = data.value(i, a);
            let y = row.get(a).copied().unwrap_or(Value::Missing);
            let term = match (&data.attributes()[a].kind, x, y) {
                // HEOM: missing on either side contributes the maximum (1).
                (_, Value::Missing, _) | (_, _, Value::Missing) => 1.0,
                (AttributeKind::Nominal(_), Value::Nominal(p), Value::Nominal(q)) => {
                    if p == q {
                        0.0
                    } else {
                        1.0
                    }
                }
                (AttributeKind::Numeric, Value::Numeric(p), Value::Numeric(q)) => {
                    match self.ranges[a] {
                        Some((lo, hi)) if hi > lo => ((p - q) / (hi - lo)).abs().min(1.0),
                        _ => 0.0,
                    }
                }
                _ => {
                    return Err(Error::SchemaMismatch(format!(
                        "attribute {a}: mismatched value kinds in distance"
                    )))
                }
            };
            d += term * term;
        }
        Ok(d.sqrt())
    }
}

impl Classifier for Knn {
    fn fit(&mut self, data: &Instances) -> Result<()> {
        if data.is_empty() {
            return Err(Error::EmptyDataset("Knn::fit"));
        }
        if self.k == 0 {
            return Err(Error::InvalidParameter {
                name: "k",
                reason: "must be positive".to_string(),
            });
        }
        self.n_classes = data.num_classes()?;
        self.ranges = data
            .attributes()
            .iter()
            .enumerate()
            .map(|(a, attr)| match attr.kind {
                AttributeKind::Numeric => {
                    let mut lo = f64::INFINITY;
                    let mut hi = f64::NEG_INFINITY;
                    let vals = data.numeric_values(a).expect("numeric column");
                    for &v in vals {
                        if !v.is_nan() {
                            lo = lo.min(v);
                            hi = hi.max(v);
                        }
                    }
                    (lo <= hi).then_some((lo, hi))
                }
                _ => None,
            })
            .collect();
        self.train = Some(data.clone());
        Ok(())
    }

    fn predict_proba(&self, row: &[Value]) -> Result<Vec<f64>> {
        let data = self.train.as_ref().ok_or(Error::NotFitted("Knn"))?;
        let mut dists: Vec<(f64, usize)> = (0..data.len())
            .map(|i| Ok((self.distance(data, i, row)?, i)))
            .collect::<Result<_>>()?;
        dists.sort_by(|a, b| a.0.partial_cmp(&b.0).expect("finite distances"));
        let k = self.k.min(dists.len());
        let mut votes = vec![0.0f64; self.n_classes];
        for &(d, i) in dists.iter().take(k) {
            let w = if self.distance_weighted { 1.0 / (d + 1e-9) } else { 1.0 };
            votes[data.class_of(i)?] += w;
        }
        normalize_distribution(&mut votes);
        Ok(votes)
    }

    fn name(&self) -> &'static str {
        "IBk"
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::data::{nominal_row, numeric_row, DatasetBuilder};

    #[test]
    fn nominal_neighbours() {
        let mut ds = DatasetBuilder::nominal(3, 4, 2).unwrap();
        for _ in 0..5 {
            ds.push_row(nominal_row(&[0, 0, 0], 0)).unwrap();
            ds.push_row(nominal_row(&[3, 3, 3], 1)).unwrap();
        }
        let mut knn = Knn::new(3);
        knn.fit(&ds).unwrap();
        assert_eq!(knn.predict(&nominal_row(&[0, 0, 1], 0)).unwrap(), 0);
        assert_eq!(knn.predict(&nominal_row(&[3, 2, 3], 0)).unwrap(), 1);
    }

    #[test]
    fn numeric_range_normalization_matters() {
        // Feature 0 spans 0..1000, feature 1 spans 0..1; without
        // normalization feature 0 would dominate.
        let mut ds = DatasetBuilder::numeric(2, 2).unwrap();
        for i in 0..20 {
            ds.push_row(numeric_row(&[i as f64 * 50.0, 0.0], 0)).unwrap();
            ds.push_row(numeric_row(&[i as f64 * 50.0, 1.0], 1)).unwrap();
        }
        let mut knn = Knn::new(1);
        knn.fit(&ds).unwrap();
        // Class is determined by feature 1 alone.
        assert_eq!(knn.predict(&numeric_row(&[500.0, 0.05], 0)).unwrap(), 0);
        assert_eq!(knn.predict(&numeric_row(&[500.0, 0.95], 0)).unwrap(), 1);
    }

    #[test]
    fn distance_weighting_breaks_ties() {
        let mut ds = DatasetBuilder::numeric(1, 2).unwrap();
        ds.push_row(numeric_row(&[0.0], 0)).unwrap();
        ds.push_row(numeric_row(&[10.0], 1)).unwrap();
        let mut knn = Knn::new(2);
        knn.distance_weighted = true;
        knn.fit(&ds).unwrap();
        assert_eq!(knn.predict(&numeric_row(&[1.0], 0)).unwrap(), 0);
        assert_eq!(knn.predict(&numeric_row(&[9.0], 0)).unwrap(), 1);
    }

    #[test]
    fn missing_counts_as_max_distance() {
        let mut ds = DatasetBuilder::nominal(2, 2, 2).unwrap();
        ds.push_row(nominal_row(&[0, 0], 0)).unwrap();
        ds.push_row(nominal_row(&[1, 1], 1)).unwrap();
        let mut knn = Knn::new(1);
        knn.fit(&ds).unwrap();
        // Row with second attribute missing: nearest by first attribute.
        let p = knn.predict(&[Value::Nominal(1), Value::Missing, Value::Missing]).unwrap();
        assert_eq!(p, 1);
    }

    #[test]
    fn validation() {
        let knn = Knn::new(3);
        assert!(knn.predict_proba(&[]).is_err());
        let mut bad = Knn::new(0);
        let mut ds = DatasetBuilder::nominal(1, 2, 2).unwrap();
        ds.push_row(nominal_row(&[0], 0)).unwrap();
        assert!(bad.fit(&ds).is_err());
    }
}
