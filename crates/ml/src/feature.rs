//! Attribute evaluation — Weka's `InfoGainAttributeEval` equivalent: rank
//! features by the information they carry about the class. Used by the
//! experiments to show *which hours of the day* identify a household (the
//! interpretable side of the paper's re-identification result).

use crate::data::{AttributeKind, Instances, Value};
use crate::error::{Error, Result};

fn entropy(counts: &[f64]) -> f64 {
    let total: f64 = counts.iter().sum();
    if total <= 0.0 {
        return 0.0;
    }
    counts
        .iter()
        .filter(|&&c| c > 0.0)
        .map(|&c| {
            let p = c / total;
            -p * p.log2()
        })
        .sum()
}

/// Equal-frequency discretization of a numeric column into `bins` bins,
/// returning each row's bin index (missing → `None`).
fn discretize(data: &Instances, attr: usize, bins: usize) -> Vec<Option<u32>> {
    let column = data.numeric_values(attr).expect("numeric column");
    let mut values: Vec<f64> = column.iter().copied().filter(|v| !v.is_nan()).collect();
    values.sort_by(f64::total_cmp);
    if values.is_empty() {
        return vec![None; data.len()];
    }
    let cuts: Vec<f64> =
        (1..bins).map(|b| values[(b * values.len() / bins).min(values.len() - 1)]).collect();
    column.iter().map(|&v| (!v.is_nan()).then(|| cuts.partition_point(|&c| c < v) as u32)).collect()
}

/// Information gain of one attribute about the class. Numeric attributes
/// are discretized into `numeric_bins` equal-frequency bins first.
pub fn information_gain(data: &Instances, attr: usize, numeric_bins: usize) -> Result<f64> {
    if data.is_empty() {
        return Err(Error::EmptyDataset("information_gain"));
    }
    let k = data.num_classes()?;
    let class_counts: Vec<f64> = data.class_counts()?.into_iter().map(|c| c as f64).collect();
    let h_class = entropy(&class_counts);

    let values: Vec<Option<u32>> = match &data.attributes()[attr].kind {
        AttributeKind::Nominal(_) => (0..data.len())
            .map(|i| match data.value(i, attr) {
                Value::Nominal(v) => Some(v),
                _ => None,
            })
            .collect(),
        AttributeKind::Numeric => discretize(data, attr, numeric_bins.max(2)),
    };

    // Conditional entropy over observed values (missing rows contribute the
    // marginal, i.e. are skipped from both sides — Weka's default too).
    let mut groups: std::collections::HashMap<u32, Vec<f64>> = std::collections::HashMap::new();
    let mut observed = 0.0;
    for (i, v) in values.iter().enumerate() {
        if let Some(v) = v {
            groups.entry(*v).or_insert_with(|| vec![0.0; k])[data.class_of(i)?] += 1.0;
            observed += 1.0;
        }
    }
    if observed == 0.0 {
        return Ok(0.0);
    }
    let h_cond: f64 = groups
        .values()
        .map(|counts| {
            let n: f64 = counts.iter().sum();
            n / observed * entropy(counts)
        })
        .sum();
    Ok((h_class - h_cond).max(0.0))
}

/// Ranks all feature attributes by information gain, descending.
/// Returns `(attribute index, gain)` pairs.
pub fn rank_features(data: &Instances, numeric_bins: usize) -> Result<Vec<(usize, f64)>> {
    let mut out: Vec<(usize, f64)> = data
        .feature_indices()
        .into_iter()
        .map(|a| information_gain(data, a, numeric_bins).map(|g| (a, g)))
        .collect::<Result<_>>()?;
    out.sort_by(|a, b| b.1.partial_cmp(&a.1).expect("finite gains"));
    Ok(out)
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::data::{nominal_row, numeric_row, DatasetBuilder};

    #[test]
    fn perfect_predictor_gets_full_class_entropy() {
        let mut ds = DatasetBuilder::nominal(2, 4, 4).unwrap();
        for i in 0..80u32 {
            // Feature 0 = class; feature 1 cycles independently of the class
            // ((i/4) % 4 decorrelates from i % 4 over full blocks).
            ds.push_row(nominal_row(&[i % 4, (i / 4) % 4], i % 4)).unwrap();
        }
        let g0 = information_gain(&ds, 0, 4).unwrap();
        let g1 = information_gain(&ds, 1, 4).unwrap();
        assert!((g0 - 2.0).abs() < 1e-9, "4 balanced classes = 2 bits: {g0}");
        assert!(g1 < 0.2, "noise carries ~nothing: {g1}");
        let ranked = rank_features(&ds, 4).unwrap();
        assert_eq!(ranked[0].0, 0);
    }

    #[test]
    fn numeric_attribute_is_discretized() {
        let mut ds = DatasetBuilder::numeric(1, 2).unwrap();
        for i in 0..60 {
            ds.push_row(numeric_row(&[i as f64], u32::from(i >= 30))).unwrap();
        }
        let g = information_gain(&ds, 0, 4).unwrap();
        assert!(g > 0.9, "threshold class is nearly fully determined: {g}");
    }

    #[test]
    fn missing_values_are_skipped() {
        let mut ds = DatasetBuilder::nominal(1, 2, 2).unwrap();
        for i in 0..20u32 {
            ds.push_row(nominal_row(&[i % 2], i % 2)).unwrap();
        }
        ds.push_row(vec![Value::Missing, Value::Nominal(0)]).unwrap();
        let g = information_gain(&ds, 0, 4).unwrap();
        assert!(g > 0.9);
    }

    #[test]
    fn empty_dataset_rejected() {
        let ds = DatasetBuilder::nominal(1, 2, 2).unwrap();
        assert!(information_gain(&ds, 0, 4).is_err());
    }
}
