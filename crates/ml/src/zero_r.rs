//! ZeroR baselines: predict the majority class (classification) or the mean
//! target (regression). Any result worth reporting must beat these.

use crate::classifier::{normalize_distribution, Classifier, Regressor};
use crate::data::{Instances, Value};
use crate::error::{Error, Result};

/// Majority-class classifier.
#[derive(Debug, Clone, Default)]
pub struct ZeroR {
    dist: Vec<f64>,
}

impl ZeroR {
    /// Creates an untrained baseline.
    pub fn new() -> Self {
        Self::default()
    }
}

impl Classifier for ZeroR {
    fn fit(&mut self, data: &Instances) -> Result<()> {
        if data.is_empty() {
            return Err(Error::EmptyDataset("ZeroR::fit"));
        }
        let mut d: Vec<f64> = data.class_counts()?.into_iter().map(|c| c as f64).collect();
        normalize_distribution(&mut d);
        self.dist = d;
        Ok(())
    }

    fn predict_proba(&self, _row: &[Value]) -> Result<Vec<f64>> {
        if self.dist.is_empty() {
            return Err(Error::NotFitted("ZeroR"));
        }
        Ok(self.dist.clone())
    }

    fn name(&self) -> &'static str {
        "ZeroR"
    }
}

/// Mean-target regressor.
#[derive(Debug, Clone, Default)]
pub struct MeanRegressor {
    mean: Option<f64>,
}

impl MeanRegressor {
    /// Creates an untrained baseline.
    pub fn new() -> Self {
        Self::default()
    }
}

impl Regressor for MeanRegressor {
    fn fit(&mut self, data: &Instances) -> Result<()> {
        if data.is_empty() {
            return Err(Error::EmptyDataset("MeanRegressor::fit"));
        }
        let sum: f64 = (0..data.len()).map(|i| data.target_of(i)).sum::<Result<f64>>()?;
        self.mean = Some(sum / data.len() as f64);
        Ok(())
    }

    fn predict(&self, _row: &[Value]) -> Result<f64> {
        self.mean.ok_or(Error::NotFitted("MeanRegressor"))
    }

    fn name(&self) -> &'static str {
        "Mean"
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::data::{nominal_row, regression_row, DatasetBuilder};

    #[test]
    fn majority_class() {
        let mut ds = DatasetBuilder::nominal(1, 2, 3).unwrap();
        for _ in 0..3 {
            ds.push_row(nominal_row(&[0], 2)).unwrap();
        }
        ds.push_row(nominal_row(&[0], 0)).unwrap();
        let mut z = ZeroR::new();
        z.fit(&ds).unwrap();
        assert_eq!(z.predict(&nominal_row(&[1], 0)).unwrap(), 2);
        assert_eq!(z.predict_proba(&[]).unwrap()[2], 0.75);
    }

    #[test]
    fn mean_regressor() {
        let mut ds = DatasetBuilder::regression(1).unwrap();
        ds.push_row(regression_row(&[0.0], 10.0)).unwrap();
        ds.push_row(regression_row(&[1.0], 20.0)).unwrap();
        let mut m = MeanRegressor::new();
        m.fit(&ds).unwrap();
        assert_eq!(m.predict(&regression_row(&[5.0], 0.0)).unwrap(), 15.0);
    }

    #[test]
    fn not_fitted() {
        assert!(ZeroR::new().predict_proba(&[]).is_err());
        assert!(MeanRegressor::new().predict(&[]).is_err());
    }
}
