//! Small numerical utilities shared by the learners.

/// Inverse standard-normal CDF (probit) via Acklam's rational approximation
/// (relative error < 1.15e-9). Panics outside `(0, 1)` — callers pass
/// compile-time-constant confidence levels.
pub fn probit(p: f64) -> f64 {
    assert!(0.0 < p && p < 1.0, "probit domain is (0,1), got {p}");
    const A: [f64; 6] = [
        -3.969683028665376e+01,
        2.209460984245205e+02,
        -2.759285104469687e+02,
        1.383_577_518_672_69e2,
        -3.066479806614716e+01,
        2.506628277459239e+00,
    ];
    const B: [f64; 5] = [
        -5.447609879822406e+01,
        1.615858368580409e+02,
        -1.556989798598866e+02,
        6.680131188771972e+01,
        -1.328068155288572e+01,
    ];
    const C: [f64; 6] = [
        -7.784894002430293e-03,
        -3.223964580411365e-01,
        -2.400758277161838e+00,
        -2.549732539343734e+00,
        4.374664141464968e+00,
        2.938163982698783e+00,
    ];
    const D: [f64; 4] = [
        7.784695709041462e-03,
        3.224671290700398e-01,
        2.445134137142996e+00,
        3.754408661907416e+00,
    ];
    const P_LOW: f64 = 0.02425;

    if p < P_LOW {
        let q = (-2.0 * p.ln()).sqrt();
        (((((C[0] * q + C[1]) * q + C[2]) * q + C[3]) * q + C[4]) * q + C[5])
            / ((((D[0] * q + D[1]) * q + D[2]) * q + D[3]) * q + 1.0)
    } else if p <= 1.0 - P_LOW {
        let q = p - 0.5;
        let r = q * q;
        (((((A[0] * r + A[1]) * r + A[2]) * r + A[3]) * r + A[4]) * r + A[5]) * q
            / (((((B[0] * r + B[1]) * r + B[2]) * r + B[3]) * r + B[4]) * r + 1.0)
    } else {
        let q = (-2.0 * (1.0 - p).ln()).sqrt();
        -(((((C[0] * q + C[1]) * q + C[2]) * q + C[3]) * q + C[4]) * q + C[5])
            / ((((D[0] * q + D[1]) * q + D[2]) * q + D[3]) * q + 1.0)
    }
}

/// Mean of a slice (0.0 for empty — callers guard).
pub fn mean(xs: &[f64]) -> f64 {
    if xs.is_empty() {
        return 0.0;
    }
    xs.iter().sum::<f64>() / xs.len() as f64
}

/// Population standard deviation.
pub fn std_dev(xs: &[f64]) -> f64 {
    if xs.is_empty() {
        return 0.0;
    }
    let m = mean(xs);
    (xs.iter().map(|x| (x - m).powi(2)).sum::<f64>() / xs.len() as f64).sqrt()
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn probit_reference_points() {
        assert!(probit(0.5).abs() < 1e-9);
        assert!((probit(0.75) - 0.6744898).abs() < 1e-5);
        assert!((probit(0.975) - 1.959964).abs() < 1e-5);
        assert!((probit(0.01) + 2.326348).abs() < 1e-5);
    }

    #[test]
    #[should_panic(expected = "probit domain")]
    fn probit_rejects_domain() {
        probit(0.0);
    }

    #[test]
    fn mean_and_std() {
        assert_eq!(mean(&[1.0, 3.0]), 2.0);
        assert_eq!(std_dev(&[2.0, 2.0]), 0.0);
        assert!((std_dev(&[2.0, 4.0, 4.0, 4.0, 5.0, 5.0, 7.0, 9.0]) - 2.0).abs() < 1e-12);
        assert_eq!(mean(&[]), 0.0);
        assert_eq!(std_dev(&[]), 0.0);
    }
}
