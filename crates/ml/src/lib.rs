//! # sms-ml — a from-scratch machine-learning substrate
//!
//! The paper runs its experiments through Weka (Hall et al. 2009). This
//! crate reimplements, in Rust and without external ML dependencies, every
//! learner and evaluation tool those experiments need:
//!
//! | Paper / Weka | Here |
//! |---|---|
//! | `NaiveBayes` | [`naive_bayes::NaiveBayes`] |
//! | `J48` (C4.5) | [`tree::C45`] |
//! | `RandomForest` | [`forest::RandomForest`] |
//! | `Logistic` | [`logistic::Logistic`] |
//! | `SMOreg` (ε-SVR) | [`svm::SvrRegressor`] |
//! | `IBk` (k-NN) | [`knn::Knn`] |
//! | `ZeroR` | [`zero_r::ZeroR`], [`zero_r::MeanRegressor`] |
//! | 10-fold CV, weighted F-measure | [`eval`] |
//! | lag-attribute forecasting | [`forecast`] |
//! | ARFF files (Weka interchange) | [`arff`] |
//! | clustering (k-means/k-modes, ARI) | [`cluster`] |
//!
//! Nominal attributes are first-class throughout — the paper's central
//! pitch is that symbolic meter data unlocks nominal-only algorithms.

#![warn(missing_docs)]
#![warn(rust_2018_idioms)]

pub mod arff;
pub mod classifier;
pub mod cluster;
pub mod data;
pub mod error;
pub mod eval;
pub mod feature;
pub mod forecast;
pub mod forest;
pub mod knn;
pub mod logistic;
pub mod markov;
pub mod naive_bayes;
pub mod report;
pub mod stats_util;
pub mod svm;
pub mod tree;
pub mod zero_r;

pub use classifier::{Classifier, Regressor};
pub use data::{Attribute, AttributeKind, Instances, Value};
pub use error::{Error, Result};
