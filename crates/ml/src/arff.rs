//! ARFF (Attribute-Relation File Format) interchange — the format the paper
//! actually used: "The so generated files were used as input for Weka's
//! implementation of various classifiers" (§3.1). Writing our datasets as
//! ARFF lets the reproduction be cross-checked against a real Weka
//! installation; reading lets Weka-prepared data flow back in.
//!
//! Supported subset: `@relation`, `@attribute <name> numeric`,
//! `@attribute <name> {v1,v2,…}` (nominal), `@data` with comma-separated
//! rows, `?` for missing values, `%` comments, and quoted names/labels.

use crate::data::{Attribute, AttributeKind, Instances, Value};
use crate::error::{Error, Result};
use std::fmt::Write as _;
use std::io::{BufReader, Read, Write};

/// Quotes a name/label if it contains ARFF-special characters.
fn quote(s: &str) -> String {
    if s.is_empty()
        || s.chars().any(|c| c.is_whitespace() || matches!(c, ',' | '{' | '}' | '%' | '\'' | '"'))
    {
        format!("'{}'", s.replace('\\', "\\\\").replace('\'', "\\'"))
    } else {
        s.to_string()
    }
}

/// Serializes a dataset to ARFF text.
pub fn to_arff(data: &Instances, relation: &str) -> Result<String> {
    let mut out = String::new();
    let _ = writeln!(out, "@relation {}", quote(relation));
    let _ = writeln!(out);
    for attr in data.attributes() {
        match &attr.kind {
            AttributeKind::Numeric => {
                let _ = writeln!(out, "@attribute {} numeric", quote(&attr.name));
            }
            AttributeKind::Nominal(labels) => {
                let labels: Vec<String> = labels.iter().map(|l| quote(l)).collect();
                let _ = writeln!(out, "@attribute {} {{{}}}", quote(&attr.name), labels.join(","));
            }
        }
    }
    let _ = writeln!(out);
    let _ = writeln!(out, "@data");
    for i in 0..data.len() {
        let cells: Vec<String> = data
            .row(i)
            .iter()
            .zip(data.attributes())
            .map(|(v, a)| match (v, &a.kind) {
                (Value::Missing, _) => Ok("?".to_string()),
                (Value::Numeric(x), AttributeKind::Numeric) => Ok(format!("{x}")),
                (Value::Nominal(idx), AttributeKind::Nominal(labels)) => {
                    labels.get(*idx as usize).map(|l| quote(l)).ok_or_else(|| {
                        Error::SchemaMismatch(format!("label index {idx} out of range"))
                    })
                }
                _ => Err(Error::SchemaMismatch(format!(
                    "row {i}: value does not match attribute {}",
                    a.name
                ))),
            })
            .collect::<Result<_>>()?;
        let _ = writeln!(out, "{}", cells.join(","));
    }
    Ok(out)
}

/// Writes ARFF to any sink.
pub fn write_arff<W: Write>(data: &Instances, relation: &str, mut w: W) -> Result<()> {
    let text = to_arff(data, relation)?;
    w.write_all(text.as_bytes())
        .map_err(|e| Error::InvalidParameter { name: "writer", reason: e.to_string() })
}

/// Tokenizes one ARFF logical line into fields, honouring quotes.
fn split_csv_respecting_quotes(line: &str) -> Result<Vec<String>> {
    let mut fields = Vec::new();
    let mut cur = String::new();
    let mut chars = line.chars().peekable();
    let mut in_quote: Option<char> = None;
    while let Some(c) = chars.next() {
        match (c, in_quote) {
            ('\\', Some(_)) => {
                if let Some(&next) = chars.peek() {
                    cur.push(next);
                    chars.next();
                }
            }
            (q @ ('\'' | '"'), None) => in_quote = Some(q),
            (q, Some(open)) if q == open => in_quote = None,
            (',', None) => {
                fields.push(cur.trim().to_string());
                cur = String::new();
            }
            (c, _) => cur.push(c),
        }
    }
    if in_quote.is_some() {
        return Err(Error::SchemaMismatch(format!("unterminated quote in: {line}")));
    }
    fields.push(cur.trim().to_string());
    Ok(fields)
}

/// Parses an `@attribute` line.
fn parse_attribute(rest: &str) -> Result<Attribute> {
    let rest = rest.trim();
    // Name: quoted or bare word.
    let (name, tail) = if let Some(stripped) = rest.strip_prefix('\'') {
        let end = stripped
            .find('\'')
            .ok_or_else(|| Error::SchemaMismatch(format!("bad attribute name: {rest}")))?;
        (stripped[..end].to_string(), stripped[end + 1..].trim())
    } else {
        let mut parts = rest.splitn(2, char::is_whitespace);
        let name = parts
            .next()
            .ok_or_else(|| Error::SchemaMismatch(format!("bad attribute: {rest}")))?
            .to_string();
        (name, parts.next().unwrap_or("").trim())
    };
    let tail_lower = tail.to_ascii_lowercase();
    if tail_lower.starts_with("numeric")
        || tail_lower.starts_with("real")
        || tail_lower.starts_with("integer")
    {
        return Ok(Attribute::numeric(name));
    }
    if tail.starts_with('{') && tail.ends_with('}') {
        let inner = &tail[1..tail.len() - 1];
        let labels = split_csv_respecting_quotes(inner)?;
        if labels.is_empty() || labels.iter().any(|l| l.is_empty()) {
            return Err(Error::SchemaMismatch(format!("empty nominal label in: {tail}")));
        }
        return Ok(Attribute::nominal(name, labels));
    }
    Err(Error::SchemaMismatch(format!("unsupported attribute type: {tail}")))
}

/// Parses ARFF text into a dataset. The **last** attribute becomes the class
/// (Weka's convention for classification datasets).
pub fn from_arff(text: &str) -> Result<Instances> {
    let mut attributes: Vec<Attribute> = Vec::new();
    let mut in_data = false;
    let mut inst: Option<Instances> = None;
    for (lineno, raw) in text.lines().enumerate() {
        let line = raw.trim();
        if line.is_empty() || line.starts_with('%') {
            continue;
        }
        let lower = line.to_ascii_lowercase();
        if !in_data {
            if lower.starts_with("@relation") {
                continue;
            }
            if lower.starts_with("@attribute") {
                attributes.push(parse_attribute(line["@attribute".len()..].trim())?);
                continue;
            }
            if lower.starts_with("@data") {
                if attributes.is_empty() {
                    return Err(Error::SchemaMismatch("@data before any @attribute".to_string()));
                }
                let class_index = attributes.len() - 1;
                inst = Some(
                    Instances::new(attributes.clone(), class_index)
                        .map_err(|e| Error::SchemaMismatch(e.to_string()))?,
                );
                in_data = true;
                continue;
            }
            return Err(Error::SchemaMismatch(format!("line {}: unexpected: {line}", lineno + 1)));
        }
        let inst_ref = inst.as_mut().expect("in_data implies instances");
        let fields = split_csv_respecting_quotes(line)?;
        if fields.len() != attributes.len() {
            return Err(Error::SchemaMismatch(format!(
                "line {}: {} fields for {} attributes",
                lineno + 1,
                fields.len(),
                attributes.len()
            )));
        }
        let row: Vec<Value> = fields
            .iter()
            .zip(&attributes)
            .map(|(f, a)| {
                if f == "?" {
                    return Ok(Value::Missing);
                }
                match &a.kind {
                    AttributeKind::Numeric => f
                        .parse::<f64>()
                        .map(Value::Numeric)
                        .map_err(|e| Error::SchemaMismatch(format!("line {}: {e}", lineno + 1))),
                    AttributeKind::Nominal(labels) => labels
                        .iter()
                        .position(|l| l == f)
                        .map(|i| Value::Nominal(i as u32))
                        .ok_or_else(|| {
                            Error::SchemaMismatch(format!(
                                "line {}: unknown label {f:?} for {}",
                                lineno + 1,
                                a.name
                            ))
                        }),
                }
            })
            .collect::<Result<_>>()?;
        inst_ref.push_row(row)?;
    }
    inst.ok_or_else(|| Error::SchemaMismatch("no @data section".to_string()))
}

/// Reads ARFF from any source.
pub fn read_arff<R: Read>(r: R) -> Result<Instances> {
    let mut text = String::new();
    BufReader::new(r)
        .read_to_string(&mut text)
        .map_err(|e| Error::InvalidParameter { name: "reader", reason: e.to_string() })?;
    from_arff(&text)
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::data::{nominal_row, numeric_row, DatasetBuilder};

    fn mixed_dataset() -> Instances {
        let attrs = vec![
            Attribute::numeric("power"),
            Attribute::nominal("symbol", vec!["00".into(), "01".into(), "10".into(), "11".into()]),
            Attribute::nominal("house", vec!["h1".into(), "h2".into()]),
        ];
        let mut ds = Instances::new(attrs, 2).unwrap();
        ds.push_row(vec![Value::Numeric(123.5), Value::Nominal(2), Value::Nominal(0)]).unwrap();
        ds.push_row(vec![Value::Missing, Value::Nominal(0), Value::Nominal(1)]).unwrap();
        ds
    }

    #[test]
    fn roundtrip_mixed_dataset() {
        let ds = mixed_dataset();
        let text = to_arff(&ds, "meter data").unwrap();
        assert!(text.contains("@relation 'meter data'"));
        assert!(text.contains("@attribute power numeric"));
        assert!(text.contains("@attribute symbol {00,01,10,11}"));
        assert!(text.contains("123.5,10,h1"));
        assert!(text.contains("?,00,h2"));
        let back = from_arff(&text).unwrap();
        assert_eq!(back, ds);
    }

    #[test]
    fn roundtrip_generated_day_vectors() {
        let mut ds = DatasetBuilder::nominal(4, 4, 3).unwrap();
        for i in 0..20u32 {
            ds.push_row(nominal_row(&[i % 4, (i + 1) % 4, 0, 3], i % 3)).unwrap();
        }
        let text = to_arff(&ds, "symbols").unwrap();
        let back = from_arff(&text).unwrap();
        assert_eq!(back, ds);
        assert_eq!(back.class_index(), 4, "last attribute is the class");
    }

    #[test]
    fn numeric_roundtrip_preserves_values() {
        let mut ds = DatasetBuilder::numeric(2, 2).unwrap();
        ds.push_row(numeric_row(&[0.1 + 0.2, -1e-9], 1)).unwrap();
        let back = from_arff(&to_arff(&ds, "r").unwrap()).unwrap();
        assert_eq!(back.row(0)[0].as_numeric(), Some(0.1 + 0.2), "exact f64 via Display");
    }

    #[test]
    fn quoted_labels_with_special_characters() {
        let attrs = vec![
            Attribute::nominal(
                "weird",
                vec!["has space".into(), "has,comma".into(), "o'quote".into()],
            ),
            Attribute::nominal("class", vec!["a".into(), "b".into()]),
        ];
        let mut ds = Instances::new(attrs, 1).unwrap();
        ds.push_row(vec![Value::Nominal(0), Value::Nominal(0)]).unwrap();
        ds.push_row(vec![Value::Nominal(1), Value::Nominal(1)]).unwrap();
        ds.push_row(vec![Value::Nominal(2), Value::Nominal(0)]).unwrap();
        let text = to_arff(&ds, "q").unwrap();
        let back = from_arff(&text).unwrap();
        assert_eq!(back, ds);
    }

    #[test]
    fn parses_weka_style_file() {
        let text = "\
% comment line
@RELATION weather

@ATTRIBUTE outlook {sunny, overcast, rainy}
@ATTRIBUTE temperature NUMERIC
@ATTRIBUTE play {yes, no}

@DATA
sunny, 85, no
overcast, 83, yes
rainy, ?, yes
";
        let ds = from_arff(text).unwrap();
        assert_eq!(ds.len(), 3);
        assert_eq!(ds.attributes().len(), 3);
        assert_eq!(ds.class_of(0).unwrap(), 1, "no");
        assert_eq!(ds.row(2)[1], Value::Missing);
        assert_eq!(ds.row(0)[1].as_numeric(), Some(85.0));
    }

    #[test]
    fn error_reporting() {
        assert!(from_arff("@data\n1,2\n").is_err(), "@data before attributes");
        assert!(from_arff("@attribute x numeric\n").is_err(), "no @data");
        assert!(from_arff("@attribute x numeric\n@data\n1,2\n").is_err(), "arity");
        assert!(
            from_arff("@attribute x {a,b}\n@attribute y {c}\n@data\nz,c\n").is_err(),
            "unknown label"
        );
        assert!(from_arff("@attribute x dateTime\n@data\n").is_err(), "unsupported type");
        let err = from_arff("@attribute x numeric\n@attribute c {a}\n@data\nfoo,a\n")
            .unwrap_err()
            .to_string();
        assert!(err.contains("line 4"), "{err}");
    }

    #[test]
    fn write_arff_to_sink() {
        let ds = mixed_dataset();
        let mut buf = Vec::new();
        write_arff(&ds, "sink", &mut buf).unwrap();
        let back = read_arff(&buf[..]).unwrap();
        assert_eq!(back, ds);
    }
}
