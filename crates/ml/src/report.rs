//! Human-readable evaluation reports: the per-class precision/recall/F table
//! Weka prints after cross-validation, which the paper's numbers were read
//! from.

use crate::error::{Error, Result};
use crate::eval::{ConfusionMatrix, CvResult};
use std::fmt::Write as _;

/// Renders the per-class metric table plus the weighted average row.
pub fn classification_report(
    confusion: &ConfusionMatrix,
    class_names: &[String],
) -> Result<String> {
    let k = confusion.num_classes();
    if class_names.len() != k {
        return Err(Error::InvalidParameter {
            name: "class_names",
            reason: format!("{} names for {k} classes", class_names.len()),
        });
    }
    let mut out = String::new();
    let _ = writeln!(
        out,
        "{:<16} {:>9} {:>9} {:>9} {:>9}",
        "class", "precision", "recall", "F-measure", "support"
    );
    let total = confusion.total();
    for (c, name) in class_names.iter().enumerate().take(k) {
        let support: u64 = confusion.counts()[c].iter().sum();
        let _ = writeln!(
            out,
            "{:<16} {:>9.3} {:>9.3} {:>9.3} {:>9}",
            name,
            confusion.precision(c),
            confusion.recall(c),
            confusion.f_measure(c),
            support
        );
    }
    let _ = writeln!(
        out,
        "{:<16} {:>9} {:>9} {:>9.3} {:>9}",
        "weighted avg",
        "",
        "",
        confusion.weighted_f_measure(),
        total
    );
    let _ = writeln!(out, "accuracy: {:.3}", confusion.accuracy());
    Ok(out)
}

/// Renders the confusion matrix with row/column labels (rows = actual).
pub fn confusion_table(confusion: &ConfusionMatrix, class_names: &[String]) -> Result<String> {
    let k = confusion.num_classes();
    if class_names.len() != k {
        return Err(Error::InvalidParameter {
            name: "class_names",
            reason: format!("{} names for {k} classes", class_names.len()),
        });
    }
    let width = class_names.iter().map(|n| n.len()).max().unwrap_or(4).max(5) + 1;
    let mut out = String::new();
    let _ = write!(out, "{:<w$}", "a\\p", w = width);
    for name in class_names {
        let _ = write!(out, "{name:>w$}", w = width);
    }
    let _ = writeln!(out);
    for (c, row) in confusion.counts().iter().enumerate() {
        let _ = write!(out, "{:<w$}", class_names[c], w = width);
        for &v in row {
            let _ = write!(out, "{v:>w$}", w = width);
        }
        let _ = writeln!(out);
    }
    Ok(out)
}

/// One-line summary of a cross-validation run, in the figures' two axes.
pub fn cv_summary(result: &CvResult) -> String {
    format!(
        "F-measure {:.3}  accuracy {:.3}  processing time {:.4}s ({} folds, {} instances)",
        result.weighted_f_measure(),
        result.accuracy(),
        result.processing_time().as_secs_f64(),
        result.folds,
        result.confusion.total()
    )
}

#[cfg(test)]
mod tests {
    use super::*;

    fn sample_matrix() -> ConfusionMatrix {
        let mut m = ConfusionMatrix::new(2).unwrap();
        for _ in 0..8 {
            m.record(0, 0).unwrap();
        }
        for _ in 0..2 {
            m.record(0, 1).unwrap();
        }
        for _ in 0..5 {
            m.record(1, 1).unwrap();
        }
        m.record(1, 0).unwrap();
        m
    }

    #[test]
    fn report_contains_all_classes_and_metrics() {
        let m = sample_matrix();
        let names = vec!["house1".to_string(), "house2".to_string()];
        let r = classification_report(&m, &names).unwrap();
        assert!(r.contains("house1"));
        assert!(r.contains("house2"));
        assert!(r.contains("weighted avg"));
        assert!(r.contains("accuracy: 0.812"));
        // Support column: 10 and 6.
        assert!(r.contains("10"));
        assert!(r.contains(" 6"));
    }

    #[test]
    fn confusion_table_layout() {
        let m = sample_matrix();
        let names = vec!["h1".to_string(), "h2".to_string()];
        let t = confusion_table(&m, &names).unwrap();
        let lines: Vec<&str> = t.lines().collect();
        assert_eq!(lines.len(), 3);
        assert!(lines[1].contains('8'));
        assert!(lines[2].contains('5'));
    }

    #[test]
    fn wrong_name_count_rejected() {
        let m = sample_matrix();
        assert!(classification_report(&m, &["only-one".to_string()]).is_err());
        assert!(confusion_table(&m, &[]).is_err());
    }

    #[test]
    fn cv_summary_format() {
        use crate::data::{nominal_row, DatasetBuilder};
        use crate::eval::cross_validate;
        use crate::naive_bayes::NaiveBayes;
        let mut ds = DatasetBuilder::nominal(1, 2, 2).unwrap();
        for i in 0..20u32 {
            ds.push_row(nominal_row(&[i % 2], i % 2)).unwrap();
        }
        let cv = cross_validate(|| Box::new(NaiveBayes::new()), &ds, 5, 1).unwrap();
        let s = cv_summary(&cv);
        assert!(s.contains("F-measure"));
        assert!(s.contains("5 folds"));
        assert!(s.contains("20 instances"));
    }
}
