//! Short-term load forecasting (paper §3.2): "we reduce the forecasting
//! task into classification task using lag attributes of length 12
//! comprises of 12 previous symbols. The target attribute is the next
//! symbols."
//!
//! Two pipelines:
//! * **symbolic** — a classifier over nominal lag attributes predicts the
//!   next symbol, which is mapped back to watts via its range semantics;
//! * **real-valued** — a regressor (SVR in the paper) over numeric lag
//!   attributes predicts the next consumption directly.
//!
//! Evaluation is one-step-ahead with true history (each prediction uses the
//! actual previous observations, not earlier predictions), matching the
//! paper's next-day hourly protocol.

use crate::classifier::{Classifier, Regressor};
use crate::data::{nominal_row, regression_row, DatasetBuilder, Instances};
use crate::error::{Error, Result};

/// Builds the nominal lag dataset: row `i` has features
/// `[s_{i-lags}, …, s_{i-1}]` and class `s_i`.
pub fn lag_dataset_nominal(ranks: &[u16], cardinality: usize, lags: usize) -> Result<Instances> {
    if lags == 0 {
        return Err(Error::InvalidParameter {
            name: "lags",
            reason: "must be positive".to_string(),
        });
    }
    if ranks.len() <= lags {
        return Err(Error::EmptyDataset("lag_dataset_nominal: series shorter than lags"));
    }
    let mut ds = DatasetBuilder::nominal(lags, cardinality, cardinality)?;
    for i in lags..ranks.len() {
        let features: Vec<u32> = ranks[i - lags..i].iter().map(|&r| r as u32).collect();
        ds.push_row(nominal_row(&features, ranks[i] as u32))?;
    }
    Ok(ds)
}

/// Builds the numeric lag dataset for regressors: row `i` has features
/// `[v_{i-lags}, …, v_{i-1}]` and target `v_i`.
pub fn lag_dataset_numeric(values: &[f64], lags: usize) -> Result<Instances> {
    if lags == 0 {
        return Err(Error::InvalidParameter {
            name: "lags",
            reason: "must be positive".to_string(),
        });
    }
    if values.len() <= lags {
        return Err(Error::EmptyDataset("lag_dataset_numeric: series shorter than lags"));
    }
    let mut ds = DatasetBuilder::regression(lags)?;
    for i in lags..values.len() {
        ds.push_row(regression_row(&values[i - lags..i], values[i]))?;
    }
    Ok(ds)
}

/// One forecasting run's outcome.
#[derive(Debug, Clone)]
pub struct ForecastResult {
    /// Ground-truth values over the test horizon (watts).
    pub actual: Vec<f64>,
    /// Model predictions (watts).
    pub predicted: Vec<f64>,
}

impl ForecastResult {
    /// Mean absolute error, the paper's Figs. 8–9 metric.
    pub fn mae(&self) -> Result<f64> {
        crate::eval::mae(&self.actual, &self.predicted)
    }

    /// Root-mean-square error.
    pub fn rmse(&self) -> Result<f64> {
        crate::eval::rmse(&self.actual, &self.predicted)
    }
}

/// Symbolic forecasting: train a classifier on the training symbols' lag
/// dataset, then predict each test step from the true symbol history and
/// decode the predicted symbol to watts via `decode` (the "center of its
/// range" semantics in the paper).
///
/// `train_ranks` and `test_ranks` are consecutive; `test_actual` holds the
/// real consumption values aligned with `test_ranks`.
pub fn symbolic_forecast<F>(
    factory: F,
    train_ranks: &[u16],
    test_ranks: &[u16],
    test_actual: &[f64],
    cardinality: usize,
    lags: usize,
    decode: impl Fn(u16) -> f64,
) -> Result<ForecastResult>
where
    F: Fn() -> Box<dyn Classifier>,
{
    if test_ranks.len() != test_actual.len() {
        return Err(Error::InvalidParameter {
            name: "test_actual",
            reason: format!(
                "length {} does not match test_ranks {}",
                test_actual.len(),
                test_ranks.len()
            ),
        });
    }
    if test_ranks.is_empty() {
        return Err(Error::EmptyDataset("symbolic_forecast: empty test horizon"));
    }
    let train_ds = lag_dataset_nominal(train_ranks, cardinality, lags)?;
    let mut model = factory();
    model.fit(&train_ds)?;

    // Full history for teacher-forced lag windows.
    let mut history: Vec<u16> = train_ranks.to_vec();
    if history.len() < lags {
        return Err(Error::EmptyDataset("symbolic_forecast: training shorter than lags"));
    }
    let mut predicted = Vec::with_capacity(test_ranks.len());
    for (&true_rank, _) in test_ranks.iter().zip(test_actual) {
        let window: Vec<u32> = history[history.len() - lags..].iter().map(|&r| r as u32).collect();
        let row = nominal_row(&window, 0);
        let pred_rank = model.predict(&row)? as u16;
        predicted.push(decode(pred_rank));
        history.push(true_rank); // teacher forcing with the true symbol
    }
    Ok(ForecastResult { actual: test_actual.to_vec(), predicted })
}

/// Real-valued forecasting: train a regressor on the training values' lag
/// dataset, then predict each test step from the true value history.
pub fn real_forecast<F>(
    factory: F,
    train_values: &[f64],
    test_values: &[f64],
    lags: usize,
) -> Result<ForecastResult>
where
    F: Fn() -> Box<dyn Regressor>,
{
    if test_values.is_empty() {
        return Err(Error::EmptyDataset("real_forecast: empty test horizon"));
    }
    let train_ds = lag_dataset_numeric(train_values, lags)?;
    let mut model = factory();
    model.fit(&train_ds)?;

    let mut history: Vec<f64> = train_values.to_vec();
    let mut predicted = Vec::with_capacity(test_values.len());
    for &truth in test_values {
        let window = &history[history.len() - lags..];
        let row = regression_row(window, 0.0);
        predicted.push(model.predict(&row)?);
        history.push(truth);
    }
    Ok(ForecastResult { actual: test_values.to_vec(), predicted })
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::naive_bayes::NaiveBayes;
    use crate::svm::SvrRegressor;
    use crate::zero_r::MeanRegressor;

    #[test]
    fn lag_dataset_shapes() {
        let ranks = [0u16, 1, 2, 3, 0, 1, 2, 3];
        let ds = lag_dataset_nominal(&ranks, 4, 3).unwrap();
        assert_eq!(ds.len(), 5);
        assert_eq!(ds.attributes().len(), 4);
        // First row: features [0,1,2], class 3.
        assert_eq!(ds.class_of(0).unwrap(), 3);
        assert!(lag_dataset_nominal(&ranks, 4, 0).is_err());
        assert!(lag_dataset_nominal(&ranks[..3], 4, 3).is_err());

        let vals = [1.0, 2.0, 3.0, 4.0];
        let ds = lag_dataset_numeric(&vals, 2).unwrap();
        assert_eq!(ds.len(), 2);
        assert_eq!(ds.target_of(1).unwrap(), 4.0);
    }

    #[test]
    fn symbolic_forecast_learns_a_cycle() {
        // Perfectly periodic symbol stream: 0,1,2,3,0,1,2,3,...
        let train: Vec<u16> = (0..96).map(|i| (i % 4) as u16).collect();
        let test: Vec<u16> = (96..120).map(|i| (i % 4) as u16).collect();
        let actual: Vec<f64> = test.iter().map(|&r| r as f64 * 100.0).collect();
        let result = symbolic_forecast(
            || Box::new(NaiveBayes::new()),
            &train,
            &test,
            &actual,
            4,
            12,
            |r| r as f64 * 100.0,
        )
        .unwrap();
        assert!(result.mae().unwrap() < 1e-9, "cycle is perfectly predictable");
        assert_eq!(result.predicted.len(), 24);
    }

    #[test]
    fn symbolic_forecast_decodes_through_centers() {
        let train: Vec<u16> = (0..50).map(|i| (i % 2) as u16).collect();
        let test = [0u16, 1];
        let actual = [10.0, 20.0];
        let result = symbolic_forecast(
            || Box::new(NaiveBayes::new()),
            &train,
            &test,
            &actual,
            2,
            4,
            |r| if r == 0 { 12.0 } else { 18.0 },
        )
        .unwrap();
        for p in &result.predicted {
            assert!(*p == 12.0 || *p == 18.0, "predictions live in decoded symbol space");
        }
    }

    #[test]
    fn real_forecast_learns_a_cycle() {
        let train: Vec<f64> = (0..200).map(|i| (i % 24) as f64 * 10.0).collect();
        let test: Vec<f64> = (200..224).map(|i| (i % 24) as f64 * 10.0).collect();
        let svr = || -> Box<dyn Regressor> {
            let mut m = SvrRegressor::new();
            m.c = 10.0;
            Box::new(m)
        };
        let result = real_forecast(svr, &train, &test, 12).unwrap();
        let mae = result.mae().unwrap();
        // A mean regressor is far worse on this sawtooth.
        let baseline = real_forecast(|| Box::new(MeanRegressor::new()), &train, &test, 12).unwrap();
        assert!(
            mae < baseline.mae().unwrap() / 2.0,
            "SVR {mae} should beat mean {}",
            baseline.mae().unwrap()
        );
    }

    #[test]
    fn validation_errors() {
        assert!(symbolic_forecast(
            || Box::new(NaiveBayes::new()),
            &[0, 1, 0, 1],
            &[0],
            &[1.0, 2.0],
            2,
            2,
            |r| r as f64
        )
        .is_err());
        assert!(real_forecast(|| Box::new(MeanRegressor::new()), &[1.0, 2.0], &[], 2).is_err());
    }
}
