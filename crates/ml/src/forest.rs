//! Random Forest (Weka's `RandomForest` equivalent): bagging over
//! [`RandomTree`]s with per-node random feature subsets, predictions by
//! averaged class probabilities. This is the strongest raw-value classifier
//! in the paper ("the classification using raw values … Random Forest is the
//! one performing better", §3.1) and the classifier of Figs. 6 and 7.

use crate::classifier::{normalize_distribution, Classifier};
use crate::data::Instances;
use crate::data::Value;
use crate::error::{Error, Result};
use crate::tree::{RandomTree, SplitSearch};
use rand::rngs::StdRng;
use rand::Rng;
use rand::SeedableRng;

/// Bagged ensemble of random trees.
#[derive(Debug, Clone)]
pub struct RandomForest {
    /// Number of trees (Weka 3.6-era default was 10; we default to 30 for
    /// steadier probabilities while staying fast).
    pub n_trees: usize,
    /// Features per node (0 = `ceil(log2 F) + 1`).
    pub feature_subset: usize,
    /// Maximum tree depth (0 = unlimited).
    pub max_depth: usize,
    /// Ensemble seed.
    pub seed: u64,
    /// Split-search strategy forwarded to every tree (identical forests
    /// either way; see [`SplitSearch`]).
    pub split_search: SplitSearch,
    trees: Vec<RandomTree>,
    n_classes: usize,
}

impl RandomForest {
    /// Forest with `n_trees` trees and the given seed.
    pub fn new(n_trees: usize, seed: u64) -> Self {
        RandomForest {
            n_trees,
            feature_subset: 0,
            max_depth: 0,
            seed,
            split_search: SplitSearch::default(),
            trees: Vec::new(),
            n_classes: 0,
        }
    }

    /// Number of fitted trees.
    pub fn tree_count(&self) -> usize {
        self.trees.len()
    }
}

impl Default for RandomForest {
    fn default() -> Self {
        Self::new(30, 1)
    }
}

impl Classifier for RandomForest {
    fn fit(&mut self, data: &Instances) -> Result<()> {
        if data.is_empty() {
            return Err(Error::EmptyDataset("RandomForest::fit"));
        }
        if self.n_trees == 0 {
            return Err(Error::InvalidParameter {
                name: "n_trees",
                reason: "must be positive".to_string(),
            });
        }
        self.n_classes = data.num_classes()?;
        let n = data.len();
        let mut rng = StdRng::seed_from_u64(self.seed);
        self.trees.clear();
        for t in 0..self.n_trees {
            // Bootstrap sample (n draws with replacement).
            let indices: Vec<usize> = (0..n).map(|_| rng.gen_range(0..n)).collect();
            let sample = data.subset(&indices);
            let mut tree = RandomTree::new(self.seed.wrapping_add(1 + t as u64));
            tree.feature_subset = self.feature_subset;
            tree.max_depth = self.max_depth;
            tree.split_search = self.split_search;
            tree.fit(&sample)?;
            self.trees.push(tree);
        }
        Ok(())
    }

    fn predict_proba(&self, row: &[Value]) -> Result<Vec<f64>> {
        if self.trees.is_empty() {
            return Err(Error::NotFitted("RandomForest"));
        }
        let mut acc = vec![0.0f64; self.n_classes];
        for tree in &self.trees {
            let p = tree.predict_proba(row)?;
            for (a, x) in acc.iter_mut().zip(&p) {
                *a += x;
            }
        }
        normalize_distribution(&mut acc);
        Ok(acc)
    }

    fn name(&self) -> &'static str {
        "RandomForest"
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::data::{nominal_row, numeric_row, DatasetBuilder};

    #[test]
    fn solves_xor_reliably() {
        let mut ds = DatasetBuilder::nominal(2, 2, 2).unwrap();
        for _ in 0..15 {
            ds.push_row(nominal_row(&[0, 0], 0)).unwrap();
            ds.push_row(nominal_row(&[0, 1], 1)).unwrap();
            ds.push_row(nominal_row(&[1, 0], 1)).unwrap();
            ds.push_row(nominal_row(&[1, 1], 0)).unwrap();
        }
        let mut rf = RandomForest::new(25, 7);
        rf.fit(&ds).unwrap();
        assert_eq!(rf.tree_count(), 25);
        for (a, b, c) in [(0, 0, 0), (0, 1, 1), (1, 0, 1), (1, 1, 0)] {
            assert_eq!(rf.predict(&nominal_row(&[a, b], 0)).unwrap(), c, "{a},{b}");
        }
    }

    #[test]
    fn numeric_problem_with_irrelevant_features() {
        let mut ds = DatasetBuilder::numeric(4, 2).unwrap();
        for i in 0..120 {
            let signal = (i % 60) as f64;
            let noise = [(i * 7 % 13) as f64, (i * 11 % 17) as f64, (i * 3 % 19) as f64];
            ds.push_row(numeric_row(
                &[signal, noise[0], noise[1], noise[2]],
                u32::from(signal > 30.0),
            ))
            .unwrap();
        }
        let mut rf = RandomForest::new(25, 3);
        rf.fit(&ds).unwrap();
        let mut correct = 0;
        for i in 0..60 {
            let v = i as f64;
            let pred = rf.predict(&numeric_row(&[v, 1.0, 2.0, 3.0], 0)).unwrap();
            if pred == usize::from(v > 30.0) {
                correct += 1;
            }
        }
        assert!(correct >= 54, "forest should master a 1D threshold: {correct}/60");
    }

    #[test]
    fn deterministic_per_seed() {
        let mut ds = DatasetBuilder::numeric(2, 2).unwrap();
        for i in 0..60 {
            ds.push_row(numeric_row(&[(i % 10) as f64, (i % 7) as f64], i % 2)).unwrap();
        }
        let fit_and_probe = |seed| {
            let mut rf = RandomForest::new(10, seed);
            rf.fit(&ds).unwrap();
            (0..10)
                .map(|i| rf.predict_proba(&numeric_row(&[i as f64, 3.0], 0)).unwrap())
                .collect::<Vec<_>>()
        };
        assert_eq!(fit_and_probe(5), fit_and_probe(5));
        assert_ne!(fit_and_probe(5), fit_and_probe(6));
    }

    #[test]
    fn validation_and_not_fitted() {
        let rf = RandomForest::new(5, 1);
        assert!(rf.predict_proba(&[]).is_err());
        let mut zero = RandomForest::new(0, 1);
        let mut ds = DatasetBuilder::nominal(1, 2, 2).unwrap();
        ds.push_row(nominal_row(&[0], 0)).unwrap();
        ds.push_row(nominal_row(&[1], 1)).unwrap();
        assert!(zero.fit(&ds).is_err());
    }

    #[test]
    fn probabilities_average_over_trees() {
        let mut ds = DatasetBuilder::nominal(1, 2, 2).unwrap();
        for _ in 0..20 {
            ds.push_row(nominal_row(&[0], 0)).unwrap();
            ds.push_row(nominal_row(&[1], 1)).unwrap();
        }
        let mut rf = RandomForest::new(15, 2);
        rf.fit(&ds).unwrap();
        let p = rf.predict_proba(&nominal_row(&[0], 0)).unwrap();
        assert!((p.iter().sum::<f64>() - 1.0).abs() < 1e-9);
        assert!(p[0] > 0.8, "{p:?}");
    }
}
