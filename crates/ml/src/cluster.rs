//! Clustering — the analytics task the paper's §3.1 actually motivates
//! ("Identifying customers having a similar consumption profile (customer
//! segmentation)…") before falling back to classification because REDD has
//! only six houses. We provide both families so the segmentation scenario
//! is runnable end to end:
//!
//! * **k-means** over numeric day-vectors (Lloyd's algorithm, k-means++
//!   seeding);
//! * **k-modes** over *nominal symbol* day-vectors (Huang 1998) — matching
//!   dissimilarity with frequency-based mode updates, the natural clusterer
//!   for the paper's symbolic representation;
//! * external validation via the **adjusted Rand index** against the true
//!   house labels.

use crate::data::{AttributeKind, Instances, Value};
use crate::error::{Error, Result};
use rand::rngs::StdRng;
use rand::Rng;
use rand::SeedableRng;

/// A clustering result: one cluster id per row.
#[derive(Debug, Clone, PartialEq)]
pub struct Clustering {
    /// Cluster assignment per row.
    pub assignments: Vec<usize>,
    /// Number of clusters requested.
    pub k: usize,
    /// Iterations until convergence.
    pub iterations: usize,
}

fn numeric_matrix(data: &Instances) -> Result<Vec<Vec<f64>>> {
    let feats = data.feature_indices();
    let mut rows = Vec::with_capacity(data.len());
    for i in 0..data.len() {
        let mut row = Vec::with_capacity(feats.len());
        for &a in &feats {
            match data.value(i, a) {
                Value::Numeric(v) => row.push(v),
                Value::Missing => row.push(f64::NAN), // patched below
                Value::Nominal(_) => {
                    return Err(Error::SchemaMismatch(
                        "k-means requires numeric features".to_string(),
                    ))
                }
            }
        }
        rows.push(row);
    }
    // Replace missing values with the column mean.
    let d = feats.len();
    for j in 0..d {
        let (mut sum, mut n) = (0.0, 0);
        for row in &rows {
            if row[j].is_finite() {
                sum += row[j];
                n += 1;
            }
        }
        let mean = if n > 0 { sum / n as f64 } else { 0.0 };
        for row in rows.iter_mut() {
            if !row[j].is_finite() {
                row[j] = mean;
            }
        }
    }
    Ok(rows)
}

fn sq_dist(a: &[f64], b: &[f64]) -> f64 {
    a.iter().zip(b).map(|(x, y)| (x - y) * (x - y)).sum()
}

/// Lloyd's k-means with k-means++ seeding over numeric features.
pub fn kmeans(data: &Instances, k: usize, seed: u64, max_iter: usize) -> Result<Clustering> {
    if k == 0 {
        return Err(Error::InvalidParameter { name: "k", reason: "must be positive".to_string() });
    }
    if data.len() < k {
        return Err(Error::InvalidParameter {
            name: "k",
            reason: format!("{k} clusters but only {} rows", data.len()),
        });
    }
    let rows = numeric_matrix(data)?;
    let n = rows.len();
    let mut rng = StdRng::seed_from_u64(seed);

    // k-means++ seeding.
    let mut centers: Vec<Vec<f64>> = vec![rows[rng.gen_range(0..n)].clone()];
    while centers.len() < k {
        let d2: Vec<f64> = rows
            .iter()
            .map(|r| centers.iter().map(|c| sq_dist(r, c)).fold(f64::INFINITY, f64::min))
            .collect();
        let total: f64 = d2.iter().sum();
        let next = if total <= 0.0 {
            rng.gen_range(0..n)
        } else {
            let mut target = rng.gen_range(0.0..total);
            let mut pick = n - 1;
            for (i, &w) in d2.iter().enumerate() {
                if target < w {
                    pick = i;
                    break;
                }
                target -= w;
            }
            pick
        };
        centers.push(rows[next].clone());
    }

    let mut assignments = vec![0usize; n];
    let mut iterations = 0;
    for it in 0..max_iter {
        iterations = it + 1;
        // Assign.
        let mut changed = false;
        for (i, row) in rows.iter().enumerate() {
            let best = (0..k)
                .min_by(|&a, &b| {
                    sq_dist(row, &centers[a])
                        .partial_cmp(&sq_dist(row, &centers[b]))
                        .expect("finite")
                })
                .expect("k > 0");
            if assignments[i] != best {
                assignments[i] = best;
                changed = true;
            }
        }
        if !changed && it > 0 {
            break;
        }
        // Update.
        let d = rows[0].len();
        let mut sums = vec![vec![0.0f64; d]; k];
        let mut counts = vec![0usize; k];
        for (row, &c) in rows.iter().zip(&assignments) {
            counts[c] += 1;
            for (s, v) in sums[c].iter_mut().zip(row) {
                *s += v;
            }
        }
        for c in 0..k {
            if counts[c] == 0 {
                // Re-seed an empty cluster at the farthest point.
                let far = rows
                    .iter()
                    .enumerate()
                    .max_by(|(_, a), (_, b)| {
                        sq_dist(a, &centers[c])
                            .partial_cmp(&sq_dist(b, &centers[c]))
                            .expect("finite")
                    })
                    .map(|(i, _)| i)
                    .expect("non-empty");
                centers[c] = rows[far].clone();
            } else {
                for (s, cv) in sums[c].iter().zip(centers[c].iter_mut()) {
                    *cv = s / counts[c] as f64;
                }
            }
        }
    }
    Ok(Clustering { assignments, k, iterations })
}

/// Rows of optional nominal values plus per-attribute cardinalities.
type NominalMatrix = (Vec<Vec<Option<u32>>>, Vec<usize>);

fn nominal_matrix(data: &Instances) -> Result<NominalMatrix> {
    let feats = data.feature_indices();
    let mut cards = Vec::with_capacity(feats.len());
    for &a in &feats {
        match &data.attributes()[a].kind {
            AttributeKind::Nominal(labels) => cards.push(labels.len()),
            AttributeKind::Numeric => {
                return Err(Error::SchemaMismatch("k-modes requires nominal features".to_string()))
            }
        }
    }
    let mut rows = Vec::with_capacity(data.len());
    for i in 0..data.len() {
        let row: Vec<Option<u32>> = feats.iter().map(|&a| data.value(i, a).as_nominal()).collect();
        rows.push(row);
    }
    Ok((rows, cards))
}

fn mismatch(a: &[Option<u32>], b: &[u32]) -> usize {
    a.iter().zip(b).filter(|(x, y)| x.map(|v| v != **y).unwrap_or(true)).count()
}

/// Huang's k-modes over nominal features: matching dissimilarity, modes as
/// per-attribute most-frequent values.
pub fn kmodes(data: &Instances, k: usize, seed: u64, max_iter: usize) -> Result<Clustering> {
    if k == 0 {
        return Err(Error::InvalidParameter { name: "k", reason: "must be positive".to_string() });
    }
    if data.len() < k {
        return Err(Error::InvalidParameter {
            name: "k",
            reason: format!("{k} clusters but only {} rows", data.len()),
        });
    }
    let (rows, cards) = nominal_matrix(data)?;
    let n = rows.len();
    let d = cards.len();
    let mut rng = StdRng::seed_from_u64(seed);

    // Seed with k distinct random rows (modes take the rows' values,
    // missing replaced by 0).
    let mut centers: Vec<Vec<u32>> = Vec::with_capacity(k);
    let mut tried = std::collections::HashSet::new();
    while centers.len() < k {
        let i = rng.gen_range(0..n);
        if !tried.insert(i) && tried.len() < n {
            continue;
        }
        centers.push(rows[i].iter().map(|v| v.unwrap_or(0)).collect());
    }

    let mut assignments = vec![0usize; n];
    let mut iterations = 0;
    for it in 0..max_iter {
        iterations = it + 1;
        let mut changed = false;
        for (i, row) in rows.iter().enumerate() {
            let best = (0..k).min_by_key(|&c| mismatch(row, &centers[c])).expect("k > 0");
            if assignments[i] != best {
                assignments[i] = best;
                changed = true;
            }
        }
        if !changed && it > 0 {
            break;
        }
        // Mode update: per cluster, per attribute, most frequent value.
        for (c, center) in centers.iter_mut().enumerate() {
            for j in 0..d {
                let mut counts = vec![0usize; cards[j]];
                for (row, &a) in rows.iter().zip(&assignments) {
                    if a == c {
                        if let Some(v) = row[j] {
                            counts[v as usize] += 1;
                        }
                    }
                }
                if let Some((best, &cnt)) = counts.iter().enumerate().max_by_key(|&(_, c)| *c) {
                    if cnt > 0 {
                        center[j] = best as u32;
                    }
                }
            }
        }
    }
    Ok(Clustering { assignments, k, iterations })
}

/// Adjusted Rand index between a clustering and reference labels
/// (1 = identical partitions, ~0 = random agreement).
pub fn adjusted_rand_index(assignments: &[usize], labels: &[usize]) -> Result<f64> {
    if assignments.len() != labels.len() || assignments.is_empty() {
        return Err(Error::InvalidParameter {
            name: "assignments/labels",
            reason: "need equal non-zero lengths".to_string(),
        });
    }
    let n = assignments.len();
    let ka = assignments.iter().max().unwrap() + 1;
    let kl = labels.iter().max().unwrap() + 1;
    let mut table = vec![vec![0u64; kl]; ka];
    for (&a, &l) in assignments.iter().zip(labels) {
        table[a][l] += 1;
    }
    let choose2 = |x: u64| (x * x.saturating_sub(1)) as f64 / 2.0;
    let sum_ij: f64 = table.iter().flat_map(|r| r.iter()).map(|&c| choose2(c)).sum();
    let a_sums: Vec<u64> = table.iter().map(|r| r.iter().sum()).collect();
    let b_sums: Vec<u64> = (0..kl).map(|j| table.iter().map(|r| r[j]).sum()).collect();
    let sum_a: f64 = a_sums.iter().map(|&c| choose2(c)).sum();
    let sum_b: f64 = b_sums.iter().map(|&c| choose2(c)).sum();
    let total = choose2(n as u64);
    let expected = sum_a * sum_b / total;
    let max = (sum_a + sum_b) / 2.0;
    if (max - expected).abs() < 1e-12 {
        return Ok(0.0);
    }
    Ok((sum_ij - expected) / (max - expected))
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::data::{nominal_row, numeric_row, DatasetBuilder};

    #[test]
    fn kmeans_separates_blobs() {
        let mut ds = DatasetBuilder::numeric(2, 2).unwrap();
        let mut labels = Vec::new();
        for i in 0..30 {
            let j = (i % 3) as f64;
            ds.push_row(numeric_row(&[j * 100.0 + (i % 5) as f64, j * 100.0], 0)).unwrap();
            labels.push((i % 3) as usize);
        }
        let c = kmeans(&ds, 3, 7, 100).unwrap();
        let ari = adjusted_rand_index(&c.assignments, &labels).unwrap();
        assert!(ari > 0.95, "blobs should be perfectly recovered: ARI {ari}");
        assert!(c.iterations >= 1);
    }

    #[test]
    fn kmodes_separates_symbolic_profiles() {
        // Two symbol "profiles": mornings high vs evenings high.
        let mut ds = DatasetBuilder::nominal(6, 4, 2).unwrap();
        let mut labels = Vec::new();
        for i in 0..40u32 {
            let noise = i % 2;
            if i % 2 == 0 {
                ds.push_row(nominal_row(&[3, 3, noise, 0, 0, 0], 0)).unwrap();
                labels.push(0);
            } else {
                ds.push_row(nominal_row(&[0, 0, noise, 3, 3, 3], 0)).unwrap();
                labels.push(1);
            }
        }
        let c = kmodes(&ds, 2, 11, 100).unwrap();
        let ari = adjusted_rand_index(&c.assignments, &labels).unwrap();
        assert!(ari > 0.9, "symbolic profiles should separate: ARI {ari}");
    }

    #[test]
    fn kmodes_handles_missing_values() {
        let mut ds = DatasetBuilder::nominal(2, 2, 2).unwrap();
        ds.push_row(vec![Value::Nominal(0), Value::Missing, Value::Nominal(0)]).unwrap();
        ds.push_row(vec![Value::Nominal(1), Value::Nominal(1), Value::Nominal(0)]).unwrap();
        let c = kmodes(&ds, 2, 1, 10).unwrap();
        assert_eq!(c.assignments.len(), 2);
        assert_ne!(c.assignments[0], c.assignments[1]);
    }

    #[test]
    fn ari_reference_values() {
        // Identical partitions.
        assert!((adjusted_rand_index(&[0, 0, 1, 1], &[1, 1, 0, 0]).unwrap() - 1.0).abs() < 1e-12);
        // One big cluster vs two labels: ARI 0.
        assert_eq!(adjusted_rand_index(&[0, 0, 0, 0], &[0, 0, 1, 1]).unwrap(), 0.0);
        assert!(adjusted_rand_index(&[0], &[]).is_err());
    }

    #[test]
    fn validation() {
        let mut ds = DatasetBuilder::numeric(1, 2).unwrap();
        ds.push_row(numeric_row(&[1.0], 0)).unwrap();
        assert!(kmeans(&ds, 0, 0, 10).is_err());
        assert!(kmeans(&ds, 5, 0, 10).is_err());
        let mut nds = DatasetBuilder::nominal(1, 2, 2).unwrap();
        nds.push_row(nominal_row(&[0], 0)).unwrap();
        assert!(kmeans(&nds, 1, 0, 10).is_err(), "k-means rejects nominal");
        assert!(kmodes(&ds, 1, 0, 10).is_err(), "k-modes rejects numeric");
    }

    #[test]
    fn kmeans_fills_missing_with_column_mean() {
        let mut ds = DatasetBuilder::numeric(1, 2).unwrap();
        ds.push_row(numeric_row(&[0.0], 0)).unwrap();
        ds.push_row(vec![Value::Missing, Value::Nominal(0)]).unwrap();
        ds.push_row(numeric_row(&[100.0], 0)).unwrap();
        let c = kmeans(&ds, 2, 3, 50).unwrap();
        // The missing row (imputed to 50) clusters with one of the blobs —
        // the point is that it does not crash and yields a full assignment.
        assert_eq!(c.assignments.len(), 3);
    }
}
