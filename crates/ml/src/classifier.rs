//! Learner traits: classification (nominal class) and regression (numeric
//! target). The paper's claim that the symbolic representation "is not
//! linked to any specific classifier" (§3.1) is realized by these traits:
//! every experiment is generic over `Classifier`.

use crate::data::{Instances, Value};
use crate::error::{Error, Result};

/// A trainable classifier over a nominal class attribute.
pub trait Classifier: Send {
    /// Fits the model to the dataset.
    fn fit(&mut self, data: &Instances) -> Result<()>;

    /// Class-probability estimates for one row (same attribute layout as the
    /// training data; the class cell is ignored). Must sum to ~1.
    fn predict_proba(&self, row: &[Value]) -> Result<Vec<f64>>;

    /// Predicted class index: argmax of [`Classifier::predict_proba`].
    fn predict(&self, row: &[Value]) -> Result<usize> {
        let p = self.predict_proba(row)?;
        if p.is_empty() {
            return Err(Error::NumericalFailure("empty probability vector".to_string()));
        }
        Ok(argmax(&p))
    }

    /// Short display name (used in experiment reports).
    fn name(&self) -> &'static str;
}

/// A trainable regressor over a numeric target attribute.
pub trait Regressor: Send {
    /// Fits the model to the dataset.
    fn fit(&mut self, data: &Instances) -> Result<()>;

    /// Predicted target for one row (class cell ignored).
    fn predict(&self, row: &[Value]) -> Result<f64>;

    /// Short display name.
    fn name(&self) -> &'static str;
}

/// Index of the maximum value (first winner on ties).
pub fn argmax(values: &[f64]) -> usize {
    let mut best = 0;
    for (i, &v) in values.iter().enumerate() {
        if v > values[best] {
            best = i;
        }
    }
    best
}

/// Normalizes a non-negative weight vector into a distribution, falling back
/// to uniform when the total mass is zero or non-finite.
pub fn normalize_distribution(weights: &mut [f64]) {
    let sum: f64 = weights.iter().sum();
    if sum > 0.0 && sum.is_finite() {
        for w in weights.iter_mut() {
            *w /= sum;
        }
    } else {
        let u = 1.0 / weights.len().max(1) as f64;
        for w in weights.iter_mut() {
            *w = u;
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn argmax_first_winner() {
        assert_eq!(argmax(&[0.1, 0.7, 0.2]), 1);
        assert_eq!(argmax(&[0.5, 0.5]), 0);
        assert_eq!(argmax(&[1.0]), 0);
    }

    #[test]
    fn normalize_handles_zero_mass() {
        let mut w = vec![0.0, 0.0];
        normalize_distribution(&mut w);
        assert_eq!(w, vec![0.5, 0.5]);
        let mut w = vec![2.0, 6.0];
        normalize_distribution(&mut w);
        assert_eq!(w, vec![0.25, 0.75]);
    }
}
