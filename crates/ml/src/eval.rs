//! Evaluation machinery: confusion matrices, the weighted F-measure the
//! paper reports, stratified k-fold cross-validation with wall-clock timing
//! (the paper's Figs. 5–7 plot F-measure *and* processing time), and
//! regression error metrics (MAE for Figs. 8–9).

use crate::classifier::Classifier;
use crate::data::Instances;
use crate::error::{Error, Result};
use rand::rngs::StdRng;
use rand::seq::SliceRandom;
use rand::SeedableRng;
use sms_core::pool::{run_indexed, PoolConfig};
use std::time::{Duration, Instant};

/// Square confusion matrix: `counts[actual][predicted]`.
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct ConfusionMatrix {
    counts: Vec<Vec<u64>>,
}

impl ConfusionMatrix {
    /// An all-zero `k × k` matrix.
    pub fn new(k: usize) -> Result<Self> {
        if k == 0 {
            return Err(Error::InvalidParameter {
                name: "k",
                reason: "need at least one class".to_string(),
            });
        }
        Ok(ConfusionMatrix { counts: vec![vec![0; k]; k] })
    }

    /// Records one prediction.
    pub fn record(&mut self, actual: usize, predicted: usize) -> Result<()> {
        let k = self.counts.len();
        if actual >= k || predicted >= k {
            return Err(Error::InvalidParameter {
                name: "actual/predicted",
                reason: format!("class out of range: {actual}/{predicted} vs k={k}"),
            });
        }
        self.counts[actual][predicted] += 1;
        Ok(())
    }

    /// Merges another matrix of the same shape (for fold accumulation).
    pub fn merge(&mut self, other: &ConfusionMatrix) -> Result<()> {
        if self.counts.len() != other.counts.len() {
            return Err(Error::InvalidParameter {
                name: "other",
                reason: "matrix size mismatch".to_string(),
            });
        }
        for (a, b) in self.counts.iter_mut().zip(&other.counts) {
            for (x, y) in a.iter_mut().zip(b) {
                *x += y;
            }
        }
        Ok(())
    }

    /// Number of classes.
    pub fn num_classes(&self) -> usize {
        self.counts.len()
    }

    /// Raw counts.
    pub fn counts(&self) -> &[Vec<u64>] {
        &self.counts
    }

    /// Total predictions recorded.
    pub fn total(&self) -> u64 {
        self.counts.iter().flat_map(|r| r.iter()).sum()
    }

    /// Overall accuracy (0 when empty).
    pub fn accuracy(&self) -> f64 {
        let total = self.total();
        if total == 0 {
            return 0.0;
        }
        let correct: u64 = (0..self.counts.len()).map(|i| self.counts[i][i]).sum();
        correct as f64 / total as f64
    }

    /// Precision of one class (0 when undefined).
    pub fn precision(&self, class: usize) -> f64 {
        let predicted: u64 = self.counts.iter().map(|row| row[class]).sum();
        if predicted == 0 {
            return 0.0;
        }
        self.counts[class][class] as f64 / predicted as f64
    }

    /// Recall of one class (0 when the class has no instances).
    pub fn recall(&self, class: usize) -> f64 {
        let actual: u64 = self.counts[class].iter().sum();
        if actual == 0 {
            return 0.0;
        }
        self.counts[class][class] as f64 / actual as f64
    }

    /// F-measure of one class (harmonic mean of precision and recall).
    pub fn f_measure(&self, class: usize) -> f64 {
        let p = self.precision(class);
        let r = self.recall(class);
        if p + r == 0.0 {
            return 0.0;
        }
        2.0 * p * r / (p + r)
    }

    /// Cohen's kappa: agreement beyond chance (Weka prints this alongside
    /// accuracy). 1 = perfect, 0 = chance-level, negative = worse than chance.
    pub fn kappa(&self) -> f64 {
        let total = self.total();
        if total == 0 {
            return 0.0;
        }
        let n = total as f64;
        let po = self.accuracy();
        let pe: f64 = (0..self.counts.len())
            .map(|c| {
                let actual: u64 = self.counts[c].iter().sum();
                let predicted: u64 = self.counts.iter().map(|row| row[c]).sum();
                (actual as f64 / n) * (predicted as f64 / n)
            })
            .sum();
        if (1.0 - pe).abs() < 1e-12 {
            return 0.0;
        }
        (po - pe) / (1.0 - pe)
    }

    /// Weka-style **weighted F-measure**: per-class F-measures averaged with
    /// class-support weights. This is the metric on the paper's y-axes and
    /// in Table 1.
    pub fn weighted_f_measure(&self) -> f64 {
        let total = self.total();
        if total == 0 {
            return 0.0;
        }
        (0..self.counts.len())
            .map(|c| {
                let support: u64 = self.counts[c].iter().sum();
                support as f64 / total as f64 * self.f_measure(c)
            })
            .sum()
    }
}

/// Result of one cross-validation run.
#[derive(Debug, Clone)]
pub struct CvResult {
    /// Pooled confusion matrix over all folds.
    pub confusion: ConfusionMatrix,
    /// Total training time across folds.
    pub train_time: Duration,
    /// Total prediction time across folds.
    pub test_time: Duration,
    /// Number of folds actually run.
    pub folds: usize,
    /// Distribution of test-set sizes over the executed folds (one
    /// observation per non-empty fold). Deterministic: fold assignment is
    /// a pure function of `(data, k, seed)`, and the parallel path
    /// observes from its precomputed job list in `(run, fold)` order.
    pub fold_test_rows: sms_core::telemetry::Log2Histogram,
}

impl CvResult {
    /// Weighted F-measure over the pooled folds.
    pub fn weighted_f_measure(&self) -> f64 {
        self.confusion.weighted_f_measure()
    }

    /// Accuracy over the pooled folds.
    pub fn accuracy(&self) -> f64 {
        self.confusion.accuracy()
    }

    /// Train + test wall-clock, the paper's "processing time".
    pub fn processing_time(&self) -> Duration {
        self.train_time + self.test_time
    }
}

/// Stratified fold assignment: shuffles within each class, then deals
/// class-by-class round-robin so every fold gets a proportional class mix.
/// Returns `folds[f] = row indices of fold f`.
pub fn stratified_folds(data: &Instances, k: usize, seed: u64) -> Result<Vec<Vec<usize>>> {
    if k < 2 {
        return Err(Error::InvalidParameter {
            name: "k",
            reason: "need at least 2 folds".to_string(),
        });
    }
    if data.len() < k {
        return Err(Error::InvalidParameter {
            name: "k",
            reason: format!("{k} folds but only {} rows", data.len()),
        });
    }
    let n_classes = data.num_classes()?;
    let mut rng = StdRng::seed_from_u64(seed);
    let mut by_class: Vec<Vec<usize>> = vec![Vec::new(); n_classes];
    for i in 0..data.len() {
        by_class[data.class_of(i)?].push(i);
    }
    let mut folds = vec![Vec::new(); k];
    let mut next = 0usize;
    for class_rows in by_class.iter_mut() {
        class_rows.shuffle(&mut rng);
        for &i in class_rows.iter() {
            folds[next % k].push(i);
            next += 1;
        }
    }
    Ok(folds)
}

/// Stratified k-fold cross-validation. `factory` builds a fresh classifier
/// per fold; the result pools predictions over all folds (Weka's protocol).
pub fn cross_validate<F>(factory: F, data: &Instances, k: usize, seed: u64) -> Result<CvResult>
where
    F: Fn() -> Box<dyn Classifier>,
{
    let folds = stratified_folds(data, k, seed)?;
    let n_classes = data.num_classes()?;
    let mut confusion = ConfusionMatrix::new(n_classes)?;
    let mut train_time = Duration::ZERO;
    let mut test_time = Duration::ZERO;
    let mut fold_test_rows = sms_core::telemetry::Log2Histogram::new();

    for f in 0..k {
        let test_idx = &folds[f];
        if test_idx.is_empty() {
            continue;
        }
        fold_test_rows.observe(test_idx.len() as u64);
        let train_idx: Vec<usize> = folds
            .iter()
            .enumerate()
            .filter(|&(g, _)| g != f)
            .flat_map(|(_, v)| v.iter().copied())
            .collect();
        let train = data.subset(&train_idx);
        let mut model = factory();

        let t0 = Instant::now();
        model.fit(&train)?;
        train_time += t0.elapsed();

        let t1 = Instant::now();
        let mut row = Vec::new();
        for &i in test_idx {
            data.copy_row_into(i, &mut row);
            let predicted = model.predict(&row)?;
            confusion.record(data.class_of(i)?, predicted)?;
        }
        test_time += t1.elapsed();
    }
    Ok(CvResult { confusion, train_time, test_time, folds: k, fold_test_rows })
}

/// Repeated stratified cross-validation: `runs` independent CV passes with
/// derived seeds, pooled into one confusion matrix. This is Weka's "×N runs
/// of k-fold CV" protocol; a single fold assignment estimates F-measure with
/// high variance on small datasets, and pooling runs shrinks that noise
/// without touching the classifier under test.
pub fn cross_validate_repeated<F>(
    factory: F,
    data: &Instances,
    k: usize,
    seed: u64,
    runs: usize,
) -> Result<CvResult>
where
    F: Fn() -> Box<dyn Classifier>,
{
    if runs == 0 {
        return Err(Error::InvalidParameter {
            name: "runs",
            reason: "need at least 1 run".to_string(),
        });
    }
    let mut confusion = ConfusionMatrix::new(data.num_classes()?)?;
    let mut train_time = Duration::ZERO;
    let mut test_time = Duration::ZERO;
    let mut fold_test_rows = sms_core::telemetry::Log2Histogram::new();
    for r in 0..runs {
        // Run 0 reproduces the single-pass assignment for `seed` exactly.
        let run_seed = if r == 0 {
            seed
        } else {
            seed.wrapping_add((r as u64).wrapping_mul(0x9E37_79B9_7F4A_7C15))
        };
        let res = cross_validate(&factory, data, k, run_seed)?;
        confusion.merge(&res.confusion)?;
        train_time += res.train_time;
        test_time += res.test_time;
        fold_test_rows.merge(&res.fold_test_rows);
    }
    Ok(CvResult { confusion, train_time, test_time, folds: k * runs, fold_test_rows })
}

/// [`cross_validate_repeated`] across a worker pool, **bit-identical to the
/// serial protocol at any worker count**: every run's fold assignment is
/// derived up front on this thread (consuming exactly the serial RNG
/// stream), each `(run, fold)` pair becomes one independent pool job, and
/// the per-fold confusion matrices are merged back in `(run, fold)` order.
/// Matrix merging is u64 addition, so the pooled counts — and everything
/// derived from them (accuracy, F-measures, kappa) — match the serial result
/// exactly; only the wall-clock fields vary run to run.
///
/// `workers == 0` uses one thread per available core.
pub fn cross_validate_repeated_parallel<F>(
    factory: F,
    data: &Instances,
    k: usize,
    seed: u64,
    runs: usize,
    workers: usize,
) -> Result<CvResult>
where
    F: Fn() -> Box<dyn Classifier> + Sync,
{
    if runs == 0 {
        return Err(Error::InvalidParameter {
            name: "runs",
            reason: "need at least 1 run".to_string(),
        });
    }
    let n_classes = data.num_classes()?;
    let mut jobs: Vec<(Vec<usize>, Vec<usize>)> = Vec::with_capacity(k * runs);
    for r in 0..runs {
        // Same run-seed derivation as the serial path: run 0 is `seed`.
        let run_seed = if r == 0 {
            seed
        } else {
            seed.wrapping_add((r as u64).wrapping_mul(0x9E37_79B9_7F4A_7C15))
        };
        let folds = stratified_folds(data, k, run_seed)?;
        for f in 0..k {
            let train_idx: Vec<usize> = folds
                .iter()
                .enumerate()
                .filter(|&(g, _)| g != f)
                .flat_map(|(_, v)| v.iter().copied())
                .collect();
            jobs.push((train_idx, folds[f].clone()));
        }
    }

    let config = PoolConfig::with_workers(workers);
    let (results, _stats) = run_indexed(jobs.len(), &config, |j| {
        // Body unchanged; the pool itself now returns a typed error
        // (mapped to `Error::Pool` below) instead of aborting if a fold
        // job panics.
        let (train_idx, test_idx) = &jobs[j];
        let mut confusion = ConfusionMatrix::new(n_classes)?;
        if test_idx.is_empty() {
            // The serial loop skips empty test folds; an all-zero matrix
            // merges to the same thing.
            return Ok((confusion, Duration::ZERO, Duration::ZERO));
        }
        let train = data.subset(train_idx);
        let mut model = factory();
        let t0 = Instant::now();
        model.fit(&train)?;
        let train_time = t0.elapsed();
        let t1 = Instant::now();
        let mut row = Vec::new();
        for &i in test_idx {
            data.copy_row_into(i, &mut row);
            let predicted = model.predict(&row)?;
            confusion.record(data.class_of(i)?, predicted)?;
        }
        Ok((confusion, train_time, t1.elapsed()))
    })
    .map_err(|e| Error::Pool(e.to_string()))?;

    let mut confusion = ConfusionMatrix::new(n_classes)?;
    let mut train_time = Duration::ZERO;
    let mut test_time = Duration::ZERO;
    let mut fold_test_rows = sms_core::telemetry::Log2Histogram::new();
    for (res, (_, test_idx)) in results.into_iter().zip(jobs.iter()) {
        let (m, fit_t, pred_t) = res?;
        confusion.merge(&m)?;
        train_time += fit_t;
        test_time += pred_t;
        // Observed coordinator-side from the precomputed job list, in
        // `(run, fold)` order, skipping the empty folds the serial path
        // skips — so the histogram matches serial at any worker count.
        if !test_idx.is_empty() {
            fold_test_rows.observe(test_idx.len() as u64);
        }
    }
    Ok(CvResult { confusion, train_time, test_time, folds: k * runs, fold_test_rows })
}

/// Train/test evaluation on explicit splits (used by the forecasting
/// experiments' rolling protocol).
pub fn train_test<F>(factory: F, train: &Instances, test: &Instances) -> Result<CvResult>
where
    F: Fn() -> Box<dyn Classifier>,
{
    let n_classes = train.num_classes()?;
    let mut confusion = ConfusionMatrix::new(n_classes)?;
    let mut model = factory();
    let t0 = Instant::now();
    model.fit(train)?;
    let train_time = t0.elapsed();
    let t1 = Instant::now();
    let mut row = Vec::new();
    for i in 0..test.len() {
        test.copy_row_into(i, &mut row);
        let predicted = model.predict(&row)?;
        confusion.record(test.class_of(i)?, predicted)?;
    }
    let test_time = t1.elapsed();
    let mut fold_test_rows = sms_core::telemetry::Log2Histogram::new();
    if !test.is_empty() {
        fold_test_rows.observe(test.len() as u64);
    }
    Ok(CvResult { confusion, train_time, test_time, folds: 1, fold_test_rows })
}

/// Mean absolute error.
pub fn mae(actual: &[f64], predicted: &[f64]) -> Result<f64> {
    if actual.len() != predicted.len() || actual.is_empty() {
        return Err(Error::InvalidParameter {
            name: "actual/predicted",
            reason: format!(
                "need equal non-zero lengths, got {}/{}",
                actual.len(),
                predicted.len()
            ),
        });
    }
    Ok(actual.iter().zip(predicted).map(|(a, p)| (a - p).abs()).sum::<f64>() / actual.len() as f64)
}

/// Root-mean-square error.
pub fn rmse(actual: &[f64], predicted: &[f64]) -> Result<f64> {
    if actual.len() != predicted.len() || actual.is_empty() {
        return Err(Error::InvalidParameter {
            name: "actual/predicted",
            reason: format!(
                "need equal non-zero lengths, got {}/{}",
                actual.len(),
                predicted.len()
            ),
        });
    }
    Ok((actual.iter().zip(predicted).map(|(a, p)| (a - p) * (a - p)).sum::<f64>()
        / actual.len() as f64)
        .sqrt())
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::data::{nominal_row, DatasetBuilder};
    use crate::naive_bayes::NaiveBayes;
    use crate::zero_r::ZeroR;

    #[test]
    fn confusion_metrics() {
        let mut m = ConfusionMatrix::new(2).unwrap();
        // 8 true positives of class 0, 2 misses; class 1: 5 correct, 1 miss.
        for _ in 0..8 {
            m.record(0, 0).unwrap();
        }
        for _ in 0..2 {
            m.record(0, 1).unwrap();
        }
        for _ in 0..5 {
            m.record(1, 1).unwrap();
        }
        m.record(1, 0).unwrap();
        assert_eq!(m.total(), 16);
        assert!((m.accuracy() - 13.0 / 16.0).abs() < 1e-12);
        assert!((m.recall(0) - 0.8).abs() < 1e-12);
        assert!((m.precision(0) - 8.0 / 9.0).abs() < 1e-12);
        let f0 = m.f_measure(0);
        assert!((f0 - 2.0 * 0.8 * (8.0 / 9.0) / (0.8 + 8.0 / 9.0)).abs() < 1e-12);
        // Weighted F: class 0 has 10/16 weight, class 1 has 6/16.
        let expected = 10.0 / 16.0 * f0 + 6.0 / 16.0 * m.f_measure(1);
        assert!((m.weighted_f_measure() - expected).abs() < 1e-12);
        // Kappa: po = 13/16; pe = (10/16)(9/16) + (6/16)(7/16).
        let pe = (10.0 * 9.0 + 6.0 * 7.0) / 256.0;
        let expected_kappa = (13.0 / 16.0 - pe) / (1.0 - pe);
        assert!((m.kappa() - expected_kappa).abs() < 1e-12);
    }

    #[test]
    fn kappa_reference_points() {
        // Perfect agreement.
        let mut m = ConfusionMatrix::new(2).unwrap();
        m.record(0, 0).unwrap();
        m.record(1, 1).unwrap();
        assert!((m.kappa() - 1.0).abs() < 1e-12);
        // Constant prediction on balanced classes: kappa 0.
        let mut m = ConfusionMatrix::new(2).unwrap();
        m.record(0, 0).unwrap();
        m.record(1, 0).unwrap();
        assert!(m.kappa().abs() < 1e-12);
        assert_eq!(ConfusionMatrix::new(3).unwrap().kappa(), 0.0);
    }

    #[test]
    fn degenerate_metrics_are_zero() {
        let m = ConfusionMatrix::new(3).unwrap();
        assert_eq!(m.accuracy(), 0.0);
        assert_eq!(m.weighted_f_measure(), 0.0);
        assert_eq!(m.precision(0), 0.0);
        assert_eq!(m.recall(0), 0.0);
        assert!(ConfusionMatrix::new(0).is_err());
        let mut m = ConfusionMatrix::new(2).unwrap();
        assert!(m.record(2, 0).is_err());
    }

    fn labelled_dataset(n_per_class: usize) -> Instances {
        let mut ds = DatasetBuilder::nominal(1, 3, 3).unwrap();
        for _ in 0..n_per_class {
            for c in 0..3u32 {
                ds.push_row(nominal_row(&[c], c)).unwrap();
            }
        }
        ds
    }

    #[test]
    fn stratified_folds_balance_classes() {
        let ds = labelled_dataset(10);
        let folds = stratified_folds(&ds, 5, 42).unwrap();
        assert_eq!(folds.len(), 5);
        let total: usize = folds.iter().map(Vec::len).sum();
        assert_eq!(total, 30);
        for fold in &folds {
            assert_eq!(fold.len(), 6);
            let mut per_class = [0usize; 3];
            for &i in fold {
                per_class[ds.class_of(i).unwrap()] += 1;
            }
            assert_eq!(per_class, [2, 2, 2], "stratification");
        }
        // Folds partition the dataset.
        let mut all: Vec<usize> = folds.into_iter().flatten().collect();
        all.sort_unstable();
        assert_eq!(all, (0..30).collect::<Vec<_>>());
    }

    #[test]
    fn folds_deterministic_per_seed() {
        let ds = labelled_dataset(10);
        assert_eq!(stratified_folds(&ds, 5, 1).unwrap(), stratified_folds(&ds, 5, 1).unwrap());
        assert_ne!(stratified_folds(&ds, 5, 1).unwrap(), stratified_folds(&ds, 5, 2).unwrap());
    }

    #[test]
    fn cross_validation_perfect_problem() {
        let ds = labelled_dataset(10);
        let result = cross_validate(|| Box::new(NaiveBayes::new()), &ds, 10, 7).unwrap();
        assert!(result.weighted_f_measure() > 0.99, "{}", result.weighted_f_measure());
        assert_eq!(result.confusion.total(), 30);
        assert!(result.processing_time() >= result.train_time);
    }

    #[test]
    fn repeated_cv_pools_runs_and_reproduces_run_zero() {
        let ds = labelled_dataset(10);
        assert!(cross_validate_repeated(|| Box::new(NaiveBayes::new()), &ds, 5, 7, 0).is_err());
        // runs=1 must be exactly the single-pass result for the same seed.
        let single = cross_validate(|| Box::new(NaiveBayes::new()), &ds, 5, 7).unwrap();
        let once = cross_validate_repeated(|| Box::new(NaiveBayes::new()), &ds, 5, 7, 1).unwrap();
        assert_eq!(once.confusion.total(), single.confusion.total());
        assert_eq!(once.folds, single.folds);
        assert!((once.weighted_f_measure() - single.weighted_f_measure()).abs() < 1e-12);
        // runs=3 pools every run's predictions into one confusion matrix.
        let triple = cross_validate_repeated(|| Box::new(NaiveBayes::new()), &ds, 5, 7, 3).unwrap();
        assert_eq!(triple.confusion.total(), 3 * single.confusion.total());
        assert_eq!(triple.folds, 15);
        assert!(triple.processing_time() >= triple.train_time);
    }

    #[test]
    fn parallel_cv_is_bit_identical_to_serial() {
        let ds = labelled_dataset(8);
        let serial =
            cross_validate_repeated(|| Box::new(NaiveBayes::new()), &ds, 4, 11, 3).unwrap();
        for workers in [1, 2, 8] {
            let par = cross_validate_repeated_parallel(
                || Box::new(NaiveBayes::new()),
                &ds,
                4,
                11,
                3,
                workers,
            )
            .unwrap();
            assert_eq!(par.confusion, serial.confusion, "workers={workers}");
            assert_eq!(par.folds, serial.folds);
        }
        assert!(cross_validate_repeated_parallel(|| Box::new(NaiveBayes::new()), &ds, 4, 11, 0, 2)
            .is_err());
    }

    #[test]
    fn zero_r_floor() {
        // ZeroR on balanced 3 classes: accuracy ≈ 1/3.
        let ds = labelled_dataset(20);
        let result = cross_validate(|| Box::new(ZeroR::new()), &ds, 10, 3).unwrap();
        assert!(result.accuracy() < 0.5);
    }

    #[test]
    fn train_test_split_protocol() {
        let train = labelled_dataset(10);
        let test = labelled_dataset(2);
        let r = train_test(|| Box::new(NaiveBayes::new()), &train, &test).unwrap();
        assert_eq!(r.confusion.total(), 6);
        assert!(r.accuracy() > 0.99);
    }

    #[test]
    fn fold_validation() {
        let ds = labelled_dataset(1);
        assert!(stratified_folds(&ds, 1, 0).is_err());
        assert!(stratified_folds(&ds, 50, 0).is_err());
    }

    #[test]
    fn regression_metrics() {
        let a = [1.0, 2.0, 3.0];
        let p = [2.0, 2.0, 1.0];
        assert!((mae(&a, &p).unwrap() - 1.0).abs() < 1e-12);
        assert!((rmse(&a, &p).unwrap() - (5.0f64 / 3.0).sqrt()).abs() < 1e-12);
        assert!(mae(&a, &p[..2]).is_err());
        assert!(mae(&[], &[]).is_err());
    }
}
