//! Error types for the ML substrate.

use std::fmt;

/// Crate-wide result alias.
pub type Result<T> = std::result::Result<T, Error>;

/// Errors produced by dataset handling, training, and evaluation.
#[derive(Debug, Clone, PartialEq)]
pub enum Error {
    /// A dataset had no rows / no attributes where some were required.
    EmptyDataset(&'static str),
    /// A row's arity or value types did not match the schema.
    SchemaMismatch(String),
    /// A nominal value index exceeded its attribute's cardinality.
    NominalOutOfRange {
        /// Attribute index.
        attribute: usize,
        /// Offending value index.
        value: u32,
        /// Attribute cardinality.
        cardinality: usize,
    },
    /// The class attribute was of the wrong kind for the learner
    /// (classifiers need nominal, regressors numeric).
    WrongClassKind(&'static str),
    /// Model used before `fit`.
    NotFitted(&'static str),
    /// A parameter was outside its documented domain.
    InvalidParameter {
        /// Parameter name.
        name: &'static str,
        /// Why it was rejected.
        reason: String,
    },
    /// Training diverged or produced non-finite parameters.
    NumericalFailure(String),
    /// The parallel evaluation pool failed (a worker panicked or a channel
    /// broke); carries the pool's rendered error.
    Pool(String),
}

impl fmt::Display for Error {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        match self {
            Error::EmptyDataset(what) => write!(f, "empty dataset: {what}"),
            Error::SchemaMismatch(msg) => write!(f, "schema mismatch: {msg}"),
            Error::NominalOutOfRange { attribute, value, cardinality } => write!(
                f,
                "nominal value {value} out of range for attribute {attribute} (cardinality {cardinality})"
            ),
            Error::WrongClassKind(need) => write!(f, "class attribute must be {need}"),
            Error::NotFitted(model) => write!(f, "{model} used before fit()"),
            Error::InvalidParameter { name, reason } => {
                write!(f, "invalid parameter `{name}`: {reason}")
            }
            Error::NumericalFailure(msg) => write!(f, "numerical failure: {msg}"),
            Error::Pool(msg) => write!(f, "worker pool failure: {msg}"),
        }
    }
}

impl std::error::Error for Error {}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn display_mentions_details() {
        let e = Error::NominalOutOfRange { attribute: 2, value: 9, cardinality: 4 };
        let s = e.to_string();
        assert!(s.contains('2') && s.contains('9') && s.contains('4'));
    }
}
