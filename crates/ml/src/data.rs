//! Dataset representation: attributes (nominal or numeric), instances, and
//! builders — the Rust equivalent of Weka's `Instances`.
//!
//! The paper's selling point is that symbolic data makes *nominal-attribute*
//! algorithms applicable to meter data ("our symbolic representation admit
//! an additional advantage to allow also algorithms which usually work on
//! nominal and string to be run on top of smart meter data", §1), so nominal
//! support is first-class here, not an afterthought.
//!
//! ## Storage layout
//!
//! Storage is **columnar** (struct-of-arrays): each nominal attribute is a
//! contiguous `Vec<u16>` code buffer and each numeric attribute a
//! `Vec<f64>`. Missing cells use in-band sentinels — [`MISSING_CODE`]
//! (`u16::MAX`) for nominal columns and NaN for numeric ones (unambiguous
//! because [`Instances::push_row`] rejects non-finite user values). The
//! row-oriented API ([`Instances::row`], [`Instances::value`]) is a thin
//! materializing view over the columns, so classifiers can migrate to the
//! column accessors ([`Instances::nominal_codes`],
//! [`Instances::numeric_values`], [`Instances::class_codes`]) incrementally.

use crate::error::{Error, Result};

/// Sentinel code marking a missing cell in a nominal column.
pub const MISSING_CODE: u16 = u16::MAX;

/// Maximum nominal cardinality: `u16` codes with [`MISSING_CODE`] reserved.
pub const MAX_CARDINALITY: usize = u16::MAX as usize;

/// Attribute kind: the set of nominal labels, or a real-valued attribute.
#[derive(Debug, Clone, PartialEq)]
pub enum AttributeKind {
    /// Categorical attribute with the given value labels.
    Nominal(Vec<String>),
    /// Real-valued attribute.
    Numeric,
}

/// A named, typed attribute (column).
#[derive(Debug, Clone, PartialEq)]
pub struct Attribute {
    /// Column name (for reports).
    pub name: String,
    /// Column type.
    pub kind: AttributeKind,
}

impl Attribute {
    /// A nominal attribute with labels `0..cardinality` named after their index.
    pub fn nominal_indexed(name: impl Into<String>, cardinality: usize) -> Self {
        Attribute {
            name: name.into(),
            kind: AttributeKind::Nominal((0..cardinality).map(|i| i.to_string()).collect()),
        }
    }

    /// A nominal attribute with explicit labels.
    pub fn nominal(name: impl Into<String>, labels: Vec<String>) -> Self {
        Attribute { name: name.into(), kind: AttributeKind::Nominal(labels) }
    }

    /// A numeric attribute.
    pub fn numeric(name: impl Into<String>) -> Self {
        Attribute { name: name.into(), kind: AttributeKind::Numeric }
    }

    /// Number of nominal labels (`None` for numeric).
    pub fn cardinality(&self) -> Option<usize> {
        match &self.kind {
            AttributeKind::Nominal(l) => Some(l.len()),
            AttributeKind::Numeric => None,
        }
    }

    /// Whether the attribute is nominal.
    pub fn is_nominal(&self) -> bool {
        matches!(self.kind, AttributeKind::Nominal(_))
    }
}

/// One cell value.
#[derive(Debug, Clone, Copy, PartialEq)]
pub enum Value {
    /// Index into a nominal attribute's label set.
    Nominal(u32),
    /// A real value.
    Numeric(f64),
    /// Missing ("?" in ARFF terms).
    Missing,
}

impl Value {
    /// The nominal index, if this is a nominal value.
    pub fn as_nominal(self) -> Option<u32> {
        match self {
            Value::Nominal(i) => Some(i),
            _ => None,
        }
    }

    /// The numeric value, if this is a numeric value.
    pub fn as_numeric(self) -> Option<f64> {
        match self {
            Value::Numeric(v) => Some(v),
            _ => None,
        }
    }

    /// Whether the value is missing.
    pub fn is_missing(self) -> bool {
        matches!(self, Value::Missing)
    }
}

/// One attribute's contiguous storage.
#[derive(Debug, Clone)]
enum Column {
    /// Nominal codes; [`MISSING_CODE`] marks missing cells.
    Nominal(Vec<u16>),
    /// Numeric values; NaN marks missing cells.
    Numeric(Vec<f64>),
}

impl Column {
    fn empty_for(attr: &Attribute) -> Column {
        match attr.kind {
            AttributeKind::Nominal(_) => Column::Nominal(Vec::new()),
            AttributeKind::Numeric => Column::Numeric(Vec::new()),
        }
    }

    fn gather(&self, indices: &[usize]) -> Column {
        match self {
            Column::Nominal(codes) => Column::Nominal(indices.iter().map(|&i| codes[i]).collect()),
            Column::Numeric(vals) => Column::Numeric(indices.iter().map(|&i| vals[i]).collect()),
        }
    }
}

/// A dataset: schema + columnar cell storage + designated class attribute.
#[derive(Debug, Clone)]
pub struct Instances {
    attributes: Vec<Attribute>,
    class_index: usize,
    len: usize,
    columns: Vec<Column>,
}

impl Instances {
    /// Creates an empty dataset with the given schema.
    pub fn new(attributes: Vec<Attribute>, class_index: usize) -> Result<Self> {
        if attributes.is_empty() {
            return Err(Error::EmptyDataset("no attributes"));
        }
        if class_index >= attributes.len() {
            return Err(Error::InvalidParameter {
                name: "class_index",
                reason: format!("{} out of range for {} attributes", class_index, attributes.len()),
            });
        }
        for (i, a) in attributes.iter().enumerate() {
            if let Some(card) = a.cardinality() {
                if card > MAX_CARDINALITY {
                    return Err(Error::InvalidParameter {
                        name: "cardinality",
                        reason: format!(
                            "attribute {i} ({}) has {card} labels; max is {MAX_CARDINALITY}",
                            a.name
                        ),
                    });
                }
            }
        }
        let columns = attributes.iter().map(Column::empty_for).collect();
        Ok(Instances { attributes, class_index, len: 0, columns })
    }

    /// Appends a row after validating it against the schema.
    pub fn push_row(&mut self, row: Vec<Value>) -> Result<()> {
        if row.len() != self.attributes.len() {
            return Err(Error::SchemaMismatch(format!(
                "row has {} values, schema has {} attributes",
                row.len(),
                self.attributes.len()
            )));
        }
        for (i, (v, a)) in row.iter().zip(&self.attributes).enumerate() {
            match (v, &a.kind) {
                (Value::Missing, _) => {}
                (Value::Nominal(idx), AttributeKind::Nominal(labels)) => {
                    if *idx as usize >= labels.len() {
                        return Err(Error::NominalOutOfRange {
                            attribute: i,
                            value: *idx,
                            cardinality: labels.len(),
                        });
                    }
                }
                (Value::Numeric(x), AttributeKind::Numeric) => {
                    if !x.is_finite() {
                        return Err(Error::SchemaMismatch(format!(
                            "attribute {i}: non-finite numeric value {x}"
                        )));
                    }
                }
                _ => {
                    return Err(Error::SchemaMismatch(format!(
                        "attribute {i} ({}) got a value of the wrong kind",
                        a.name
                    )))
                }
            }
        }
        for (v, col) in row.iter().zip(&mut self.columns) {
            match col {
                Column::Nominal(codes) => codes.push(match v {
                    Value::Nominal(idx) => *idx as u16,
                    _ => MISSING_CODE,
                }),
                Column::Numeric(vals) => vals.push(match v {
                    Value::Numeric(x) => *x,
                    _ => f64::NAN,
                }),
            }
        }
        self.len += 1;
        Ok(())
    }

    /// The schema.
    pub fn attributes(&self) -> &[Attribute] {
        &self.attributes
    }

    /// Index of the class attribute.
    pub fn class_index(&self) -> usize {
        self.class_index
    }

    /// The class attribute itself.
    pub fn class_attribute(&self) -> &Attribute {
        &self.attributes[self.class_index]
    }

    /// Number of classes; errors when the class attribute is numeric.
    pub fn num_classes(&self) -> Result<usize> {
        self.class_attribute().cardinality().ok_or(Error::WrongClassKind("nominal"))
    }

    /// Number of rows.
    pub fn len(&self) -> usize {
        self.len
    }

    /// Whether there are no rows.
    pub fn is_empty(&self) -> bool {
        self.len == 0
    }

    /// Cell `(row, attribute)`, decoded from the column sentinels.
    pub fn value(&self, i: usize, a: usize) -> Value {
        match &self.columns[a] {
            Column::Nominal(codes) => match codes[i] {
                MISSING_CODE => Value::Missing,
                c => Value::Nominal(u32::from(c)),
            },
            Column::Numeric(vals) => {
                let v = vals[i];
                if v.is_nan() {
                    Value::Missing
                } else {
                    Value::Numeric(v)
                }
            }
        }
    }

    /// One row, materialized from the columns.
    pub fn row(&self, i: usize) -> Vec<Value> {
        (0..self.attributes.len()).map(|a| self.value(i, a)).collect()
    }

    /// Materializes row `i` into a reusable buffer (hot evaluation loops).
    pub fn copy_row_into(&self, i: usize, buf: &mut Vec<Value>) {
        buf.clear();
        buf.extend((0..self.attributes.len()).map(|a| self.value(i, a)));
    }

    /// Iterator over materialized rows.
    pub fn rows(&self) -> impl Iterator<Item = Vec<Value>> + '_ {
        (0..self.len).map(move |i| self.row(i))
    }

    /// The contiguous code buffer of a nominal attribute
    /// ([`MISSING_CODE`] marks missing cells); `None` for numeric columns.
    pub fn nominal_codes(&self, a: usize) -> Option<&[u16]> {
        match &self.columns[a] {
            Column::Nominal(codes) => Some(codes),
            Column::Numeric(_) => None,
        }
    }

    /// The contiguous value buffer of a numeric attribute (NaN marks missing
    /// cells); `None` for nominal columns.
    pub fn numeric_values(&self, a: usize) -> Option<&[f64]> {
        match &self.columns[a] {
            Column::Numeric(vals) => Some(vals),
            Column::Nominal(_) => None,
        }
    }

    /// The class column's code buffer; errors when the class is numeric.
    pub fn class_codes(&self) -> Result<&[u16]> {
        self.nominal_codes(self.class_index).ok_or(Error::WrongClassKind("nominal"))
    }

    /// Class value of row `i` as a nominal index; errors for numeric or
    /// missing classes.
    pub fn class_of(&self, i: usize) -> Result<usize> {
        match &self.columns[self.class_index] {
            Column::Nominal(codes) => match codes[i] {
                MISSING_CODE => Err(Error::SchemaMismatch(format!("row {i} has a missing class"))),
                c => Ok(c as usize),
            },
            Column::Numeric(_) => Err(Error::WrongClassKind("nominal")),
        }
    }

    /// Class value of row `i` as a number (for regression); errors otherwise.
    pub fn target_of(&self, i: usize) -> Result<f64> {
        match &self.columns[self.class_index] {
            Column::Numeric(vals) => {
                let v = vals[i];
                if v.is_nan() {
                    Err(Error::SchemaMismatch(format!("row {i} has a missing target")))
                } else {
                    Ok(v)
                }
            }
            Column::Nominal(_) => Err(Error::WrongClassKind("numeric")),
        }
    }

    /// Indices of the non-class (feature) attributes.
    pub fn feature_indices(&self) -> Vec<usize> {
        (0..self.attributes.len()).filter(|&i| i != self.class_index).collect()
    }

    /// Class histogram (`num_classes` long).
    pub fn class_counts(&self) -> Result<Vec<usize>> {
        let k = self.num_classes()?;
        let mut counts = vec![0usize; k];
        for i in 0..self.len {
            counts[self.class_of(i)?] += 1;
        }
        Ok(counts)
    }

    /// A new dataset with the same schema containing the selected rows
    /// (per-column gather; row order follows `indices`).
    pub fn subset(&self, indices: &[usize]) -> Instances {
        Instances {
            attributes: self.attributes.clone(),
            class_index: self.class_index,
            len: indices.len(),
            columns: self.columns.iter().map(|c| c.gather(indices)).collect(),
        }
    }

    /// An empty dataset sharing this one's schema.
    pub fn clone_empty(&self) -> Instances {
        Instances {
            attributes: self.attributes.clone(),
            class_index: self.class_index,
            len: 0,
            columns: self.attributes.iter().map(Column::empty_for).collect(),
        }
    }
}

// Manual equality: the NaN missing sentinel makes derived `PartialEq` wrong
// (NaN != NaN would report two identical datasets unequal), so cells are
// compared through `value()` where both sides decode to `Value::Missing`.
impl PartialEq for Instances {
    fn eq(&self, other: &Self) -> bool {
        self.attributes == other.attributes
            && self.class_index == other.class_index
            && self.len == other.len
            && (0..self.len)
                .all(|i| (0..self.attributes.len()).all(|a| self.value(i, a) == other.value(i, a)))
    }
}

/// Convenience builder for schemas used throughout the experiments:
/// `n` homogeneous feature attributes plus a class.
pub struct DatasetBuilder;

impl DatasetBuilder {
    /// All-nominal features (cardinality `feature_card`) and a nominal class
    /// of `n_classes` labels — the shape of the paper's symbolic day-vector
    /// and lag datasets.
    pub fn nominal(n_features: usize, feature_card: usize, n_classes: usize) -> Result<Instances> {
        let mut attrs: Vec<Attribute> = (0..n_features)
            .map(|i| Attribute::nominal_indexed(format!("f{i}"), feature_card))
            .collect();
        attrs.push(Attribute::nominal_indexed("class", n_classes));
        let class_index = attrs.len() - 1;
        Instances::new(attrs, class_index)
    }

    /// All-numeric features and a nominal class — the shape of the paper's
    /// raw day-vector datasets.
    pub fn numeric(n_features: usize, n_classes: usize) -> Result<Instances> {
        let mut attrs: Vec<Attribute> =
            (0..n_features).map(|i| Attribute::numeric(format!("f{i}"))).collect();
        attrs.push(Attribute::nominal_indexed("class", n_classes));
        let class_index = attrs.len() - 1;
        Instances::new(attrs, class_index)
    }

    /// All-numeric features and a numeric target — the shape of the SVR
    /// forecasting dataset.
    pub fn regression(n_features: usize) -> Result<Instances> {
        let mut attrs: Vec<Attribute> =
            (0..n_features).map(|i| Attribute::numeric(format!("f{i}"))).collect();
        attrs.push(Attribute::numeric("target"));
        let class_index = attrs.len() - 1;
        Instances::new(attrs, class_index)
    }
}

/// Builds a nominal row `features... , class` (all `Value::Nominal`).
pub fn nominal_row(features: &[u32], class: u32) -> Vec<Value> {
    let mut row: Vec<Value> = features.iter().map(|&f| Value::Nominal(f)).collect();
    row.push(Value::Nominal(class));
    row
}

/// Builds a numeric-features row with a nominal class.
pub fn numeric_row(features: &[f64], class: u32) -> Vec<Value> {
    let mut row: Vec<Value> = features.iter().map(|&f| Value::Numeric(f)).collect();
    row.push(Value::Nominal(class));
    row
}

/// Builds an all-numeric regression row.
pub fn regression_row(features: &[f64], target: f64) -> Vec<Value> {
    let mut row: Vec<Value> = features.iter().map(|&f| Value::Numeric(f)).collect();
    row.push(Value::Numeric(target));
    row
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn schema_validation_on_push() {
        let mut ds = DatasetBuilder::nominal(2, 4, 3).unwrap();
        ds.push_row(nominal_row(&[0, 3], 2)).unwrap();
        // Wrong arity.
        assert!(ds.push_row(nominal_row(&[0], 2)).is_err());
        // Out-of-range nominal.
        assert!(matches!(
            ds.push_row(nominal_row(&[0, 4], 2)),
            Err(Error::NominalOutOfRange { attribute: 1, value: 4, cardinality: 4 })
        ));
        // Wrong kind.
        assert!(ds
            .push_row(vec![Value::Numeric(1.0), Value::Nominal(0), Value::Nominal(0)])
            .is_err());
        // Missing is always allowed.
        ds.push_row(vec![Value::Missing, Value::Nominal(1), Value::Nominal(0)]).unwrap();
        assert_eq!(ds.len(), 2);
        // A rejected row must not leave partial column state behind.
        assert_eq!(ds.row(1), vec![Value::Missing, Value::Nominal(1), Value::Nominal(0)]);
    }

    #[test]
    fn non_finite_numeric_rejected() {
        let mut ds = DatasetBuilder::numeric(1, 2).unwrap();
        assert!(ds.push_row(numeric_row(&[f64::NAN], 0)).is_err());
        assert!(ds.push_row(numeric_row(&[f64::INFINITY], 0)).is_err());
        ds.push_row(numeric_row(&[1.0], 0)).unwrap();
    }

    #[test]
    fn class_accessors() {
        let mut ds = DatasetBuilder::nominal(1, 2, 3).unwrap();
        ds.push_row(nominal_row(&[1], 2)).unwrap();
        ds.push_row(nominal_row(&[0], 0)).unwrap();
        assert_eq!(ds.num_classes().unwrap(), 3);
        assert_eq!(ds.class_of(0).unwrap(), 2);
        assert_eq!(ds.class_counts().unwrap(), vec![1, 0, 1]);
        assert_eq!(ds.feature_indices(), vec![0]);
        assert!(ds.target_of(0).is_err(), "nominal class has no numeric target");
        assert_eq!(ds.class_codes().unwrap(), &[2, 0]);
    }

    #[test]
    fn regression_accessors() {
        let mut ds = DatasetBuilder::regression(2).unwrap();
        ds.push_row(regression_row(&[1.0, 2.0], 3.5)).unwrap();
        assert_eq!(ds.target_of(0).unwrap(), 3.5);
        assert!(ds.class_of(0).is_err());
        assert!(ds.num_classes().is_err());
    }

    #[test]
    fn subset_preserves_schema_and_order() {
        let mut ds = DatasetBuilder::nominal(1, 2, 2).unwrap();
        for i in 0..5u32 {
            ds.push_row(nominal_row(&[i % 2], i % 2)).unwrap();
        }
        let sub = ds.subset(&[4, 0, 2]);
        assert_eq!(sub.len(), 3);
        assert_eq!(sub.class_of(0).unwrap(), 0);
        assert_eq!(sub.attributes(), ds.attributes());
        let empty = ds.clone_empty();
        assert!(empty.is_empty());
    }

    #[test]
    fn constructor_validation() {
        assert!(Instances::new(vec![], 0).is_err());
        assert!(Instances::new(vec![Attribute::numeric("x")], 5).is_err());
        // Cardinality must leave room for the u16 missing sentinel.
        let too_wide = Attribute::nominal_indexed("w", MAX_CARDINALITY + 1);
        assert!(Instances::new(vec![too_wide], 0).is_err());
        let just_fits = Attribute::nominal_indexed("w", 70_000.min(MAX_CARDINALITY));
        assert!(Instances::new(vec![just_fits], 0).is_ok());
    }

    #[test]
    fn columnar_accessors_and_sentinels() {
        let mut attrs = vec![Attribute::nominal_indexed("sym", 4), Attribute::numeric("load")];
        attrs.push(Attribute::nominal_indexed("class", 2));
        let mut ds = Instances::new(attrs, 2).unwrap();
        ds.push_row(vec![Value::Nominal(3), Value::Numeric(1.5), Value::Nominal(0)]).unwrap();
        ds.push_row(vec![Value::Missing, Value::Missing, Value::Nominal(1)]).unwrap();

        assert_eq!(ds.nominal_codes(0).unwrap(), &[3, MISSING_CODE]);
        assert!(ds.nominal_codes(1).is_none());
        let nums = ds.numeric_values(1).unwrap();
        assert_eq!(nums[0], 1.5);
        assert!(nums[1].is_nan(), "missing numeric stored as NaN");
        assert!(ds.numeric_values(0).is_none());

        // The row view decodes the sentinels back into Value::Missing.
        assert_eq!(ds.value(1, 0), Value::Missing);
        assert_eq!(ds.value(1, 1), Value::Missing);
        assert_eq!(ds.row(0), vec![Value::Nominal(3), Value::Numeric(1.5), Value::Nominal(0)]);
        let mut buf = Vec::new();
        ds.copy_row_into(1, &mut buf);
        assert_eq!(buf, ds.row(1));
        assert_eq!(ds.rows().count(), 2);
    }

    #[test]
    fn equality_treats_missing_numerics_as_equal() {
        let build = || {
            let mut ds = DatasetBuilder::numeric(1, 2).unwrap();
            ds.push_row(vec![Value::Missing, Value::Nominal(0)]).unwrap();
            ds.push_row(numeric_row(&[2.0], 1)).unwrap();
            ds
        };
        assert_eq!(build(), build(), "NaN sentinels must not break dataset equality");
        let mut other = build();
        other.push_row(numeric_row(&[3.0], 0)).unwrap();
        assert_ne!(build(), other);
    }
}
