//! Naive Bayes classifier (Weka's `NaiveBayes` equivalent): Laplace-smoothed
//! frequency estimates for nominal attributes, per-class Gaussians for
//! numeric attributes, missing values skipped per attribute.
//!
//! This is the classifier behind the paper's Fig. 5 and several Table 1
//! columns; on median-encoded symbols it outperforms every raw-value
//! configuration in the paper.

use crate::classifier::{normalize_distribution, Classifier};
use crate::data::{AttributeKind, Instances, Value, MISSING_CODE};
use crate::error::{Error, Result};

#[derive(Debug, Clone)]
enum AttrModel {
    /// `counts[class][value]`, Laplace-smoothed at predict time.
    Nominal { counts: Vec<Vec<f64>> },
    /// Per-class mean and variance.
    Gaussian { mean: Vec<f64>, var: Vec<f64> },
}

/// Gaussian/multinomial Naive Bayes.
#[derive(Debug, Clone, Default)]
pub struct NaiveBayes {
    class_priors: Vec<f64>,
    models: Vec<Option<AttrModel>>,
    n_classes: usize,
}

/// Variance floor so a constant attribute does not produce a degenerate
/// Gaussian (Weka uses a precision-derived floor; a small absolute one
/// serves the same purpose here).
const VAR_FLOOR: f64 = 1e-9;

impl NaiveBayes {
    /// Creates an untrained model.
    pub fn new() -> Self {
        Self::default()
    }
}

impl Classifier for NaiveBayes {
    fn fit(&mut self, data: &Instances) -> Result<()> {
        if data.is_empty() {
            return Err(Error::EmptyDataset("NaiveBayes::fit"));
        }
        let k = data.num_classes()?;
        self.n_classes = k;
        // Laplace-smoothed class priors.
        let counts = data.class_counts()?;
        let n = data.len() as f64;
        self.class_priors = counts.iter().map(|&c| (c as f64 + 1.0) / (n + k as f64)).collect();

        self.models = vec![None; data.attributes().len()];
        for a in data.feature_indices() {
            let model = match &data.attributes()[a].kind {
                AttributeKind::Nominal(labels) => {
                    let card = labels.len();
                    let mut counts = vec![vec![0.0f64; card]; k];
                    // Columnar scan: class codes are non-missing here (the
                    // class_counts() call above already validated them).
                    let codes = data.nominal_codes(a).expect("nominal column");
                    let classes = data.class_codes()?;
                    for (&v, &c) in codes.iter().zip(classes) {
                        if v != MISSING_CODE {
                            counts[c as usize][v as usize] += 1.0;
                        }
                    }
                    AttrModel::Nominal { counts }
                }
                AttributeKind::Numeric => {
                    let mut sum = vec![0.0f64; k];
                    let mut sq = vec![0.0f64; k];
                    let mut cnt = vec![0.0f64; k];
                    let vals = data.numeric_values(a).expect("numeric column");
                    let classes = data.class_codes()?;
                    for (&v, &c) in vals.iter().zip(classes) {
                        if !v.is_nan() {
                            let c = c as usize;
                            sum[c] += v;
                            sq[c] += v * v;
                            cnt[c] += 1.0;
                        }
                    }
                    let mut mean = vec![0.0f64; k];
                    let mut var = vec![VAR_FLOOR; k];
                    for c in 0..k {
                        if cnt[c] > 0.0 {
                            mean[c] = sum[c] / cnt[c];
                            var[c] = (sq[c] / cnt[c] - mean[c] * mean[c]).max(VAR_FLOOR);
                        }
                    }
                    AttrModel::Gaussian { mean, var }
                }
            };
            self.models[a] = Some(model);
        }
        Ok(())
    }

    fn predict_proba(&self, row: &[Value]) -> Result<Vec<f64>> {
        if self.n_classes == 0 {
            return Err(Error::NotFitted("NaiveBayes"));
        }
        // Work in log space to avoid underflow on many attributes.
        let mut log_p: Vec<f64> = self.class_priors.iter().map(|p| p.ln()).collect();
        for (a, model) in self.models.iter().enumerate() {
            let Some(model) = model else { continue };
            let v = match row.get(a) {
                Some(v) => *v,
                None => {
                    return Err(Error::SchemaMismatch(format!("row too short: no attribute {a}")))
                }
            };
            if v.is_missing() {
                continue;
            }
            match (model, v) {
                (AttrModel::Nominal { counts }, Value::Nominal(idx)) => {
                    for (c, lp) in log_p.iter_mut().enumerate() {
                        let row_counts = &counts[c];
                        let card = row_counts.len() as f64;
                        let total: f64 = row_counts.iter().sum();
                        let idx = idx as usize;
                        if idx >= row_counts.len() {
                            return Err(Error::NominalOutOfRange {
                                attribute: a,
                                value: idx as u32,
                                cardinality: row_counts.len(),
                            });
                        }
                        *lp += ((row_counts[idx] + 1.0) / (total + card)).ln();
                    }
                }
                (AttrModel::Gaussian { mean, var }, Value::Numeric(x)) => {
                    for (c, lp) in log_p.iter_mut().enumerate() {
                        let d = x - mean[c];
                        *lp += -0.5
                            * (d * d / var[c] + var[c].ln() + (2.0 * std::f64::consts::PI).ln());
                    }
                }
                _ => {
                    return Err(Error::SchemaMismatch(format!(
                        "attribute {a}: value kind does not match trained model"
                    )))
                }
            }
        }
        // Softmax-style exponentiation with max subtraction.
        let m = log_p.iter().copied().fold(f64::NEG_INFINITY, f64::max);
        let mut p: Vec<f64> = log_p.iter().map(|lp| (lp - m).exp()).collect();
        normalize_distribution(&mut p);
        Ok(p)
    }

    fn name(&self) -> &'static str {
        "NaiveBayes"
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::data::{nominal_row, numeric_row, DatasetBuilder};

    #[test]
    fn nominal_separable_problem() {
        // Class == feature value.
        let mut ds = DatasetBuilder::nominal(1, 3, 3).unwrap();
        for _ in 0..20 {
            for v in 0..3u32 {
                ds.push_row(nominal_row(&[v], v)).unwrap();
            }
        }
        let mut nb = NaiveBayes::new();
        nb.fit(&ds).unwrap();
        for v in 0..3u32 {
            assert_eq!(nb.predict(&nominal_row(&[v], 0)).unwrap(), v as usize);
            let p = nb.predict_proba(&nominal_row(&[v], 0)).unwrap();
            assert!((p.iter().sum::<f64>() - 1.0).abs() < 1e-9);
            assert!(p[v as usize] > 0.9);
        }
    }

    #[test]
    fn gaussian_separable_problem() {
        let mut ds = DatasetBuilder::numeric(1, 2).unwrap();
        for i in 0..30 {
            ds.push_row(numeric_row(&[10.0 + (i % 5) as f64], 0)).unwrap();
            ds.push_row(numeric_row(&[100.0 + (i % 5) as f64], 1)).unwrap();
        }
        let mut nb = NaiveBayes::new();
        nb.fit(&ds).unwrap();
        assert_eq!(nb.predict(&numeric_row(&[12.0], 0)).unwrap(), 0);
        assert_eq!(nb.predict(&numeric_row(&[98.0], 0)).unwrap(), 1);
    }

    #[test]
    fn missing_values_are_skipped() {
        let mut ds = DatasetBuilder::nominal(2, 2, 2).unwrap();
        for _ in 0..10 {
            ds.push_row(nominal_row(&[0, 0], 0)).unwrap();
            ds.push_row(nominal_row(&[1, 1], 1)).unwrap();
        }
        ds.push_row(vec![Value::Missing, Value::Nominal(0), Value::Nominal(0)]).unwrap();
        let mut nb = NaiveBayes::new();
        nb.fit(&ds).unwrap();
        // Predicting with a missing first attribute still works.
        let p = nb.predict_proba(&[Value::Missing, Value::Nominal(1), Value::Missing]).unwrap();
        assert!(p[1] > p[0]);
    }

    #[test]
    fn unfitted_and_empty_errors() {
        let nb = NaiveBayes::new();
        assert!(matches!(
            nb.predict_proba(&[Value::Nominal(0)]),
            Err(Error::NotFitted("NaiveBayes"))
        ));
        let ds = DatasetBuilder::nominal(1, 2, 2).unwrap();
        assert!(NaiveBayes::new().fit(&ds).is_err());
    }

    #[test]
    fn constant_numeric_attribute_does_not_explode() {
        let mut ds = DatasetBuilder::numeric(1, 2).unwrap();
        for _ in 0..5 {
            ds.push_row(numeric_row(&[7.0], 0)).unwrap();
            ds.push_row(numeric_row(&[7.0], 1)).unwrap();
        }
        let mut nb = NaiveBayes::new();
        nb.fit(&ds).unwrap();
        let p = nb.predict_proba(&numeric_row(&[7.0], 0)).unwrap();
        assert!(p.iter().all(|x| x.is_finite()));
        assert!((p.iter().sum::<f64>() - 1.0).abs() < 1e-9);
    }

    #[test]
    fn priors_break_ties() {
        // No informative features: prediction should follow the majority class.
        let mut ds = DatasetBuilder::nominal(1, 2, 2).unwrap();
        for _ in 0..9 {
            ds.push_row(nominal_row(&[0], 1)).unwrap();
        }
        ds.push_row(nominal_row(&[0], 0)).unwrap();
        let mut nb = NaiveBayes::new();
        nb.fit(&ds).unwrap();
        assert_eq!(nb.predict(&nominal_row(&[0], 0)).unwrap(), 1);
    }
}
