//! Multinomial (softmax) logistic regression with ridge regularization —
//! Weka's `Logistic` equivalent. Nominal features are one-hot encoded,
//! numeric features standardized; training is full-batch gradient descent
//! with backtracking line search on the penalized negative log-likelihood.
//!
//! This is the paper's `Logistic` column in Table 1 — the classifier that
//! ran out of Java heap on the raw 1-second vectors (our implementation has
//! no such problem, and the Table 1 reproduction fills in that `-*` cell).

use crate::classifier::Classifier;
use crate::data::{AttributeKind, Instances, Value};
use crate::error::{Error, Result};
use crate::stats_util::{mean, std_dev};

/// Feature encoding plan: maps a schema row to a dense vector.
#[derive(Debug, Clone)]
struct Encoder {
    /// Per source attribute: offset into the dense vector and width.
    plan: Vec<(usize, Encoding)>,
    width: usize,
}

#[derive(Debug, Clone)]
enum Encoding {
    OneHot { offset: usize, card: usize },
    Standardized { offset: usize, mean: f64, std: f64 },
}

impl Encoder {
    fn build(data: &Instances) -> Result<Self> {
        let mut plan = Vec::new();
        let mut width = 0usize;
        for a in data.feature_indices() {
            match &data.attributes()[a].kind {
                AttributeKind::Nominal(labels) => {
                    plan.push((a, Encoding::OneHot { offset: width, card: labels.len() }));
                    width += labels.len();
                }
                AttributeKind::Numeric => {
                    let column = data.numeric_values(a).expect("numeric column");
                    let vals: Vec<f64> = column.iter().copied().filter(|v| !v.is_nan()).collect();
                    let m = mean(&vals);
                    let s = std_dev(&vals);
                    plan.push((
                        a,
                        Encoding::Standardized {
                            offset: width,
                            mean: m,
                            std: if s > 1e-12 { s } else { 1.0 },
                        },
                    ));
                    width += 1;
                }
            }
        }
        Ok(Encoder { plan, width })
    }

    /// Encodes a row; missing values contribute zeros (mean after
    /// standardization, absent category for one-hot).
    fn encode(&self, row: &[Value], out: &mut Vec<f64>) -> Result<()> {
        out.clear();
        out.resize(self.width + 1, 0.0);
        out[self.width] = 1.0; // bias
        for (a, enc) in &self.plan {
            let v = row.get(*a).copied().unwrap_or(Value::Missing);
            match (enc, v) {
                (_, Value::Missing) => {}
                (Encoding::OneHot { offset, card }, Value::Nominal(idx)) => {
                    if (idx as usize) < *card {
                        out[offset + idx as usize] = 1.0;
                    } else {
                        return Err(Error::NominalOutOfRange {
                            attribute: *a,
                            value: idx,
                            cardinality: *card,
                        });
                    }
                }
                (Encoding::Standardized { offset, mean, std }, Value::Numeric(x)) => {
                    out[*offset] = (x - mean) / std;
                }
                _ => {
                    return Err(Error::SchemaMismatch(format!(
                        "attribute {a}: value kind does not match encoder"
                    )))
                }
            }
        }
        Ok(())
    }
}

/// Ridge-penalized multinomial logistic regression.
#[derive(Debug, Clone)]
pub struct Logistic {
    /// Ridge penalty (Weka default 1e-8).
    pub ridge: f64,
    /// Maximum optimizer iterations.
    pub max_iter: usize,
    /// Convergence tolerance on the gradient norm.
    pub tol: f64,
    encoder: Option<Encoder>,
    /// `weights[class][feature]` (last class pinned at zero, as usual).
    weights: Vec<Vec<f64>>,
    n_classes: usize,
}

impl Default for Logistic {
    fn default() -> Self {
        Logistic {
            ridge: 1e-8,
            max_iter: 200,
            tol: 1e-5,
            encoder: None,
            weights: Vec::new(),
            n_classes: 0,
        }
    }
}

impl Logistic {
    /// Weka-default configuration.
    pub fn new() -> Self {
        Self::default()
    }

    fn softmax_scores(&self, x: &[f64]) -> Vec<f64> {
        softmax(&self.weights, x)
    }
}

/// Softmax probabilities for a `(k-1) × d` weight matrix with the last class
/// pinned at zero scores.
fn softmax(weights: &[Vec<f64>], x: &[f64]) -> Vec<f64> {
    let mut scores: Vec<f64> =
        weights.iter().map(|w| w.iter().zip(x).map(|(a, b)| a * b).sum::<f64>()).collect();
    scores.push(0.0); // pinned last class
    let m = scores.iter().copied().fold(f64::NEG_INFINITY, f64::max);
    let mut exps: Vec<f64> = scores.iter().map(|s| (s - m).exp()).collect();
    let z: f64 = exps.iter().sum();
    for e in exps.iter_mut() {
        *e /= z;
    }
    exps
}

impl Classifier for Logistic {
    fn fit(&mut self, data: &Instances) -> Result<()> {
        if data.is_empty() {
            return Err(Error::EmptyDataset("Logistic::fit"));
        }
        let k = data.num_classes()?;
        self.n_classes = k;
        let encoder = Encoder::build(data)?;
        let d = encoder.width + 1;
        let n = data.len();

        // Pre-encode all rows.
        let mut xs: Vec<Vec<f64>> = Vec::with_capacity(n);
        let mut buf = Vec::new();
        let mut row = Vec::new();
        for i in 0..n {
            data.copy_row_into(i, &mut row);
            encoder.encode(&row, &mut buf)?;
            xs.push(buf.clone());
        }
        let ys: Vec<usize> = (0..n).map(|i| data.class_of(i)).collect::<Result<_>>()?;

        // (k-1) × d parameter matrix.
        let mut w = vec![vec![0.0f64; d]; k - 1];
        self.weights = w.clone();

        let ridge = self.ridge;
        let nll = |w: &[Vec<f64>]| -> f64 {
            let mut loss = 0.0;
            for (x, &y) in xs.iter().zip(&ys) {
                let p = softmax(w, x);
                loss -= p[y].max(1e-300).ln();
            }
            let reg: f64 = w.iter().flat_map(|row| row.iter()).map(|v| v * v).sum::<f64>() * ridge;
            loss + reg
        };

        self.encoder = Some(encoder.clone());
        let mut step = 1.0;
        let mut prev_loss = nll(&w);
        for _ in 0..self.max_iter {
            // Gradient.
            let mut grad = vec![vec![0.0f64; d]; k - 1];
            for (x, &y) in xs.iter().zip(&ys) {
                let p = softmax(&w, x);
                for (c, grad_row) in grad.iter_mut().enumerate() {
                    let err = p[c] - if y == c { 1.0 } else { 0.0 };
                    for (g, xv) in grad_row.iter_mut().zip(x) {
                        *g += err * xv;
                    }
                }
            }
            for (grad_row, w_row) in grad.iter_mut().zip(&w) {
                for (g, wv) in grad_row.iter_mut().zip(w_row) {
                    *g += 2.0 * ridge * wv;
                }
            }
            let gnorm: f64 = grad.iter().flat_map(|r| r.iter()).map(|g| g * g).sum::<f64>().sqrt();
            if gnorm < self.tol {
                break;
            }
            // Backtracking line search along -grad (normalized by n).
            let scale = 1.0 / n as f64;
            let mut improved = false;
            for _ in 0..30 {
                let trial: Vec<Vec<f64>> = w
                    .iter()
                    .zip(&grad)
                    .map(|(wr, gr)| {
                        wr.iter().zip(gr).map(|(wv, gv)| wv - step * scale * gv).collect()
                    })
                    .collect();
                let loss = nll(&trial);
                if loss < prev_loss {
                    w = trial;
                    prev_loss = loss;
                    step *= 1.2;
                    improved = true;
                    break;
                }
                step *= 0.5;
                if step < 1e-12 {
                    break;
                }
            }
            if !improved {
                break;
            }
        }
        if w.iter().flat_map(|r| r.iter()).any(|v| !v.is_finite()) {
            return Err(Error::NumericalFailure("logistic weights diverged".to_string()));
        }
        self.weights = w;
        Ok(())
    }

    fn predict_proba(&self, row: &[Value]) -> Result<Vec<f64>> {
        let encoder = self.encoder.as_ref().ok_or(Error::NotFitted("Logistic"))?;
        let mut x = Vec::new();
        encoder.encode(row, &mut x)?;
        Ok(self.softmax_scores(&x))
    }

    fn name(&self) -> &'static str {
        "Logistic"
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::data::{nominal_row, numeric_row, DatasetBuilder};

    #[test]
    fn linearly_separable_numeric() {
        let mut ds = DatasetBuilder::numeric(2, 2).unwrap();
        for i in 0..60 {
            let x = (i % 20) as f64;
            let y = (i % 13) as f64;
            ds.push_row(numeric_row(&[x, y], u32::from(x + y > 15.0))).unwrap();
        }
        let mut lg = Logistic::new();
        lg.fit(&ds).unwrap();
        assert_eq!(lg.predict(&numeric_row(&[1.0, 1.0], 0)).unwrap(), 0);
        assert_eq!(lg.predict(&numeric_row(&[19.0, 12.0], 0)).unwrap(), 1);
    }

    #[test]
    fn three_class_nominal() {
        let mut ds = DatasetBuilder::nominal(1, 3, 3).unwrap();
        for _ in 0..30 {
            for v in 0..3u32 {
                ds.push_row(nominal_row(&[v], v)).unwrap();
            }
        }
        let mut lg = Logistic::new();
        lg.fit(&ds).unwrap();
        for v in 0..3u32 {
            assert_eq!(lg.predict(&nominal_row(&[v], 0)).unwrap(), v as usize);
        }
        let p = lg.predict_proba(&nominal_row(&[1], 0)).unwrap();
        assert!((p.iter().sum::<f64>() - 1.0).abs() < 1e-9);
        assert!(p[1] > 0.8, "{p:?}");
    }

    #[test]
    fn standardization_handles_large_scales() {
        let mut ds = DatasetBuilder::numeric(1, 2).unwrap();
        for i in 0..40 {
            let x = 1e6 + i as f64 * 1e4;
            ds.push_row(numeric_row(&[x], u32::from(i >= 20))).unwrap();
        }
        let mut lg = Logistic::new();
        lg.fit(&ds).unwrap();
        assert_eq!(lg.predict(&numeric_row(&[1e6], 0)).unwrap(), 0);
        assert_eq!(lg.predict(&numeric_row(&[1e6 + 39e4], 0)).unwrap(), 1);
    }

    #[test]
    fn missing_values_tolerated() {
        let mut ds = DatasetBuilder::numeric(2, 2).unwrap();
        for i in 0..30 {
            ds.push_row(numeric_row(&[i as f64, 0.0], u32::from(i >= 15))).unwrap();
        }
        ds.push_row(vec![Value::Missing, Value::Numeric(0.0), Value::Nominal(0)]).unwrap();
        let mut lg = Logistic::new();
        lg.fit(&ds).unwrap();
        let p = lg.predict_proba(&[Value::Missing, Value::Missing, Value::Missing]).unwrap();
        assert!((p.iter().sum::<f64>() - 1.0).abs() < 1e-9);
    }

    #[test]
    fn not_fitted() {
        let lg = Logistic::new();
        assert!(matches!(lg.predict_proba(&[]), Err(Error::NotFitted("Logistic"))));
    }

    #[test]
    fn constant_feature_is_harmless() {
        let mut ds = DatasetBuilder::numeric(2, 2).unwrap();
        for i in 0..20 {
            ds.push_row(numeric_row(&[5.0, i as f64], u32::from(i >= 10))).unwrap();
        }
        let mut lg = Logistic::new();
        lg.fit(&ds).unwrap();
        assert_eq!(lg.predict(&numeric_row(&[5.0, 2.0], 0)).unwrap(), 0);
        assert_eq!(lg.predict(&numeric_row(&[5.0, 18.0], 0)).unwrap(), 1);
    }
}
