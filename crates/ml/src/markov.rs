//! N-gram (Markov) next-symbol predictor — a symbolic-native forecaster.
//!
//! The paper reduces forecasting to classification over lag symbols and
//! notes "in principle we can use any machine learning algorithm for
//! classification" (§3.2). An n-gram model over the symbol stream is the
//! most natural such algorithm for purely nominal sequences: it conditions
//! on the last `order` symbols and backs off to shorter contexts when a
//! context was never seen (stupid-backoff style, factor 0.4).
//!
//! Implemented as a [`Classifier`] over lag datasets (the last `order`
//! feature columns are the context), so it drops into the same forecasting
//! harness as Naive Bayes and Random Forest.

use crate::classifier::{normalize_distribution, Classifier};
use crate::data::{Instances, Value};
use crate::error::{Error, Result};
use std::collections::HashMap;

/// Backoff weight per order step (Brants et al.'s "stupid backoff").
const BACKOFF: f64 = 0.4;

/// N-gram predictor over nominal lag features.
#[derive(Debug, Clone)]
pub struct NgramPredictor {
    /// Maximum context length (in trailing lag features).
    pub order: usize,
    /// `tables[o]`: context of length `o+1` → class counts.
    tables: Vec<HashMap<Vec<u32>, Vec<f64>>>,
    /// Unconditional class counts (order-0 backoff).
    unigram: Vec<f64>,
    n_classes: usize,
}

impl NgramPredictor {
    /// Predictor conditioning on up to `order` trailing symbols.
    pub fn new(order: usize) -> Self {
        NgramPredictor { order, tables: Vec::new(), unigram: Vec::new(), n_classes: 0 }
    }

    /// The trailing `len` lag values of a row's features, as a context key.
    /// Returns `None` when any needed value is missing or non-nominal.
    fn context(row: &[Value], n_features: usize, len: usize) -> Option<Vec<u32>> {
        let start = n_features.checked_sub(len)?;
        row[start..n_features].iter().map(|v| v.as_nominal()).collect()
    }
}

impl Classifier for NgramPredictor {
    fn fit(&mut self, data: &Instances) -> Result<()> {
        if data.is_empty() {
            return Err(Error::EmptyDataset("NgramPredictor::fit"));
        }
        if self.order == 0 {
            return Err(Error::InvalidParameter {
                name: "order",
                reason: "must be positive".to_string(),
            });
        }
        let k = data.num_classes()?;
        self.n_classes = k;
        let n_features = data.feature_indices().len();
        let max_order = self.order.min(n_features);

        self.unigram = vec![0.0; k];
        self.tables = vec![HashMap::new(); max_order];
        let mut row = Vec::new();
        for i in 0..data.len() {
            let class = data.class_of(i)?;
            self.unigram[class] += 1.0;
            data.copy_row_into(i, &mut row);
            for len in 1..=max_order {
                if let Some(ctx) = Self::context(&row, n_features, len) {
                    let counts = self.tables[len - 1].entry(ctx).or_insert_with(|| vec![0.0; k]);
                    counts[class] += 1.0;
                }
            }
        }
        Ok(())
    }

    fn predict_proba(&self, row: &[Value]) -> Result<Vec<f64>> {
        if self.n_classes == 0 {
            return Err(Error::NotFitted("NgramPredictor"));
        }
        // Features = everything except a possible trailing class cell; the
        // lag harness always passes full-width rows, so use the trained
        // feature count implicitly via the longest available table.
        let n_features = row.len().saturating_sub(1).max(1);
        // Longest context with any observations wins; shorter contexts mix
        // in with stupid-backoff weights.
        let mut acc = vec![0.0f64; self.n_classes];
        let mut weight = 1.0;
        let max_order = self.tables.len().min(n_features);
        for len in (1..=max_order).rev() {
            if let Some(ctx) = Self::context(row, n_features, len) {
                if let Some(counts) = self.tables[len - 1].get(&ctx) {
                    let total: f64 = counts.iter().sum();
                    if total > 0.0 {
                        for (a, &c) in acc.iter_mut().zip(counts) {
                            *a += weight * c / total;
                        }
                        weight *= BACKOFF;
                    }
                }
            }
        }
        // Order-0 backoff with Laplace smoothing.
        let total: f64 = self.unigram.iter().sum::<f64>() + self.n_classes as f64;
        for (a, &c) in acc.iter_mut().zip(&self.unigram) {
            *a += weight * (c + 1.0) / total;
        }
        normalize_distribution(&mut acc);
        Ok(acc)
    }

    fn name(&self) -> &'static str {
        "Ngram"
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::data::{nominal_row, DatasetBuilder};
    use crate::forecast::{lag_dataset_nominal, symbolic_forecast};

    #[test]
    fn learns_deterministic_transitions() {
        // Cycle 0→1→2→3→0… : context of length 1 suffices.
        let ranks: Vec<u16> = (0..100).map(|i| (i % 4) as u16).collect();
        let ds = lag_dataset_nominal(&ranks, 4, 3).unwrap();
        let mut m = NgramPredictor::new(3);
        m.fit(&ds).unwrap();
        // Last lag = 2 ⇒ next = 3.
        assert_eq!(m.predict(&nominal_row(&[0, 1, 2], 0)).unwrap(), 3);
        assert_eq!(m.predict(&nominal_row(&[2, 3, 0], 0)).unwrap(), 1);
    }

    #[test]
    fn backs_off_for_unseen_contexts() {
        // Train on a stream that never contains context [3,3,3]; prediction
        // must still produce a valid distribution (via backoff).
        let ranks: Vec<u16> = (0..60).map(|i| (i % 2) as u16).collect();
        let ds = lag_dataset_nominal(&ranks, 4, 3).unwrap();
        let mut m = NgramPredictor::new(3);
        m.fit(&ds).unwrap();
        let p = m.predict_proba(&nominal_row(&[3, 3, 3], 0)).unwrap();
        assert!((p.iter().sum::<f64>() - 1.0).abs() < 1e-9);
        assert!(p.iter().all(|&x| x > 0.0), "smoothed everywhere: {p:?}");
    }

    #[test]
    fn longer_context_disambiguates() {
        // Second-order pattern: 0,0→1 but 1,0→2. Order-1 cannot tell.
        let mut ranks = Vec::new();
        for _ in 0..30 {
            ranks.extend_from_slice(&[0, 0, 1, 0, 2]); // contexts: (0,0)->1, (1,0)->2
        }
        let ds = lag_dataset_nominal(&ranks, 3, 2).unwrap();
        let mut order2 = NgramPredictor::new(2);
        order2.fit(&ds).unwrap();
        assert_eq!(order2.predict(&nominal_row(&[0, 0], 0)).unwrap(), 1);
        assert_eq!(order2.predict(&nominal_row(&[1, 0], 0)).unwrap(), 2);
    }

    #[test]
    fn works_in_the_forecasting_harness() {
        let train: Vec<u16> = (0..96).map(|i| (i % 8) as u16).collect();
        let test: Vec<u16> = (96..120).map(|i| (i % 8) as u16).collect();
        let actual: Vec<f64> = test.iter().map(|&r| r as f64 * 50.0).collect();
        let result = symbolic_forecast(
            || Box::new(NgramPredictor::new(4)),
            &train,
            &test,
            &actual,
            8,
            12,
            |r| r as f64 * 50.0,
        )
        .unwrap();
        assert!(result.mae().unwrap() < 1e-9, "periodic stream is fully predictable");
    }

    #[test]
    fn validation() {
        let m = NgramPredictor::new(2);
        assert!(m.predict_proba(&[Value::Nominal(0)]).is_err());
        let ds = DatasetBuilder::nominal(2, 2, 2).unwrap();
        assert!(NgramPredictor::new(2).fit(&ds).is_err(), "empty dataset");
        let mut ds = DatasetBuilder::nominal(2, 2, 2).unwrap();
        ds.push_row(nominal_row(&[0, 1], 1)).unwrap();
        assert!(NgramPredictor::new(0).fit(&ds).is_err(), "zero order");
    }

    #[test]
    fn missing_context_values_fall_back() {
        let ranks: Vec<u16> = (0..40).map(|i| (i % 2) as u16).collect();
        let ds = lag_dataset_nominal(&ranks, 2, 2).unwrap();
        let mut m = NgramPredictor::new(2);
        m.fit(&ds).unwrap();
        let p = m.predict_proba(&[Value::Missing, Value::Nominal(0), Value::Missing]).unwrap();
        assert!((p.iter().sum::<f64>() - 1.0).abs() < 1e-9);
    }
}
