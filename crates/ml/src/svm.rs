//! ε-insensitive Support Vector Regression — the Weka `SMOreg` equivalent
//! the paper uses for raw-value consumption forecasting (§3.2: "we use
//! support vector machine for regression to forecast (real value)
//! residential level consumption").
//!
//! Training solves the ε-SVR dual with the bias absorbed into the kernel
//! (`K' = K + 1`), which removes the equality constraint and admits exact
//! coordinate-wise updates over the net coefficients `β_i = α_i − α_i^*`
//! — an SMO-style decomposition with single-coordinate working sets. Inputs
//! and target are standardized internally.

use crate::classifier::Regressor;
use crate::data::{Instances, Value};
use crate::error::{Error, Result};
use crate::stats_util::{mean, std_dev};

/// Kernel functions.
#[derive(Debug, Clone, Copy, PartialEq)]
pub enum Kernel {
    /// Dot product.
    Linear,
    /// `exp(-gamma * ||a - b||^2)`.
    Rbf {
        /// Width parameter.
        gamma: f64,
    },
    /// `(dot(a, b) + 1)^degree`.
    Poly {
        /// Polynomial degree.
        degree: u32,
    },
}

impl Kernel {
    fn eval(self, a: &[f64], b: &[f64]) -> f64 {
        match self {
            Kernel::Linear => dot(a, b),
            Kernel::Rbf { gamma } => {
                let d2: f64 = a.iter().zip(b).map(|(x, y)| (x - y) * (x - y)).sum();
                (-gamma * d2).exp()
            }
            Kernel::Poly { degree } => (dot(a, b) + 1.0).powi(degree as i32),
        }
    }
}

fn dot(a: &[f64], b: &[f64]) -> f64 {
    a.iter().zip(b).map(|(x, y)| x * y).sum()
}

/// ε-SVR trained by coordinate descent on the bias-absorbed dual.
#[derive(Debug, Clone)]
pub struct SvrRegressor {
    /// Box constraint (regularization trade-off), Weka default 1.0.
    pub c: f64,
    /// ε-insensitive tube half-width (in standardized target units).
    pub epsilon: f64,
    /// Kernel.
    pub kernel: Kernel,
    /// Maximum passes over the coefficients.
    pub max_passes: usize,
    /// Convergence tolerance on the largest coefficient change per pass.
    pub tol: f64,
    // Fitted state.
    support: Vec<Vec<f64>>,
    beta: Vec<f64>,
    x_mean: Vec<f64>,
    x_std: Vec<f64>,
    y_mean: f64,
    y_std: f64,
    fitted: bool,
}

impl Default for SvrRegressor {
    fn default() -> Self {
        SvrRegressor {
            c: 1.0,
            epsilon: 0.01,
            kernel: Kernel::Rbf { gamma: 0.5 },
            max_passes: 60,
            tol: 1e-4,
            support: Vec::new(),
            beta: Vec::new(),
            x_mean: Vec::new(),
            x_std: Vec::new(),
            y_mean: 0.0,
            y_std: 1.0,
            fitted: false,
        }
    }
}

impl SvrRegressor {
    /// RBF-kernel SVR with Weka-like defaults.
    pub fn new() -> Self {
        Self::default()
    }

    /// Linear-kernel variant.
    pub fn linear() -> Self {
        SvrRegressor { kernel: Kernel::Linear, ..Self::default() }
    }

    /// Number of support vectors (non-zero coefficients) after fitting.
    pub fn support_vector_count(&self) -> usize {
        self.beta.iter().filter(|&&b| b.abs() > 1e-12).count()
    }

    fn standardize_row(&self, row: &[Value]) -> Result<Vec<f64>> {
        let d = self.x_mean.len();
        // Accept either bare features or features + target cell.
        if row.len() != d && row.len() != d + 1 {
            return Err(Error::SchemaMismatch(format!(
                "SVR expected {d} features (+ optional target), got {} values",
                row.len()
            )));
        }
        let mut x = vec![0.0f64; d];
        let mut j = 0usize;
        for v in row.iter() {
            if j >= d {
                break;
            }
            match v {
                Value::Numeric(val) => {
                    x[j] = (val - self.x_mean[j]) / self.x_std[j];
                    j += 1;
                }
                Value::Missing => {
                    x[j] = 0.0;
                    j += 1;
                }
                Value::Nominal(_) => {
                    return Err(Error::SchemaMismatch("SVR requires numeric features".to_string()))
                }
            }
        }
        if j != d {
            return Err(Error::SchemaMismatch(format!(
                "SVR expected {d} numeric features, row provided {j}"
            )));
        }
        Ok(x)
    }
}

impl Regressor for SvrRegressor {
    fn fit(&mut self, data: &Instances) -> Result<()> {
        if data.is_empty() {
            return Err(Error::EmptyDataset("SvrRegressor::fit"));
        }
        let feats = data.feature_indices();
        let d = feats.len();
        let n = data.len();

        // Collect matrices and standardize.
        let mut cols: Vec<Vec<f64>> = vec![Vec::with_capacity(n); d];
        let mut ys = Vec::with_capacity(n);
        for (j, &a) in feats.iter().enumerate() {
            let column = data.numeric_values(a).ok_or_else(|| {
                Error::SchemaMismatch("SVR requires numeric features".to_string())
            })?;
            cols[j].extend(column.iter().map(|&v| if v.is_nan() { 0.0 } else { v }));
        }
        for i in 0..n {
            ys.push(data.target_of(i)?);
        }
        self.x_mean = cols.iter().map(|c| mean(c)).collect();
        self.x_std = cols
            .iter()
            .map(|c| {
                let s = std_dev(c);
                if s > 1e-12 {
                    s
                } else {
                    1.0
                }
            })
            .collect();
        self.y_mean = mean(&ys);
        let ys_std = std_dev(&ys);
        self.y_std = if ys_std > 1e-12 { ys_std } else { 1.0 };

        let xs: Vec<Vec<f64>> = (0..n)
            .map(|i| {
                (0..d).map(|j| (cols[j][i] - self.x_mean[j]) / self.x_std[j]).collect::<Vec<f64>>()
            })
            .collect();
        let y: Vec<f64> = ys.iter().map(|v| (v - self.y_mean) / self.y_std).collect();

        // Precompute the kernel diagonal and keep a function for rows.
        // For moderate n (the forecasting experiments use ≤ a few hundred
        // training rows) the full Gram matrix is affordable and fastest.
        let gram: Vec<Vec<f64>> = (0..n)
            .map(|i| (0..n).map(|j| self.kernel.eval(&xs[i], &xs[j]) + 1.0).collect())
            .collect();

        let mut beta = vec![0.0f64; n];
        // f_i = current prediction for sample i.
        let mut f = vec![0.0f64; n];
        for pass in 0..self.max_passes {
            let mut max_delta: f64 = 0.0;
            for i in 0..n {
                let kii = gram[i][i];
                if kii <= 0.0 {
                    continue;
                }
                // Residual without i's own contribution.
                let r = y[i] - (f[i] - beta[i] * kii);
                // Soft-threshold by epsilon, clip to [-C, C].
                let unclipped = if r > self.epsilon {
                    (r - self.epsilon) / kii
                } else if r < -self.epsilon {
                    (r + self.epsilon) / kii
                } else {
                    0.0
                };
                let new_beta = unclipped.clamp(-self.c, self.c);
                let delta = new_beta - beta[i];
                if delta.abs() > 1e-15 {
                    for (fj, g) in f.iter_mut().zip(&gram[i]) {
                        *fj += delta * g;
                    }
                    beta[i] = new_beta;
                    max_delta = max_delta.max(delta.abs());
                }
            }
            if max_delta < self.tol && pass > 0 {
                break;
            }
        }

        // Keep only support vectors.
        self.support = Vec::new();
        self.beta = Vec::new();
        for (i, &b) in beta.iter().enumerate() {
            if b.abs() > 1e-12 {
                self.support.push(xs[i].clone());
                self.beta.push(b);
            }
        }
        self.fitted = true;
        Ok(())
    }

    fn predict(&self, row: &[Value]) -> Result<f64> {
        if !self.fitted {
            return Err(Error::NotFitted("SvrRegressor"));
        }
        let x = self.standardize_row(row)?;
        let z: f64 = self
            .support
            .iter()
            .zip(&self.beta)
            .map(|(sv, &b)| b * (self.kernel.eval(sv, &x) + 1.0))
            .sum();
        Ok(z * self.y_std + self.y_mean)
    }

    fn name(&self) -> &'static str {
        "SMOreg"
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::data::{regression_row, DatasetBuilder};

    fn fit_on(f: impl Fn(f64) -> f64, n: usize, svr: &mut SvrRegressor) {
        let mut ds = DatasetBuilder::regression(1).unwrap();
        for i in 0..n {
            let x = i as f64 / n as f64 * 10.0;
            ds.push_row(regression_row(&[x], f(x))).unwrap();
        }
        svr.fit(&ds).unwrap();
    }

    #[test]
    fn linear_fits_a_line() {
        let mut svr = SvrRegressor::linear();
        fit_on(|x| 3.0 * x + 7.0, 50, &mut svr);
        for probe in [1.0, 5.0, 9.0] {
            let y = svr.predict(&regression_row(&[probe], 0.0)).unwrap();
            assert!((y - (3.0 * probe + 7.0)).abs() < 1.5, "probe {probe}: {y}");
        }
    }

    #[test]
    fn rbf_fits_a_sine() {
        let mut svr = SvrRegressor::new();
        svr.c = 10.0;
        svr.kernel = Kernel::Rbf { gamma: 2.0 };
        fit_on(|x| x.sin(), 80, &mut svr);
        let mut worst: f64 = 0.0;
        for i in 0..40 {
            let x = 0.5 + i as f64 / 40.0 * 9.0;
            let y = svr.predict(&regression_row(&[x], 0.0)).unwrap();
            worst = worst.max((y - x.sin()).abs());
        }
        assert!(worst < 0.25, "RBF SVR should track a sine: worst err {worst}");
    }

    #[test]
    fn epsilon_tube_controls_sparsity() {
        let mut tight = SvrRegressor::linear();
        tight.epsilon = 0.001;
        fit_on(|x| 2.0 * x, 60, &mut tight);
        let mut loose = SvrRegressor::linear();
        loose.epsilon = 0.5;
        fit_on(|x| 2.0 * x, 60, &mut loose);
        assert!(
            loose.support_vector_count() <= tight.support_vector_count(),
            "wider tube ⇒ fewer SVs: {} vs {}",
            loose.support_vector_count(),
            tight.support_vector_count()
        );
    }

    #[test]
    fn constant_target_predicts_constant() {
        let mut svr = SvrRegressor::new();
        fit_on(|_| 42.0, 20, &mut svr);
        let y = svr.predict(&regression_row(&[3.0], 0.0)).unwrap();
        assert!((y - 42.0).abs() < 1.0, "{y}");
    }

    #[test]
    fn multivariate_regression() {
        let mut ds = DatasetBuilder::regression(2).unwrap();
        for i in 0..100 {
            let a = (i % 10) as f64;
            let b = (i / 10) as f64;
            ds.push_row(regression_row(&[a, b], 2.0 * a - 3.0 * b + 1.0)).unwrap();
        }
        let mut svr = SvrRegressor::linear();
        svr.c = 10.0;
        svr.fit(&ds).unwrap();
        let y = svr.predict(&regression_row(&[4.0, 2.0], 0.0)).unwrap();
        assert!((y - 3.0).abs() < 1.0, "{y}");
    }

    #[test]
    fn errors() {
        let svr = SvrRegressor::new();
        assert!(matches!(
            svr.predict(&regression_row(&[1.0], 0.0)),
            Err(Error::NotFitted("SvrRegressor"))
        ));
        let ds = DatasetBuilder::regression(1).unwrap();
        assert!(SvrRegressor::new().fit(&ds).is_err());
        // Nominal features rejected.
        let mut nds = DatasetBuilder::nominal(1, 2, 2).unwrap();
        nds.push_row(crate::data::nominal_row(&[0], 0)).unwrap();
        assert!(SvrRegressor::new().fit(&nds).is_err());
    }

    #[test]
    fn wrong_arity_at_predict_rejected() {
        let mut svr = SvrRegressor::linear();
        fit_on(|x| x, 20, &mut svr);
        assert!(svr.predict(&regression_row(&[1.0, 2.0, 3.0], 0.0)).is_err());
    }
}
