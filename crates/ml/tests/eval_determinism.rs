//! Parallel evaluation must be a pure throughput change: for any worker
//! count, `cross_validate_repeated_parallel` has to reproduce the serial
//! `cross_validate_repeated` byte for byte — same fold assignments, same
//! pooled confusion matrix, same F-measure bits.

use sms_ml::classifier::Classifier;
use sms_ml::data::{Attribute, Instances, Value};
use sms_ml::eval::{cross_validate_repeated, cross_validate_repeated_parallel, mae, CvResult};
use sms_ml::forest::RandomForest;
use sms_ml::naive_bayes::NaiveBayes;
use sms_ml::tree::{SplitSearch, C45};

/// Deterministic mixed nominal/numeric dataset with some missing values,
/// imbalanced over 3 classes (so stratification and weighted F both matter).
fn mixed_dataset(n: usize) -> Instances {
    let attrs = vec![
        Attribute::numeric("kwh"),
        Attribute::nominal("sym", vec!["a".into(), "b".into(), "c".into(), "d".into()]),
        Attribute::numeric("peak"),
        Attribute::nominal("house", vec!["h0".into(), "h1".into(), "h2".into()]),
    ];
    let mut inst = Instances::new(attrs, 3).unwrap();
    let mut state = 0x2545_F491_4F6C_DD1Du64;
    for i in 0..n {
        // xorshift64* keeps the fixture independent of any RNG crate.
        state ^= state >> 12;
        state ^= state << 25;
        state ^= state >> 27;
        let r = state.wrapping_mul(0x2545_F491_4F6C_DD1D);
        let class = if i % 7 == 0 { 2 } else { (i % 2) as u32 };
        let kwh = if i % 11 == 3 {
            Value::Missing
        } else {
            Value::Numeric((r & 0xFFFF) as f64 / 997.0 + class as f64)
        };
        let sym = if i % 13 == 5 { Value::Missing } else { Value::Nominal(((r >> 16) % 4) as u32) };
        let peak = Value::Numeric(((r >> 32) & 0xFFF) as f64 / 61.0);
        inst.push_row(vec![kwh, sym, peak, Value::Nominal(class)]).unwrap();
    }
    inst
}

/// MAE between the actual and predicted class-count marginals — a derived
/// regression-style metric whose bits can only match if the pooled
/// confusion matrices match exactly.
fn marginal_mae(cv: &CvResult) -> f64 {
    let counts = cv.confusion.counts();
    let actual: Vec<f64> = counts.iter().map(|row| row.iter().sum::<u64>() as f64).collect();
    let predicted: Vec<f64> =
        (0..counts.len()).map(|c| counts.iter().map(|row| row[c]).sum::<u64>() as f64).collect();
    mae(&actual, &predicted).unwrap()
}

fn assert_bit_identical<F>(factory: F, data: &Instances, k: usize, seed: u64, runs: usize)
where
    F: Fn() -> Box<dyn Classifier> + Sync,
{
    let serial = cross_validate_repeated(&factory, data, k, seed, runs).unwrap();
    for workers in [1usize, 2, 8] {
        let par = cross_validate_repeated_parallel(&factory, data, k, seed, runs, workers).unwrap();
        assert_eq!(par.confusion, serial.confusion, "confusion differs at workers={workers}");
        assert_eq!(par.folds, serial.folds, "fold count differs at workers={workers}");
        assert_eq!(
            par.weighted_f_measure().to_bits(),
            serial.weighted_f_measure().to_bits(),
            "F-measure bits differ at workers={workers}"
        );
        assert_eq!(
            par.confusion.accuracy().to_bits(),
            serial.confusion.accuracy().to_bits(),
            "accuracy bits differ at workers={workers}"
        );
        assert_eq!(
            marginal_mae(&par).to_bits(),
            marginal_mae(&serial).to_bits(),
            "MAE bits differ at workers={workers}"
        );
    }
}

#[test]
fn naive_bayes_parallel_cv_is_bit_identical() {
    let data = mixed_dataset(90);
    assert_bit_identical(|| Box::new(NaiveBayes::new()), &data, 5, 42, 3);
}

#[test]
fn j48_parallel_cv_is_bit_identical_for_both_split_searches() {
    let data = mixed_dataset(90);
    for search in [SplitSearch::Presorted, SplitSearch::PerNodeSort] {
        assert_bit_identical(
            || {
                let mut t = C45::new();
                t.split_search = search;
                Box::new(t)
            },
            &data,
            4,
            7,
            2,
        );
    }
}

#[test]
fn random_forest_parallel_cv_is_bit_identical() {
    let data = mixed_dataset(72);
    assert_bit_identical(|| Box::new(RandomForest::new(5, 11)), &data, 3, 11, 2);
}

#[test]
fn presorted_and_per_node_sort_agree_under_cv() {
    // The two split-search strategies must induce identical trees, so their
    // whole cross-validated evaluation must match bit for bit too.
    let data = mixed_dataset(90);
    let run = |search: SplitSearch| {
        cross_validate_repeated_parallel(
            || {
                let mut t = C45::new();
                t.split_search = search;
                Box::new(t) as Box<dyn Classifier>
            },
            &data,
            4,
            19,
            2,
            2,
        )
        .unwrap()
    };
    let fast = run(SplitSearch::Presorted);
    let slow = run(SplitSearch::PerNodeSort);
    assert_eq!(fast.confusion, slow.confusion);
    assert_eq!(fast.weighted_f_measure().to_bits(), slow.weighted_f_measure().to_bits());
}
