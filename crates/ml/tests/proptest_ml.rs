//! Property-based tests for the ML substrate: every classifier must produce
//! valid, deterministic probability distributions on arbitrary (well-formed)
//! datasets, evaluation metrics must respect their algebraic bounds, and
//! ARFF must round-trip arbitrary schemas.

use proptest::prelude::*;
use sms_ml::arff::{from_arff, to_arff};
use sms_ml::classifier::Classifier;
use sms_ml::data::{nominal_row, numeric_row, DatasetBuilder, Instances, Value};
use sms_ml::eval::ConfusionMatrix;
use sms_ml::forest::RandomForest;
use sms_ml::knn::Knn;
use sms_ml::logistic::Logistic;
use sms_ml::markov::NgramPredictor;
use sms_ml::naive_bayes::NaiveBayes;
use sms_ml::tree::{RandomTree, C45};
use sms_ml::zero_r::ZeroR;

/// Arbitrary small nominal dataset: rows of (f0, f1, class) with at least
/// one row per class index used.
fn nominal_dataset_strategy() -> impl Strategy<Value = Instances> {
    prop::collection::vec((0u32..4, 0u32..4, 0u32..3), 6..50).prop_map(|rows| {
        let mut ds = DatasetBuilder::nominal(2, 4, 3).unwrap();
        for &(a, b, c) in &rows {
            ds.push_row(nominal_row(&[a, b], c)).unwrap();
        }
        ds
    })
}

fn classifiers() -> Vec<Box<dyn Classifier>> {
    vec![
        Box::new(NaiveBayes::new()),
        Box::new(C45::new()),
        Box::new(RandomTree::new(7)),
        Box::new(RandomForest::new(8, 7)),
        Box::new(Logistic::new()),
        Box::new(Knn::new(3)),
        Box::new(ZeroR::new()),
        Box::new(NgramPredictor::new(2)),
    ]
}

proptest! {
    #![proptest_config(ProptestConfig::with_cases(32))]

    #[test]
    fn all_classifiers_emit_valid_distributions(ds in nominal_dataset_strategy()) {
        for mut model in classifiers() {
            model.fit(&ds).unwrap();
            for i in 0..ds.len().min(8) {
                let p = model.predict_proba(&ds.row(i)).unwrap();
                prop_assert_eq!(p.len(), 3, "{}", model.name());
                let sum: f64 = p.iter().sum();
                prop_assert!((sum - 1.0).abs() < 1e-6, "{}: {p:?}", model.name());
                prop_assert!(
                    p.iter().all(|&x| (0.0..=1.0 + 1e-9).contains(&x)),
                    "{}: {p:?}",
                    model.name()
                );
                let pred = model.predict(&ds.row(i)).unwrap();
                prop_assert!(pred < 3);
            }
        }
    }

    #[test]
    fn fitting_twice_is_deterministic(ds in nominal_dataset_strategy()) {
        for maker in [
            || Box::new(C45::new()) as Box<dyn Classifier>,
            || Box::new(RandomForest::new(6, 3)) as Box<dyn Classifier>,
            || Box::new(NaiveBayes::new()) as Box<dyn Classifier>,
        ] {
            let mut a = maker();
            let mut b = maker();
            a.fit(&ds).unwrap();
            b.fit(&ds).unwrap();
            for i in 0..ds.len().min(10) {
                prop_assert_eq!(
                    a.predict_proba(&ds.row(i)).unwrap(),
                    b.predict_proba(&ds.row(i)).unwrap(),
                    "{} not deterministic",
                    a.name()
                );
            }
        }
    }

    #[test]
    fn classifiers_tolerate_unseen_and_missing_values(ds in nominal_dataset_strategy()) {
        let probes: Vec<Vec<Value>> = vec![
            vec![Value::Missing, Value::Missing, Value::Missing],
            vec![Value::Nominal(3), Value::Nominal(3), Value::Missing],
            nominal_row(&[0, 3], 0),
        ];
        for mut model in classifiers() {
            model.fit(&ds).unwrap();
            for probe in &probes {
                let p = model.predict_proba(probe).unwrap();
                prop_assert!((p.iter().sum::<f64>() - 1.0).abs() < 1e-6, "{}", model.name());
            }
        }
    }

    #[test]
    fn confusion_metrics_respect_bounds(
        entries in prop::collection::vec((0usize..4, 0usize..4), 1..100)
    ) {
        let mut m = ConfusionMatrix::new(4).unwrap();
        for &(a, p) in &entries {
            m.record(a, p).unwrap();
        }
        prop_assert!((0.0..=1.0).contains(&m.accuracy()));
        prop_assert!((0.0..=1.0).contains(&m.weighted_f_measure()));
        prop_assert!((-1.0..=1.0).contains(&m.kappa()));
        for c in 0..4 {
            prop_assert!((0.0..=1.0).contains(&m.precision(c)));
            prop_assert!((0.0..=1.0).contains(&m.recall(c)));
            prop_assert!((0.0..=1.0).contains(&m.f_measure(c)));
        }
        prop_assert_eq!(m.total(), entries.len() as u64);
        // F-measure never exceeds the larger of precision and recall.
        for c in 0..4 {
            let (p, r, f) = (m.precision(c), m.recall(c), m.f_measure(c));
            prop_assert!(f <= p.max(r) + 1e-12);
        }
    }

    #[test]
    fn arff_roundtrips_arbitrary_mixed_rows(
        rows in prop::collection::vec((0u32..3, -1000.0f64..1000.0, 0u32..2, prop::bool::ANY), 1..40)
    ) {
        let attrs = vec![
            sms_ml::Attribute::nominal_indexed("sym", 3),
            sms_ml::Attribute::numeric("watts"),
            sms_ml::Attribute::nominal_indexed("house", 2),
        ];
        let mut ds = Instances::new(attrs, 2).unwrap();
        for &(s, w, h, missing) in &rows {
            let wv = if missing { Value::Missing } else { Value::Numeric(w) };
            ds.push_row(vec![Value::Nominal(s), wv, Value::Nominal(h)]).unwrap();
        }
        let text = to_arff(&ds, "prop").unwrap();
        let back = from_arff(&text).unwrap();
        prop_assert_eq!(back, ds);
    }

    #[test]
    fn knn_numeric_scaling_invariance(
        rows in prop::collection::vec((0.0f64..10.0, 0u32..2), 8..40),
        scale in 1.0f64..1000.0,
    ) {
        // Range normalization makes k-NN invariant to positive rescaling of
        // a numeric attribute.
        let mut a = DatasetBuilder::numeric(1, 2).unwrap();
        let mut b = DatasetBuilder::numeric(1, 2).unwrap();
        for &(x, c) in &rows {
            a.push_row(numeric_row(&[x], c)).unwrap();
            b.push_row(numeric_row(&[x * scale], c)).unwrap();
        }
        let mut ka = Knn::new(3);
        let mut kb = Knn::new(3);
        ka.fit(&a).unwrap();
        kb.fit(&b).unwrap();
        for &(x, _) in rows.iter().take(10) {
            prop_assert_eq!(
                ka.predict(&numeric_row(&[x], 0)).unwrap(),
                kb.predict(&numeric_row(&[x * scale], 0)).unwrap()
            );
        }
    }
}
