//! End-to-end tests of the `repro` command-line interface.

use std::process::Command;

fn repro(args: &[&str]) -> std::process::Output {
    Command::new(env!("CARGO_BIN_EXE_repro")).args(args).output().expect("repro binary runs")
}

#[test]
fn no_arguments_prints_usage_and_fails() {
    let out = repro(&[]);
    assert!(!out.status.success());
    assert_eq!(out.status.code(), Some(2));
    let err = String::from_utf8_lossy(&out.stderr);
    assert!(err.contains("usage"), "{err}");
    assert!(err.contains("table1"), "{err}");
}

#[test]
fn unknown_experiment_fails() {
    let out = repro(&["fig99"]);
    assert_eq!(out.status.code(), Some(2));
}

#[test]
fn bad_scale_fails() {
    let out = repro(&["fig1", "--scale", "enormous"]);
    assert_eq!(out.status.code(), Some(2));
}

#[test]
fn fig1_runs_without_data_generation() {
    let out = repro(&["fig1"]);
    assert!(out.status.success(), "{}", String::from_utf8_lossy(&out.stderr));
    let stdout = String::from_utf8_lossy(&out.stdout);
    assert!(stdout.contains("resolution 3 bit"));
    assert!(stdout.contains("111"));
}

#[test]
fn fig3_is_deterministic_across_runs() {
    let a = repro(&["fig3"]);
    let b = repro(&["fig3"]);
    assert!(a.status.success() && b.status.success());
    assert_eq!(a.stdout, b.stdout);
}

#[test]
fn compression_respects_seed_flag() {
    // Seeds only affect data-dependent outputs; the flag must parse.
    let out = repro(&["compression", "--scale", "quick", "--seed", "7"]);
    assert!(out.status.success(), "{}", String::from_utf8_lossy(&out.stderr));
    let stdout = String::from_utf8_lossy(&out.stdout);
    assert!(stdout.contains("15m × 16 sym"));
}

#[test]
fn seed_changes_generated_results() {
    let a = repro(&["fig2", "--scale", "quick", "--seed", "1"]);
    let b = repro(&["fig2", "--scale", "quick", "--seed", "2"]);
    assert!(a.status.success() && b.status.success());
    assert_ne!(a.stdout, b.stdout, "different seeds, different histograms");
    let c = repro(&["fig2", "--scale", "quick", "--seed", "1"]);
    assert_eq!(a.stdout, c.stdout, "same seed, identical output");
}
