//! The classification (customer-segmentation) experiment behind the paper's
//! Figs. 5–7 and Table 1: classify day-vectors by house, across the full
//! grid of separator methods × aggregation windows × alphabet sizes, under
//! per-house or global lookup tables, against raw-value baselines.

use crate::prep::{
    raw_day_vectors, raw_fullrate_day_vectors, symbolic_day_vectors, TableCache, PAPER_MIN_COVERAGE,
};
use crate::scale::Scale;
use meterdata::dataset::MeterDataset;
use sms_core::engine::EvalStats;
use sms_core::error::{Error, Result};
use sms_core::pool::{run_indexed, PoolConfig};
use sms_core::separators::SeparatorMethod;
use sms_core::vertical::windows::{FIFTEEN_MINUTES, ONE_HOUR};
use sms_ml::classifier::Classifier;
use sms_ml::eval::{cross_validate_repeated_parallel, CvResult};
use sms_ml::forest::RandomForest;
use sms_ml::knn::Knn;
use sms_ml::logistic::Logistic;
use sms_ml::naive_bayes::NaiveBayes;
use sms_ml::tree::C45;
use sms_ml::zero_r::ZeroR;
use std::collections::BTreeMap;

/// Repeated-CV runs per grid cell. Weka's evaluation protocol (which the
/// paper follows) averages several runs of stratified k-fold CV; one run's
/// fold assignment estimates F-measure with ~±0.05 noise at these dataset
/// sizes, which is larger than several of the effects the shape tests assert.
pub(crate) const CV_RUNS: usize = 3;

/// One symbolic encoding configuration of the paper's grid.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub struct EncodingSpec {
    /// Separator-learning method.
    pub method: SeparatorMethod,
    /// Vertical aggregation window (900 or 3600 in the paper).
    pub window_secs: i64,
    /// Symbol resolution in bits (1–4 in the paper: 2–16 symbols).
    pub bits: u8,
}

impl EncodingSpec {
    /// The paper's full 24-cell grid, ordered as in Table 1:
    /// method (distinctmedian, median, uniform) × window (1h, 15m) × k (2–16).
    pub fn paper_grid() -> Vec<EncodingSpec> {
        let mut out = Vec::with_capacity(24);
        for method in SeparatorMethod::ALL {
            for window_secs in [ONE_HOUR, FIFTEEN_MINUTES] {
                for bits in 1..=4u8 {
                    out.push(EncodingSpec { method, window_secs, bits });
                }
            }
        }
        out
    }

    /// Paper-style label, e.g. `median 1h 16s`.
    pub fn label(&self) -> String {
        let w = if self.window_secs == ONE_HOUR { "1h" } else { "15m" };
        format!("{} {} {}s", self.method, w, 1u32 << self.bits)
    }
}

/// Whether tables are learned per house or pooled over all houses
/// (the `+` variants in the paper).
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum TableMode {
    /// One table per house from its own first two days (Figs. 5–6).
    PerHouse,
    /// One table from all houses' first two days (Fig. 7 / `+` columns).
    Global,
}

/// One measured grid cell: the two axes of Figs. 5–7.
#[derive(Debug, Clone, Copy, PartialEq)]
pub struct Cell {
    /// Weighted F-measure over 10-fold CV.
    pub f_measure: f64,
    /// Processing time (train + test over all folds), seconds.
    pub seconds: f64,
    /// Training share of `seconds`.
    pub train_seconds: f64,
    /// Prediction share of `seconds`.
    pub test_seconds: f64,
    /// CV folds executed (k × runs).
    pub folds: usize,
    /// Number of day-vector instances evaluated.
    pub instances: usize,
    /// Test-partition sizes of every executed fold (deterministic).
    pub fold_rows: sms_core::telemetry::Log2Histogram,
}

pub(crate) fn cell_from_cv(cv: &CvResult, instances: usize) -> Cell {
    Cell {
        f_measure: cv.weighted_f_measure(),
        seconds: cv.processing_time().as_secs_f64(),
        train_seconds: cv.train_time.as_secs_f64(),
        test_seconds: cv.test_time.as_secs_f64(),
        folds: cv.folds,
        instances,
        fold_rows: cv.fold_test_rows,
    }
}

/// The classifiers of the paper's Table 1 (plus extras).
#[derive(Debug, Clone, Copy, PartialEq, Eq, Hash)]
pub enum ClassifierKind {
    /// Weka `NaiveBayes`.
    NaiveBayes,
    /// Weka `RandomForest`.
    RandomForest,
    /// Weka `J48`.
    J48,
    /// Weka `Logistic`.
    Logistic,
    /// Extra baseline: k-NN (Weka `IBk`).
    Knn,
    /// Extra baseline: majority class.
    ZeroR,
}

impl ClassifierKind {
    /// Paper's four Table 1 classifiers, in column order.
    pub const TABLE1: [ClassifierKind; 4] = [
        ClassifierKind::RandomForest,
        ClassifierKind::J48,
        ClassifierKind::NaiveBayes,
        ClassifierKind::Logistic,
    ];

    /// Display name.
    pub fn name(self) -> &'static str {
        match self {
            ClassifierKind::NaiveBayes => "Naive Bayes",
            ClassifierKind::RandomForest => "Random Forest",
            ClassifierKind::J48 => "J48",
            ClassifierKind::Logistic => "Logistic",
            ClassifierKind::Knn => "IBk",
            ClassifierKind::ZeroR => "ZeroR",
        }
    }

    /// Builds a fresh instance configured for `scale`.
    pub fn build(self, scale: Scale) -> Box<dyn Classifier> {
        match self {
            ClassifierKind::NaiveBayes => Box::new(NaiveBayes::new()),
            ClassifierKind::RandomForest => {
                Box::new(RandomForest::new(scale.forest_trees, scale.seed))
            }
            ClassifierKind::J48 => Box::new(C45::new()),
            ClassifierKind::Logistic => {
                let mut l = Logistic::new();
                // Full-rate raw vectors are huge; cap optimizer effort.
                l.max_iter = 100;
                Box::new(l)
            }
            ClassifierKind::Knn => Box::new(Knn::new(3)),
            ClassifierKind::ZeroR => Box::new(ZeroR::new()),
        }
    }
}

fn lookup_tables(
    cache: &TableCache,
    spec: EncodingSpec,
    mode: TableMode,
) -> Result<BTreeMap<u32, sms_core::lookup::LookupTable>> {
    match mode {
        TableMode::PerHouse => cache.per_house_tables(spec.method, spec.bits),
        TableMode::Global => {
            let g = cache.global_table(spec.method, spec.bits)?;
            Ok(cache.house_ids().into_iter().map(|id| (id, g.clone())).collect())
        }
    }
}

/// Runs one symbolic grid cell: encode day-vectors, 10-fold CV, report
/// weighted F-measure and processing time. `workers` parallelizes the CV
/// folds (0 = all cores, 1 = serial); the F-measure is bit-identical at any
/// worker count.
pub fn run_symbolic(
    ds: &MeterDataset,
    scale: Scale,
    spec: EncodingSpec,
    mode: TableMode,
    kind: ClassifierKind,
    workers: usize,
) -> Result<Cell> {
    let cache = TableCache::new(ds, scale.training_prefix_secs())?;
    run_symbolic_cached(ds, scale, &cache, spec, mode, kind, workers)
}

/// [`run_symbolic`] against a prebuilt [`TableCache`], so grid runners sort
/// each house's training prefix once instead of once per cell.
pub fn run_symbolic_cached(
    ds: &MeterDataset,
    scale: Scale,
    cache: &TableCache,
    spec: EncodingSpec,
    mode: TableMode,
    kind: ClassifierKind,
    workers: usize,
) -> Result<Cell> {
    let tables = lookup_tables(cache, spec, mode)?;
    let inst = symbolic_day_vectors(ds, spec.window_secs, &tables, PAPER_MIN_COVERAGE)?;
    let cv = cross_validate_repeated_parallel(
        || kind.build(scale),
        &inst,
        scale.cv_folds,
        scale.seed,
        CV_RUNS,
        workers,
    )
    .map_err(|e| Error::InvalidParameter { name: "cv", reason: e.to_string() })?;
    Ok(cell_from_cv(&cv, inst.len()))
}

/// Runs a raw-value baseline: `window_secs = Some(w)` for aggregated raw
/// vectors, `None` for the full-rate "raw 1sec" configuration.
pub fn run_raw(
    ds: &MeterDataset,
    scale: Scale,
    window_secs: Option<i64>,
    kind: ClassifierKind,
    workers: usize,
) -> Result<Cell> {
    let inst = match window_secs {
        Some(w) => raw_day_vectors(ds, w, PAPER_MIN_COVERAGE)?,
        None => raw_fullrate_day_vectors(ds, PAPER_MIN_COVERAGE)?,
    };
    let cv = cross_validate_repeated_parallel(
        || kind.build(scale),
        &inst,
        scale.cv_folds,
        scale.seed,
        CV_RUNS,
        workers,
    )
    .map_err(|e| Error::InvalidParameter { name: "cv", reason: e.to_string() })?;
    Ok(cell_from_cv(&cv, inst.len()))
}

/// Folds a slice of finished cells plus the pool's own counters into the
/// engine-stats evaluation block.
pub(crate) fn aggregate_eval(cells: &[Cell], workers: usize, max_queue_depth: usize) -> EvalStats {
    let mut fold_test_rows = sms_core::telemetry::Log2Histogram::new();
    for c in cells {
        fold_test_rows.merge(&c.fold_rows);
    }
    EvalStats {
        cells: cells.len() as u64,
        folds: cells.iter().map(|c| c.folds as u64).sum(),
        train_secs: cells.iter().map(|c| c.train_seconds).sum(),
        test_secs: cells.iter().map(|c| c.test_seconds).sum(),
        workers,
        max_queue_depth,
        fold_test_rows,
    }
}

/// A full figure run: every grid cell for one classifier + the two
/// aggregated raw baselines (the exact content of Fig. 5/6/7).
#[derive(Debug, Clone)]
pub struct FigureRun {
    /// Classifier evaluated.
    pub classifier: ClassifierKind,
    /// Table mode (per-house for Figs. 5–6, global for Fig. 7).
    pub mode: TableMode,
    /// `(spec, cell)` for the 24 symbolic configurations.
    pub cells: Vec<(EncodingSpec, Cell)>,
    /// Raw baselines: `(window_secs, cell)` for 1 h and 15 m.
    pub raw: Vec<(i64, Cell)>,
    /// Evaluation-engine counters for the run.
    pub eval: EvalStats,
}

impl FigureRun {
    /// Runs the figure. The 26 cells (24 grid configurations + 2 raw
    /// baselines) are independent, so they run on a cell-level worker pool
    /// (`workers`: 0 = all cores, 1 = serial); cross-validation inside each
    /// cell stays serial to avoid oversubscribing the pool. Results are
    /// merged in grid order and are bit-identical at any worker count.
    pub fn run(
        ds: &MeterDataset,
        scale: Scale,
        kind: ClassifierKind,
        mode: TableMode,
        workers: usize,
    ) -> Result<FigureRun> {
        let cache = TableCache::new(ds, scale.training_prefix_secs())?;
        let grid = EncodingSpec::paper_grid();
        let raw_windows = [ONE_HOUR, FIFTEEN_MINUTES];
        let n_jobs = grid.len() + raw_windows.len();
        let (results, pool_stats) = run_indexed(n_jobs, &PoolConfig::with_workers(workers), |i| {
            if i < grid.len() {
                run_symbolic_cached(ds, scale, &cache, grid[i], mode, kind, 1)
            } else {
                run_raw(ds, scale, Some(raw_windows[i - grid.len()]), kind, 1)
            }
        })?;
        // Index order keeps which error surfaces deterministic.
        let flat = results.into_iter().collect::<Result<Vec<Cell>>>()?;
        let eval = aggregate_eval(&flat, pool_stats.workers, pool_stats.max_queue_depth);
        let cells = grid.iter().copied().zip(flat.iter().copied()).collect();
        let raw = raw_windows.iter().copied().zip(flat[grid.len()..].iter().copied()).collect();
        Ok(FigureRun { classifier: kind, mode, cells, raw, eval })
    }

    /// Mean F-measure per method across the grid (the paper's "on average,
    /// median encoding performs better than distinctmedian, which is better
    /// than uniform").
    pub fn mean_f_by_method(&self) -> BTreeMap<&'static str, f64> {
        let mut sums: BTreeMap<&'static str, (f64, usize)> = BTreeMap::new();
        for (spec, cell) in &self.cells {
            let e = sums.entry(spec.method.name()).or_insert((0.0, 0));
            e.0 += cell.f_measure;
            e.1 += 1;
        }
        sums.into_iter().map(|(k, (s, n))| (k, s / n as f64)).collect()
    }

    /// Best symbolic F-measure in the grid.
    pub fn best_symbolic(&self) -> Option<(&EncodingSpec, &Cell)> {
        self.cells
            .iter()
            .max_by(|a, b| a.1.f_measure.partial_cmp(&b.1.f_measure).expect("finite"))
            .map(|(s, c)| (s, c))
    }

    /// Best raw F-measure among the aggregated baselines.
    pub fn best_raw_f(&self) -> f64 {
        self.raw.iter().map(|(_, c)| c.f_measure).fold(0.0, f64::max)
    }

    /// Renders the figure as an aligned text table.
    pub fn render(&self) -> String {
        let mode = match self.mode {
            TableMode::PerHouse => "per-house tables",
            TableMode::Global => "single global table (+)",
        };
        let mut s = format!(
            "{} over symbolic and raw data ({mode})\n{:<24} {:>10} {:>12} {:>6}\n",
            self.classifier.name(),
            "encoding",
            "F-measure",
            "time [s]",
            "n"
        );
        for (spec, cell) in &self.cells {
            s += &format!(
                "{:<24} {:>10.3} {:>12.4} {:>6}\n",
                spec.label(),
                cell.f_measure,
                cell.seconds,
                cell.instances
            );
        }
        for (w, cell) in &self.raw {
            let label = if *w == ONE_HOUR { "raw 1h" } else { "raw 15m" };
            s += &format!(
                "{:<24} {:>10.3} {:>12.4} {:>6}\n",
                label, cell.f_measure, cell.seconds, cell.instances
            );
        }
        s
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::prep::dataset;

    fn tiny_scale() -> Scale {
        Scale {
            days: 6,
            interval_secs: 600,
            forest_trees: 8,
            cv_folds: 3,
            seed: 3,
            ..Scale::quick()
        }
    }

    #[test]
    fn paper_grid_has_24_cells_in_table1_order() {
        let grid = EncodingSpec::paper_grid();
        assert_eq!(grid.len(), 24);
        assert_eq!(grid[0].label(), "distinctmedian 1h 2s");
        assert_eq!(grid[7].label(), "distinctmedian 15m 16s");
        assert_eq!(grid[8].label(), "median 1h 2s");
        assert_eq!(grid[23].label(), "uniform 15m 16s");
    }

    #[test]
    fn symbolic_cell_runs_and_beats_chance() {
        let scale = tiny_scale();
        let ds = dataset(scale).unwrap();
        let spec = EncodingSpec { method: SeparatorMethod::Median, window_secs: ONE_HOUR, bits: 4 };
        let cell =
            run_symbolic(&ds, scale, spec, TableMode::PerHouse, ClassifierKind::NaiveBayes, 1)
                .unwrap();
        assert!(cell.instances > 10);
        assert!(cell.f_measure > 0.4, "median 16s should classify well: {}", cell.f_measure);
        assert!(cell.seconds > 0.0);
        assert_eq!(cell.folds, scale.cv_folds * CV_RUNS);
        // Parallel cells reproduce the serial F-measure bit for bit.
        let par =
            run_symbolic(&ds, scale, spec, TableMode::PerHouse, ClassifierKind::NaiveBayes, 4)
                .unwrap();
        assert_eq!(par.f_measure.to_bits(), cell.f_measure.to_bits());
    }

    #[test]
    fn raw_cell_runs() {
        let scale = tiny_scale();
        let ds = dataset(scale).unwrap();
        let cell = run_raw(&ds, scale, Some(ONE_HOUR), ClassifierKind::RandomForest, 1).unwrap();
        assert!(cell.f_measure > 0.3, "{}", cell.f_measure);
    }

    #[test]
    fn global_mode_uses_one_table() {
        let scale = tiny_scale();
        let ds = dataset(scale).unwrap();
        let spec = EncodingSpec { method: SeparatorMethod::Median, window_secs: ONE_HOUR, bits: 3 };
        let cache = TableCache::new(&ds, scale.training_prefix_secs()).unwrap();
        let tables = lookup_tables(&cache, spec, TableMode::Global).unwrap();
        let first = tables.values().next().unwrap();
        assert!(tables.values().all(|t| t == first), "all houses share the global table");
        let per_house = lookup_tables(&cache, spec, TableMode::PerHouse).unwrap();
        assert!(per_house.values().any(|t| t != first), "per-house tables differ");
    }

    #[test]
    fn zero_r_is_a_floor() {
        let scale = tiny_scale();
        let ds = dataset(scale).unwrap();
        let spec = EncodingSpec { method: SeparatorMethod::Median, window_secs: ONE_HOUR, bits: 4 };
        let zr =
            run_symbolic(&ds, scale, spec, TableMode::PerHouse, ClassifierKind::ZeroR, 1).unwrap();
        let nb = run_symbolic(&ds, scale, spec, TableMode::PerHouse, ClassifierKind::NaiveBayes, 1)
            .unwrap();
        assert!(nb.f_measure > zr.f_measure, "NB {} vs ZeroR {}", nb.f_measure, zr.f_measure);
    }
}
