//! # sms-bench — experiment harness
//!
//! One module per table/figure of the paper, plus the §4 extension
//! experiments. The `repro` binary (`cargo run -p sms-bench --bin repro`)
//! regenerates any of them; Criterion benches live under `benches/`.
//!
//! | Paper artifact | Module | `repro` subcommand |
//! |---|---|---|
//! | Fig. 1 symbol construction | [`figures::fig1_symbol_tree`] | `fig1` |
//! | Fig. 2 power distribution | [`figures::fig2_distribution`] | `fig2` |
//! | Fig. 3 normalization | [`figures::fig3_normalization`] | `fig3` |
//! | Fig. 4 statistics convergence | [`figures::fig4_statistics`] | `fig4` |
//! | §2.3 compression ratio | [`figures::compression_table`] | `compression` |
//! | Fig. 5 Naive Bayes grid | [`classification::FigureRun`] | `fig5` |
//! | Fig. 6 Random Forest grid | [`classification::FigureRun`] | `fig6` |
//! | Fig. 7 global-table grid | [`classification::FigureRun`] | `fig7` |
//! | Table 1 full grid | [`table1::Table1`] | `table1` |
//! | Fig. 8 NB forecasting MAE | [`forecasting::ForecastFigure`] | `fig8` |
//! | Fig. 9 RF forecasting MAE | [`forecasting::ForecastFigure`] | `fig9` |
//! | §4 drift adaptation | [`drift::run_drift`] | `drift` |
//! | §1/§4 privacy measures | [`privacy_exp::run_privacy`] | `privacy` |
//! | §3.1 motivation: clustering | [`clustering::run_clustering`] | `clustering` |
//! | §4 utility-driven segmentation | [`ablation::run_separator_ablation`] | `ablation` |
//! | Weka interchange (ARFF) | [`export::export_arff`] | `arff <dir>` |
//! | Fig. 3 made executable: SAX comparison | [`sax_exp::run_sax_comparison`] | `sax` |
//! | §2.3 hostile-transport ingest | [`ingest_exp::run_ingest`] | `ingest [--faults]` |
//! | §2.3 fleet gateway over loopback TCP | [`gateway_exp::run_gateway`] | `gateway [--meters N] [--faults]` |
//! | Dirty-data quarantine + panic isolation | [`quality_exp::run_quality`] | `quality [--faults]` |
//! | Encode hot-path throughput (`BENCH_encode.json`) | [`encode_bench::run_encode_bench`] | `encode-bench` |
//! | Million-house sharded fleet + segment store (`BENCH_scale.json`) | [`scale_exp::run_scale`] | `scale [--houses N]` |
//! | Crash-point sweep over the durable store (`BENCH_crash.json`) | [`crash_exp::run_crash`] | `crash [--houses N]` |

#![warn(missing_docs)]
#![warn(rust_2018_idioms)]

pub mod ablation;
pub mod classification;
pub mod clustering;
pub mod crash_exp;
pub mod drift;
pub mod encode_bench;
pub mod export;
pub mod figures;
pub mod forecasting;
pub mod gateway_exp;
pub mod ingest_exp;
pub mod prep;
pub mod privacy_exp;
pub mod quality_exp;
pub mod sax_exp;
pub mod scale;
pub mod scale_exp;
pub mod table1;

pub use scale::Scale;
