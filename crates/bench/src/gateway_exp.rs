//! Heavy-traffic load generator for the network-facing fleet gateway:
//! the `repro gateway --meters N` experiment.
//!
//! The `ingest` experiment ([`crate::ingest_exp`]) proved the framing layer
//! against a hostile byte stream *in process*; this one drives the real
//! [`Gateway`] over loopback TCP. A fleet of `N` synthetic meters — one
//! shared learned lookup table, per-meter seeded window streams — connects
//! through a small pool of client threads, authenticates with the token
//! handshake, and streams length-prefixed frames split at random mid-frame
//! boundaries by the deterministic [`FaultInjector`]. With `--faults` the
//! mix turns adversarial: some meters present a bad token (NAK expected),
//! some ship truncated streams the decoder must resync across, and some
//! dribble their bytes as slow writers.
//!
//! Every connection reads the gateway's cumulative 8-byte acks as it
//! writes, so the run reports end-to-end ack latency percentiles alongside
//! frames/sec. After shutdown the same post-fault byte streams are replayed
//! through an in-process [`FleetIngest`] and the two outputs are compared:
//! the run *fails* unless the gateway's decoded fleet is byte-identical to
//! the in-process path (the paper's server-side representation must not
//! depend on which transport delivered the symbols).

use std::collections::BTreeMap;
use std::io::{ErrorKind, Read, Write};
use std::net::{SocketAddr, TcpStream};
use std::time::{Duration, Instant};

use crate::ingest_exp::{Fault, FaultInjector};
use crate::scale::Scale;
use meterdata::generator::fleet_series;
use rand::rngs::StdRng;
use rand::{Rng, SeedableRng};
use sms_core::encoder::{EncodedWindow, SensorMessage};
use sms_core::engine::EngineStats;
use sms_core::error::{Error, Result};
use sms_core::gateway::{encode_handshake, Gateway, GatewayConfig, HANDSHAKE_ACK, HANDSHAKE_NAK};
use sms_core::ingest::{FleetIngest, IngestConfig};
use sms_core::pipeline::CodecBuilder;
use sms_core::separators::SeparatorMethod;
use sms_core::symbol::Symbol;
use sms_core::wire::encode_message;

/// Upper bound on concurrent client threads; the container the experiments
/// run in is small, and the gateway's own workers need cores too.
const MAX_CLIENTS: usize = 4;

/// Largest delivery chunk a client writes in one syscall — small enough
/// that frames split mid-header and mid-payload regularly.
const MAX_CHUNK: usize = 211;

/// Pause between chunks for meters drawn as slow writers.
const SLOW_WRITER_PAUSE: Duration = Duration::from_millis(2);

/// The authentication token the experiment's gateway and clients share.
const EXP_TOKEN: &[u8] = b"smg-load-exp";

/// Tail-latency summary of end-to-end frame acknowledgement, in
/// milliseconds (send completion of a frame's last byte to arrival of the
/// first cumulative ack covering it).
#[derive(Debug, Clone, Copy, Default)]
pub struct LatencySummary {
    /// Median ack latency.
    pub p50_ms: f64,
    /// 95th percentile.
    pub p95_ms: f64,
    /// 99th percentile.
    pub p99_ms: f64,
    /// Worst observed.
    pub max_ms: f64,
    /// Frames the percentiles are computed over (clean connections only;
    /// truncated streams lose the frame-to-ack mapping).
    pub samples: usize,
}

impl LatencySummary {
    fn from_sorted(lat_ms: &[f64]) -> Self {
        let pick = |p: f64| -> f64 {
            if lat_ms.is_empty() {
                return 0.0;
            }
            let idx = ((lat_ms.len() as f64 - 1.0) * p).round() as usize;
            lat_ms[idx.min(lat_ms.len() - 1)]
        };
        LatencySummary {
            p50_ms: pick(0.50),
            p95_ms: pick(0.95),
            p99_ms: pick(0.99),
            max_ms: lat_ms.last().copied().unwrap_or(0.0),
            samples: lat_ms.len(),
        }
    }
}

/// Outcome of one `gateway` experiment run.
#[derive(Debug)]
pub struct GatewayExpReport {
    /// Meters the fleet simulated.
    pub meters: usize,
    /// Gateway session workers.
    pub workers: usize,
    /// Client threads that drove the load.
    pub clients: usize,
    /// Whether the adversarial connection mix was enabled.
    pub faults: bool,
    /// Frames written to sockets across every authenticated connection.
    pub frames_sent: u64,
    /// Frames the clients saw acknowledged (sum of final cumulative acks).
    pub frames_acked: u64,
    /// Bytes written to sockets (handshakes + frames).
    pub bytes_sent: u64,
    /// Connections that presented a bad token and were NAKed.
    pub auth_rejected: u64,
    /// Connections whose streams were truncated mid-frame by the injector.
    pub truncated_streams: u64,
    /// Connections that dribbled bytes with inter-chunk pauses.
    pub slow_writers: u64,
    /// Wall-clock of the connect-to-last-ack window.
    pub elapsed_secs: f64,
    /// Acknowledged frames per second of wall-clock.
    pub frames_per_sec: f64,
    /// End-to-end ack latency percentiles.
    pub latency: LatencySummary,
    /// Fraction of sent frames recovered on truncated streams (`1.0` when
    /// no streams were truncated).
    pub faulted_recovery: f64,
    /// Engine counters with the `gateway`, `ingest` and `pool` blocks set.
    pub stats: EngineStats,
}

/// One meter's generated traffic: the decoded messages it will produce and
/// the wire bytes that encode them.
struct MeterLoad {
    meter: u64,
    wire: Vec<u8>,
    /// Frames serialized into `wire` before any truncation.
    framed: u64,
    /// Exclusive end offset of each frame within `wire`; cleared when the
    /// stream is truncated (boundaries no longer meaningful).
    frame_ends: Vec<usize>,
    /// Bad-token connection: expect a NAK, send no frames.
    bad_token: bool,
    /// Stream was truncated by the injector after framing.
    truncated: bool,
    /// Dribble chunks with pauses.
    slow: bool,
}

/// What one finished connection observed, client-side.
struct ConnOutcome {
    meter: u64,
    /// Bytes actually written (post-fault wire), for in-process replay.
    sent_wire: Vec<u8>,
    frames_sent: u64,
    acked: u64,
    bytes_sent: u64,
    auth_rejected: bool,
    truncated: bool,
    /// Per-frame ack latencies (clean streams only).
    latencies_ms: Vec<f64>,
}

/// Builds the synthetic fleet: one lookup table learned from generated
/// meter data (the paper's training step), then per-meter window streams
/// with seeded symbol ranks.
fn build_fleet_load(scale: Scale, meters: usize, faults: bool) -> Result<Vec<MeterLoad>> {
    let history = fleet_series(scale.seed, 1, scale.days.clamp(1, 3), scale.interval_secs)?;
    let codec = CodecBuilder::new()
        .method(SeparatorMethod::Median)
        .alphabet_size(16)?
        .window_secs(3600)
        .train(&history[0])?;
    let table_frame = encode_message(&SensorMessage::Table(codec.table().clone()))?;
    let windows = (scale.days.clamp(1, 7) * 24) as usize;

    let mut loads = Vec::with_capacity(meters);
    for m in 0..meters {
        let meter = m as u64;
        let mut rng = StdRng::seed_from_u64(scale.seed ^ (0xA11C_E000 + meter));
        let bad_token = faults && m % 17 == 3;
        let truncated = faults && !bad_token && m % 13 == 5;
        let slow = faults && !bad_token && m % 11 == 7;

        let mut wire = table_frame.clone();
        let mut frame_ends = vec![wire.len()];
        for w in 0..windows {
            let msg = SensorMessage::Window(EncodedWindow {
                window_start: (w as i64) * 3600,
                symbol: Symbol::from_rank(rng.gen_range(0..16u16), 4)?,
                samples: (3600 / scale.interval_secs).max(1) as u32,
            });
            wire.extend(encode_message(&msg)?);
            frame_ends.push(wire.len());
        }
        let framed = frame_ends.len() as u64;
        if truncated {
            // One mid-stream truncation per ~2 kB: the decoder must resync
            // and recover every frame the cut did not destroy.
            let mut injector = FaultInjector::new(scale.seed ^ (0x7C0F_FEE0 + meter));
            for _ in 0..1 + wire.len() / 2048 {
                injector.apply(Fault::Truncate, &mut wire);
            }
            frame_ends.clear();
        }
        loads.push(MeterLoad { meter, wire, framed, frame_ends, bad_token, truncated, slow });
    }
    Ok(loads)
}

/// Reads whatever cumulative acks are available without blocking, invoking
/// `on_ack` for each complete 8-byte count. Returns `Ok(true)` on EOF.
fn drain_acks(
    conn: &mut TcpStream,
    partial: &mut Vec<u8>,
    on_ack: &mut impl FnMut(u64, Instant),
) -> std::io::Result<bool> {
    let mut buf = [0u8; 256];
    loop {
        match conn.read(&mut buf) {
            Ok(0) => return Ok(true),
            Ok(n) => {
                partial.extend_from_slice(&buf[..n]);
                let now = Instant::now();
                while partial.len() >= 8 {
                    let ack = u64::from_le_bytes(partial[..8].try_into().unwrap());
                    partial.drain(..8);
                    on_ack(ack, now);
                }
            }
            Err(e) if e.kind() == ErrorKind::WouldBlock => return Ok(false),
            Err(e) if e.kind() == ErrorKind::Interrupted => continue,
            Err(e) => return Err(e),
        }
    }
}

/// Drives one meter's connection end to end: handshake, chunked writes with
/// interleaved ack reads, half-close, then ack drain until server EOF.
fn drive_meter(addr: SocketAddr, load: &MeterLoad, seed: u64) -> Result<ConnOutcome> {
    let io_err = |what: &str, e: std::io::Error| Error::Engine(format!("client {what}: {e}"));
    let mut conn = TcpStream::connect(addr).map_err(|e| io_err("connect", e))?;
    conn.set_nodelay(true).ok();

    let token: &[u8] = if load.bad_token { b"not-the-token" } else { EXP_TOKEN };
    let handshake = encode_handshake(load.meter, token);
    conn.write_all(&handshake).map_err(|e| io_err("handshake write", e))?;
    let mut ack = [0u8; 1];
    conn.read_exact(&mut ack).map_err(|e| io_err("handshake read", e))?;
    if load.bad_token {
        if ack[0] != HANDSHAKE_NAK {
            return Err(Error::Engine(format!(
                "meter {}: bad token was not NAKed (got 0x{:02x})",
                load.meter, ack[0]
            )));
        }
        return Ok(ConnOutcome {
            meter: load.meter,
            sent_wire: Vec::new(),
            frames_sent: 0,
            acked: 0,
            bytes_sent: handshake.len() as u64,
            auth_rejected: true,
            truncated: false,
            latencies_ms: Vec::new(),
        });
    }
    if ack[0] != HANDSHAKE_ACK {
        return Err(Error::Engine(format!(
            "meter {}: handshake not ACKed (got 0x{:02x})",
            load.meter, ack[0]
        )));
    }

    conn.set_nonblocking(true).map_err(|e| io_err("set_nonblocking", e))?;
    let mut injector = FaultInjector::new(seed);
    let chunks = injector.chunk_lens(load.wire.len(), MAX_CHUNK);

    // Frame send-completion times, indexed by frame; cumulative ack `v`
    // acknowledges frames `0..v`, so latency of frame `k` is the arrival of
    // the first ack with `v > k` minus `sent_at[k]`.
    let mut sent_at: Vec<Instant> = Vec::with_capacity(load.frame_ends.len());
    let mut latencies_ms: Vec<f64> = Vec::new();
    let mut last_ack = 0u64;
    let mut partial = Vec::new();
    let record = |v: u64, at: Instant, last: &mut u64, sent: &[Instant], out: &mut Vec<f64>| {
        let hi = (v as usize).min(sent.len());
        for sent_at in sent.iter().take(hi).skip(*last as usize) {
            out.push(at.saturating_duration_since(*sent_at).as_secs_f64() * 1e3);
        }
        *last = (*last).max(v);
    };

    let mut offset = 0usize;
    let mut next_frame = 0usize;
    for len in chunks {
        let chunk = &load.wire[offset..offset + len];
        let mut written = 0usize;
        while written < chunk.len() {
            match conn.write(&chunk[written..]) {
                Ok(0) => {
                    return Err(Error::Engine(format!(
                        "meter {}: gateway hung up mid-stream",
                        load.meter
                    )))
                }
                Ok(n) => written += n,
                Err(e) if e.kind() == ErrorKind::WouldBlock => {
                    drain_acks(&mut conn, &mut partial, &mut |v, at| {
                        record(v, at, &mut last_ack, &sent_at, &mut latencies_ms)
                    })
                    .map_err(|e| io_err("ack read", e))?;
                    std::thread::sleep(Duration::from_micros(200));
                }
                Err(e) if e.kind() == ErrorKind::Interrupted => {}
                Err(e) => return Err(io_err("frame write", e)),
            }
        }
        offset += len;
        let now = Instant::now();
        while next_frame < load.frame_ends.len() && load.frame_ends[next_frame] <= offset {
            sent_at.push(now);
            next_frame += 1;
        }
        drain_acks(&mut conn, &mut partial, &mut |v, at| {
            record(v, at, &mut last_ack, &sent_at, &mut latencies_ms)
        })
        .map_err(|e| io_err("ack read", e))?;
        if load.slow {
            std::thread::sleep(SLOW_WRITER_PAUSE);
        }
    }
    conn.shutdown(std::net::Shutdown::Write).ok();

    // Server acks everything it decodes, then EOFs our read side.
    loop {
        let eof = drain_acks(&mut conn, &mut partial, &mut |v, at| {
            record(v, at, &mut last_ack, &sent_at, &mut latencies_ms)
        })
        .map_err(|e| io_err("ack drain", e))?;
        if eof {
            break;
        }
        std::thread::sleep(Duration::from_micros(200));
    }

    Ok(ConnOutcome {
        meter: load.meter,
        sent_wire: load.wire.clone(),
        frames_sent: load.framed,
        acked: last_ack,
        bytes_sent: (handshake.len() + load.wire.len()) as u64,
        auth_rejected: false,
        truncated: load.truncated,
        latencies_ms,
    })
}

/// Replays the post-fault byte streams through an in-process
/// [`FleetIngest`] and errors unless the gateway produced the identical
/// per-meter decoded output.
fn verify_byte_identity(
    outcomes: &[ConnOutcome],
    gateway_output: &BTreeMap<u64, Vec<SensorMessage>>,
) -> Result<()> {
    let mut fleet = FleetIngest::new(IngestConfig::default());
    let mut expected: BTreeMap<u64, Vec<SensorMessage>> = BTreeMap::new();
    for o in outcomes {
        if o.auth_rejected {
            continue;
        }
        for chunk in o.sent_wire.chunks(4096) {
            expected.entry(o.meter).or_default().extend(fleet.ingest(o.meter, chunk)?);
        }
        // Per-meter trailing partial frames stay buffered in both paths.
        expected.entry(o.meter).or_default();
    }
    // Meters whose whole stream decoded to nothing may be absent from the
    // gateway map; treat absent and empty as the same.
    for (meter, msgs) in &expected {
        let got = gateway_output.get(meter).map(Vec::as_slice).unwrap_or(&[]);
        if got != msgs.as_slice() {
            return Err(Error::Engine(format!(
                "gateway output for meter {meter} diverges from the in-process ingest path \
                 ({} vs {} messages)",
                got.len(),
                msgs.len()
            )));
        }
    }
    for meter in gateway_output.keys() {
        if !expected.contains_key(meter) {
            return Err(Error::Engine(format!(
                "gateway decoded meter {meter} that no client streamed"
            )));
        }
    }
    Ok(())
}

/// Runs the loopback gateway load experiment: `meters` synthetic meters
/// through `workers` session workers, with the adversarial mix when
/// `faults` is set. Errors if the gateway's decoded output is not
/// byte-identical to the in-process ingest path, or if any acknowledged
/// frame is missing from the final report.
pub fn run_gateway(
    scale: Scale,
    meters: usize,
    workers: usize,
    faults: bool,
) -> Result<GatewayExpReport> {
    if meters == 0 {
        return Err(Error::InvalidParameter {
            name: "meters",
            reason: "need at least one meter".into(),
        });
    }
    let loads = build_fleet_load(scale, meters, faults)?;
    let clients = meters.min(MAX_CLIENTS);

    let gw = Gateway::start(
        GatewayConfig::default().workers(workers).auth_token(EXP_TOKEN).http_metrics(false),
    )?;
    let addr = gw.local_addr();

    let t0 = Instant::now();
    let mut outcomes: Vec<ConnOutcome> = Vec::with_capacity(meters);
    let results: Vec<Result<Vec<ConnOutcome>>> = std::thread::scope(|s| {
        let handles: Vec<_> = (0..clients)
            .map(|tid| {
                let loads = &loads;
                s.spawn(move || -> Result<Vec<ConnOutcome>> {
                    let mut out = Vec::new();
                    for load in loads.iter().skip(tid).step_by(clients) {
                        out.push(drive_meter(addr, load, scale.seed ^ (0xD1A1_0000 + load.meter))?);
                    }
                    Ok(out)
                })
            })
            .collect();
        handles
            .into_iter()
            .map(|h| {
                h.join().unwrap_or_else(|_| Err(Error::Engine("client thread panicked".into())))
            })
            .collect()
    });
    for r in results {
        outcomes.extend(r?);
    }
    let elapsed_secs = t0.elapsed().as_secs_f64().max(f64::MIN_POSITIVE);

    let report = gw.shutdown();
    verify_byte_identity(&outcomes, &report.output)?;

    // Zero lost acknowledged frames: every cumulative ack a client received
    // must be covered by frames present in the final output.
    for o in &outcomes {
        let committed = report.output.get(&o.meter).map(|v| v.len() as u64).unwrap_or(0);
        if committed < o.acked {
            return Err(Error::Engine(format!(
                "meter {}: {} frames acknowledged but only {} in the final output",
                o.meter, o.acked, committed
            )));
        }
    }

    let frames_sent: u64 = outcomes.iter().map(|o| o.frames_sent).sum();
    let frames_acked: u64 = outcomes.iter().map(|o| o.acked).sum();
    let bytes_sent: u64 = outcomes.iter().map(|o| o.bytes_sent).sum();
    let auth_rejected = outcomes.iter().filter(|o| o.auth_rejected).count() as u64;
    let truncated_streams = outcomes.iter().filter(|o| o.truncated).count() as u64;
    let slow_writers = loads.iter().filter(|l| l.slow && !l.bad_token).count() as u64;

    // Clean connections must be fully acknowledged; truncated ones report
    // their recovery ratio (frames surviving per frame originally framed).
    let mut faulted_recovery = 1.0;
    let clean_sent: u64 =
        outcomes.iter().filter(|o| !o.truncated && !o.auth_rejected).map(|o| o.frames_sent).sum();
    let clean_acked: u64 =
        outcomes.iter().filter(|o| !o.truncated && !o.auth_rejected).map(|o| o.acked).sum();
    if clean_acked != clean_sent {
        return Err(Error::Engine(format!(
            "clean connections lost frames: {clean_acked} acked of {clean_sent} sent"
        )));
    }
    if truncated_streams > 0 {
        let framed: u64 = loads.iter().filter(|l| l.truncated).map(|l| l.framed).sum();
        let recovered: u64 = outcomes.iter().filter(|o| o.truncated).map(|o| o.acked).sum();
        faulted_recovery = recovered as f64 / framed.max(1) as f64;
    }

    let mut lat: Vec<f64> = outcomes.iter().flat_map(|o| o.latencies_ms.iter().copied()).collect();
    lat.sort_by(|a, b| a.partial_cmp(b).unwrap());
    let latency = LatencySummary::from_sorted(&lat);

    let mut stats = report.engine_stats();
    stats.houses = meters;
    stats.workers = workers;
    Ok(GatewayExpReport {
        meters,
        workers,
        clients,
        faults,
        frames_sent,
        frames_acked,
        bytes_sent,
        auth_rejected,
        truncated_streams,
        slow_writers,
        elapsed_secs,
        frames_per_sec: frames_acked as f64 / elapsed_secs,
        latency,
        faulted_recovery,
        stats,
    })
}

/// Human-readable summary printed by `repro gateway`.
pub fn render_gateway(r: &GatewayExpReport) -> String {
    let g = r.stats.gateway.as_ref().expect("run_gateway always sets the gateway block");
    format!(
        "gateway: {} meters over loopback TCP, {} session workers, {} client threads \
         (faults: {})\n\
         traffic: {} frames / {} bytes sent, {} acked -> {:.0} frames/s in {:.2}s\n\
         ack latency: p50 {:.2}ms p95 {:.2}ms p99 {:.2}ms max {:.2}ms ({} samples)\n\
         connections: {} accepted, {} auth-rejected, {} truncated streams \
         ({:.1}% frames recovered), {} slow writers\n\
         server: {} frames decoded, {} resyncs, {} worker panics, drain {:.3}s\n\
         output: byte-identical to in-process FleetIngest, zero acknowledged frames lost",
        r.meters,
        r.workers,
        r.clients,
        if r.faults { "on" } else { "off" },
        r.frames_sent,
        r.bytes_sent,
        r.frames_acked,
        r.frames_per_sec,
        r.elapsed_secs,
        r.latency.p50_ms,
        r.latency.p95_ms,
        r.latency.p99_ms,
        r.latency.max_ms,
        r.latency.samples,
        g.connections_accepted,
        r.auth_rejected,
        r.truncated_streams,
        100.0 * r.faulted_recovery,
        r.slow_writers,
        g.frames_acked,
        r.stats.ingest.as_ref().map(|i| i.resyncs).unwrap_or(0),
        r.stats.pool.as_ref().map(|p| p.panics).unwrap_or(0),
        g.drain_secs,
    )
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn latency_summary_percentiles() {
        let lat: Vec<f64> = (1..=100).map(|i| i as f64).collect();
        let s = LatencySummary::from_sorted(&lat);
        assert_eq!(s.p50_ms, 51.0);
        assert_eq!(s.p95_ms, 95.0);
        assert_eq!(s.p99_ms, 99.0);
        assert_eq!(s.max_ms, 100.0);
        assert_eq!(s.samples, 100);
        assert_eq!(LatencySummary::from_sorted(&[]).samples, 0);
    }

    #[test]
    fn fleet_load_is_deterministic_and_framed() {
        let mut scale = Scale::quick();
        scale.days = 1;
        let a = build_fleet_load(scale, 6, false).unwrap();
        let b = build_fleet_load(scale, 6, false).unwrap();
        assert_eq!(a.len(), 6);
        for (x, y) in a.iter().zip(&b) {
            assert_eq!(x.wire, y.wire, "loads must be reproducible per seed");
            assert_eq!(x.frame_ends.len(), 25, "1 table + 24 hourly windows");
            assert_eq!(*x.frame_ends.last().unwrap(), x.wire.len());
            assert!(!x.bad_token && !x.truncated && !x.slow, "clean mode has no faults");
        }
        // Different meters carry different window streams.
        assert_ne!(a[0].wire, a[1].wire);
    }

    #[test]
    fn faulted_fleet_load_draws_the_adversarial_mix() {
        let mut scale = Scale::quick();
        scale.days = 1;
        let loads = build_fleet_load(scale, 40, true).unwrap();
        assert!(loads.iter().any(|l| l.bad_token));
        assert!(loads.iter().any(|l| l.truncated));
        assert!(loads.iter().any(|l| l.slow));
        for l in loads.iter().filter(|l| l.truncated) {
            assert!(l.frame_ends.is_empty(), "truncation invalidates frame boundaries");
        }
    }

    #[test]
    fn small_clean_run_is_lossless_and_identical() {
        let mut scale = Scale::quick();
        scale.days = 1;
        let r = run_gateway(scale, 6, 2, false).unwrap();
        assert_eq!(r.frames_acked, r.frames_sent);
        assert_eq!(r.frames_sent, 6 * 25);
        assert_eq!(r.auth_rejected, 0);
        assert_eq!(r.faulted_recovery, 1.0);
        assert!(r.latency.samples > 0);
        let g = r.stats.gateway.unwrap();
        assert_eq!(g.connections_accepted, 6);
        assert_eq!(g.frames_acked, r.frames_acked);
        let rendered = render_gateway(&r);
        assert!(rendered.contains("byte-identical"), "{rendered}");
        assert!(rendered.contains("6 meters"), "{rendered}");
    }

    #[test]
    fn faulted_run_recovers_and_counts_rejections() {
        let mut scale = Scale::quick();
        scale.days = 1;
        let r = run_gateway(scale, 40, 2, true).unwrap();
        assert!(r.auth_rejected > 0);
        assert!(r.truncated_streams > 0);
        assert_eq!(r.stats.gateway.unwrap().auth_failures, r.auth_rejected);
        assert!(
            r.faulted_recovery >= 0.5,
            "localized truncation must not destroy the stream: {:.2}",
            r.faulted_recovery
        );
        assert!(r.stats.ingest.as_ref().unwrap().resyncs > 0);
    }
}
