//! `repro` — regenerate any table or figure of the paper.
//!
//! ```text
//! repro <experiment> [--scale quick|paper|k=v,...] [--seed N] [--parallel] [--workers N]
//!                    [--faults] [--meters N] [--houses N] [--shards N] [--metrics[=FILE]]
//! repro validate-metrics <FILE>
//! experiments: fig1 fig2 fig3 fig4 fig5 fig6 fig7 fig8 fig9
//!              table1 classification compression drift privacy fleet ingest
//!              gateway quality encode-bench scale crash all
//! ```
//!
//! `--parallel` routes the `fleet` experiment through the multi-threaded
//! [`sms_core::engine::FleetEngine`]; `--workers N` sets the worker count
//! (and implies `--parallel`). The evaluation-matrix experiments
//! (`classification`, `fig5`–`fig7`, `table1`, `sax`) also honour
//! `--workers`: their independent grid cells run on a worker pool, with
//! results bit-identical to a serial run at any worker count. `--faults`
//! makes the `ingest` experiment corrupt its wire streams with the
//! deterministic fault injector.
//!
//! The `gateway` experiment starts the network-facing
//! [`sms_core::gateway::Gateway`] on loopback TCP and drives it with
//! `--meters N` synthetic meter connections (`--faults` adds bad tokens,
//! truncated streams and slow writers); it fails unless the gateway's
//! decoded fleet is byte-identical to the in-process ingest path.
//!
//! The `scale` experiment streams `--houses N` synthetic houses (default
//! from `--scale`, up to a million) through the sharded fleet engine
//! ([`sms_core::shard`]) into the bit-packed segment store
//! ([`sms_core::segstore`]), reporting end-to-end throughput, bytes/house
//! (raw vs packed vs re-compressed) and query latency percentiles, and
//! verifying byte-identity against the serial codec and across shard/worker
//! topologies. `--shards N` sets the main run's shard count.
//!
//! The `crash` experiment sweeps crash points over the durable segment
//! store ([`sms_core::durable`]): the storage backend is killed after every
//! Nth mutating operation across a faulted fleet run, the store is
//! recovered from the surviving bytes, and the recovered image (full
//! resolution and truncated reads) must be byte-identical to an uncrashed
//! reference. A shard-failover leg and a loopback-gateway leg prove zero
//! acknowledged-frame loss end to end; `--houses N` and `--shards N` size
//! the sweep.
//!
//! The `drift` experiment injects a mid-stream distribution change into a
//! CER-like fleet ([`meterdata::generator::cer_drifted`]) and measures
//! reconstruction accuracy before/during/after it, with the static day-one
//! table and with the sketch-backed adaptive path
//! ([`sms_core::adaptive`]) that re-learns separators and ships each
//! rebuilt table under a new epoch. A sharded-engine leg proves the drift
//! gate cuts every house over, and a topology sweep proves symbols and
//! epochs byte-identical at {1,4,16} shards × {1,2,8} workers across the
//! cutover. `--shards N` / `--workers N` size the main fleet run.
//!
//! `--metrics` exports the run's [`sms_core::telemetry`] registry — every
//! catalog counter, gauge and histogram plus the recorded spans — after the
//! experiment finishes: one `metrics_json: {...}` line on stdout followed by
//! the Prometheus text exposition (on stdout, or written to `FILE` with
//! `--metrics=FILE`). `validate-metrics` parses a saved `metrics_json`
//! document back through `sms_core::json` and checks its documented shape;
//! CI uses it as the exporter smoke test (see `OBSERVABILITY.md`).

use sms_bench::ablation::{
    render_separator_ablation, run_separator_ablation, run_streaming_ablation,
};
use sms_bench::classification::{ClassifierKind, FigureRun, TableMode};
use sms_bench::clustering::{render_clustering, run_clustering};
use sms_bench::drift::{render_drift, run_drift};
use sms_bench::encode_bench::{render_encode_bench, run_encode_bench};
use sms_bench::export::export_arff;
use sms_bench::figures::{
    compression_table, fig1_symbol_tree, fig2_distribution, fig3_normalization, fig4_statistics,
};
use sms_bench::forecasting::{ForecastFigure, ForecastModel};
use sms_bench::gateway_exp::{render_gateway, run_gateway};
use sms_bench::ingest_exp::{render_ingest, run_ingest};
use sms_bench::prep::dataset;
use sms_bench::privacy_exp::{render_privacy, run_privacy};
use sms_bench::quality_exp::{render_quality, run_quality};
use sms_bench::sax_exp::{render_sax_comparison, run_sax_comparison};
use sms_bench::table1::Table1;
use sms_bench::Scale;
use sms_core::telemetry::{render_metrics_json, Registry};
use std::time::Instant;

fn usage() -> ! {
    eprintln!(
        "usage: repro <experiment> [--scale quick|paper|k=v,...] [--seed N] [--parallel] \
         [--workers N] [--faults] [--meters N] [--houses N] [--shards N] [--metrics[=FILE]]\n\
         \x20      repro validate-metrics <FILE>\n\
         experiments: fig1 fig2 fig3 fig4 fig5 fig6 fig7 fig8 fig9\n\
         table1 classification compression drift privacy clustering ablation sax markov fidelity \
         arff fleet ingest gateway quality encode-bench scale crash all\n\
         --scale: a preset (`quick`, `paper`) optionally followed by comma-\n\
         separated key=value overrides (days/interval/trees/folds/seed/houses),\n\
         e.g. `--scale paper,houses=1000000`\n\
         --parallel / --workers N: encode the `fleet` experiment through the\n\
         multi-threaded FleetEngine (default: serial codec); also parallelize\n\
         the evaluation-matrix experiments (classification, fig5-7, table1,\n\
         sax) at the grid-cell level — results are bit-identical to serial\n\
         --faults: corrupt the `ingest` experiment's wire streams (bit flips,\n\
         truncation, duplication) before the server-side gateway decodes them;\n\
         for the `quality` experiment, corrupt generated series at the sample\n\
         level (NaN runs, gaps, duplicates, reset spikes) and seed panicking\n\
         encode jobs — the engine must repair, retry or quarantine, never abort\n\
         --meters N: fleet size for the `gateway` experiment — N loopback TCP\n\
         connections through the token handshake and session workers (default\n\
         64); with --faults the mix adds bad tokens, truncated streams and\n\
         slow writers, and the run still must match the in-process ingest\n\
         path byte for byte\n\
         --houses N: fleet size for the `scale` experiment (shorthand for\n\
         `--scale ...,houses=N`); a million houses streams in bounded memory\n\
         --shards N: shard count for the `scale` experiment's main run (the\n\
         byte-identity sweep always covers {{1,4,16}} shards x {{1,2,8}} workers)\n\
         --metrics: after the run, print `metrics_json: {{...}}` plus the\n\
         Prometheus text exposition of every telemetry counter, gauge,\n\
         histogram and span (to FILE instead of stdout with --metrics=FILE);\n\
         `validate-metrics FILE` re-parses a saved metrics_json document and\n\
         verifies its documented shape (the CI exporter smoke test)"
    );
    std::process::exit(2);
}

/// How the `fleet` experiment should encode: serially or through the engine.
#[derive(Clone, Copy, Debug)]
struct ParallelOpts {
    parallel: bool,
    workers: Option<usize>,
    faults: bool,
    meters: usize,
    shards: Option<usize>,
}

/// Where `--metrics` sends the Prometheus text exposition.
#[derive(Clone, Debug)]
enum MetricsSink {
    /// Bare `--metrics`: exposition follows the `metrics_json:` line on
    /// stdout.
    Stdout,
    /// `--metrics=FILE`: exposition is written to `FILE`.
    File(String),
}

fn main() {
    let args: Vec<String> = std::env::args().skip(1).collect();
    if args.is_empty() {
        usage();
    }
    let experiment = args[0].clone();
    if experiment == "validate-metrics" {
        let path = args.get(1).cloned().unwrap_or_else(|| usage());
        if let Err(e) = validate_metrics_file(&path) {
            eprintln!("error: {e}");
            std::process::exit(1);
        }
        println!("metrics file {path} is valid");
        return;
    }
    let mut scale = Scale::quick();
    let mut opts =
        ParallelOpts { parallel: false, workers: None, faults: false, meters: 64, shards: None };
    let mut metrics: Option<MetricsSink> = None;
    let mut i = 1;
    while i < args.len() {
        match args[i].as_str() {
            "--scale" => {
                i += 1;
                let spec = args.get(i).unwrap_or_else(|| usage());
                scale = Scale::parse(spec).unwrap_or_else(|e| {
                    eprintln!("error: {e}");
                    std::process::exit(2);
                });
            }
            "--seed" => {
                i += 1;
                scale.seed = args.get(i).and_then(|s| s.parse().ok()).unwrap_or_else(|| usage());
            }
            "--parallel" => {
                opts.parallel = true;
            }
            "--faults" => {
                opts.faults = true;
            }
            "--workers" => {
                i += 1;
                opts.workers =
                    Some(args.get(i).and_then(|s| s.parse().ok()).unwrap_or_else(|| usage()));
                opts.parallel = true;
            }
            "--meters" => {
                i += 1;
                opts.meters = args.get(i).and_then(|s| s.parse().ok()).unwrap_or_else(|| usage());
            }
            "--houses" => {
                i += 1;
                scale.houses = args
                    .get(i)
                    .and_then(|s| s.parse().ok())
                    .filter(|&h: &usize| h > 0)
                    .unwrap_or_else(|| usage());
            }
            "--shards" => {
                i += 1;
                opts.shards = Some(
                    args.get(i)
                        .and_then(|s| s.parse().ok())
                        .filter(|&n: &usize| n > 0)
                        .unwrap_or_else(|| usage()),
                );
            }
            "--metrics" => {
                metrics = Some(MetricsSink::Stdout);
            }
            arg => match arg.strip_prefix("--metrics=") {
                Some(path) if !path.is_empty() => {
                    metrics = Some(MetricsSink::File(path.to_string()));
                }
                _ => usage(),
            },
        }
        i += 1;
    }

    // One registry per `repro` invocation: experiments register their
    // finished stats blocks into it, and the whole run is timed under a root
    // span named after the experiment.
    let reg = Registry::with_catalog();
    let t0 = Instant::now();
    let result = {
        let _root = reg.span(&experiment);
        run_with_opts(&experiment, scale, opts, &reg)
    };
    if let Err(e) = result {
        eprintln!("error: {e}");
        std::process::exit(1);
    }
    if let Some(sink) = metrics {
        if let Err(e) = export_metrics(&reg, &experiment, &sink) {
            eprintln!("error: {e}");
            std::process::exit(1);
        }
    }
    eprintln!("\n[{experiment} done in {:.1}s]", t0.elapsed().as_secs_f64());
}

/// Emits the two `--metrics` exports: the merged JSON document on stdout and
/// the Prometheus text exposition on stdout or into a file.
fn export_metrics(
    reg: &Registry,
    experiment: &str,
    sink: &MetricsSink,
) -> Result<(), Box<dyn std::error::Error>> {
    println!("metrics_json: {}", render_metrics_json(reg, experiment));
    let exposition = reg.render_prometheus();
    match sink {
        MetricsSink::Stdout => print!("{exposition}"),
        MetricsSink::File(path) => std::fs::write(path, exposition)?,
    }
    Ok(())
}

/// `repro validate-metrics FILE`: re-parses a saved metrics document through
/// `sms_core::json` and checks the documented top-level shape. Accepts either
/// the raw JSON or a captured stdout line starting with `metrics_json: `.
fn validate_metrics_file(path: &str) -> Result<(), Box<dyn std::error::Error>> {
    let raw = std::fs::read_to_string(path)?;
    let doc = raw
        .lines()
        .find_map(|l| l.strip_prefix("metrics_json: "))
        .unwrap_or(raw.trim())
        .to_string();
    let parsed = sms_core::json::parse(&doc).map_err(|e| format!("metrics JSON: {e}"))?;
    for key in ["experiment", "metrics", "histograms", "spans"] {
        if parsed.get(key).is_none() {
            return Err(format!("metrics JSON is missing the top-level key {key:?}").into());
        }
    }
    let blocks = parsed.get("metrics").and_then(|m| m.as_object());
    if blocks.is_none_or(|m| m.is_empty()) {
        return Err("metrics JSON has an empty \"metrics\" section".into());
    }
    Ok(())
}

fn run_with_opts(
    experiment: &str,
    scale: Scale,
    opts: ParallelOpts,
    reg: &Registry,
) -> Result<(), Box<dyn std::error::Error>> {
    // Evaluation-matrix experiments: serial unless the user opted in;
    // `--parallel` alone means "all cores".
    let eval_workers = if opts.parallel { opts.workers.unwrap_or(0) } else { 1 };
    match experiment {
        "fleet" => run_fleet(scale, opts, reg),
        "ingest" => run_ingest_exp(scale, opts.faults, reg),
        "gateway" => run_gateway_exp(scale, opts, reg),
        "quality" => run_quality_exp(scale, opts.faults, reg),
        "scale" => run_scale_exp(scale, opts, reg),
        "crash" => run_crash_exp(scale, opts, reg),
        "drift" => run_drift_exp(scale, opts, reg),
        _ => run(experiment, scale, eval_workers, reg),
    }
}

/// Inject a mid-stream distribution change into a CER-like fleet and measure
/// reconstruction accuracy before/during/after it, with and without the
/// sketch-backed adaptive re-learning path — plus the sharded drift-gate leg
/// and the topology byte-identity sweep across the epoch cutover.
fn run_drift_exp(
    scale: Scale,
    opts: ParallelOpts,
    reg: &Registry,
) -> Result<(), Box<dyn std::error::Error>> {
    let shards = opts.shards.unwrap_or(4);
    let workers = opts.workers.unwrap_or(2).max(1);
    let report = run_drift(scale, shards, workers)?;
    report.stats.register_into(reg);
    print!("{}", render_drift(&report));
    println!("drift_bench: {}", report.to_json());
    println!("engine_stats: {}", report.stats.to_json());
    Ok(())
}

/// Sweep crash points over the durable segment store: kill the storage
/// backend after every Nth operation, recover, and prove the recovered
/// store byte-identical to an uncrashed reference — plus the shard-failover
/// and gateway-path legs.
fn run_crash_exp(
    scale: Scale,
    opts: ParallelOpts,
    reg: &Registry,
) -> Result<(), Box<dyn std::error::Error>> {
    use sms_bench::crash_exp::{render_crash, run_crash};

    let shards = opts.shards.unwrap_or(3);
    let workers = opts.workers.unwrap_or(2).max(1);
    let report = run_crash(scale, shards, workers)?;
    report.stats.register_into(reg);
    print!("{}", render_crash(&report));
    println!("crash_bench: {}", report.to_json());
    println!("engine_stats: {}", report.stats.to_json());
    Ok(())
}

/// Stream a synthetic fleet through the sharded engine into the bit-packed
/// segment store, report throughput / bytes-per-house / query latency, and
/// verify byte-identity against the serial codec and across topologies.
fn run_scale_exp(
    scale: Scale,
    opts: ParallelOpts,
    reg: &Registry,
) -> Result<(), Box<dyn std::error::Error>> {
    use sms_bench::scale_exp::{render_scale, run_scale};

    let shards = opts.shards.unwrap_or(4);
    let workers = opts.workers.unwrap_or(2).max(1);
    let report = run_scale(scale, shards, workers)?;
    report.stats.register_into(reg);
    print!("{}", render_scale(&report));
    println!("scale_bench: {}", report.to_json());
    println!("engine_stats: {}", report.stats.to_json());
    Ok(())
}

/// Corrupt a fleet's samples and panic-seed its encode jobs, then prove the
/// supervised engine repairs, retries or quarantines without aborting.
fn run_quality_exp(
    scale: Scale,
    faults: bool,
    reg: &Registry,
) -> Result<(), Box<dyn std::error::Error>> {
    let report = run_quality(scale, faults)?;
    report.stats.register_into(reg);
    println!("{}", render_quality(&report));
    println!("engine_stats: {}", report.stats.to_json());
    Ok(())
}

/// Drive the network-facing gateway over loopback TCP with a synthetic
/// meter fleet, then prove its decoded output byte-identical to the
/// in-process ingest path.
fn run_gateway_exp(
    scale: Scale,
    opts: ParallelOpts,
    reg: &Registry,
) -> Result<(), Box<dyn std::error::Error>> {
    let workers = opts.workers.unwrap_or(2).max(1);
    let report = run_gateway(scale, opts.meters, workers, opts.faults)?;
    report.stats.register_into(reg);
    println!("{}", render_gateway(&report));
    println!("engine_stats: {}", report.stats.to_json());
    Ok(())
}

/// Encode a fleet, ship it over a (optionally faulted) wire, and decode it
/// through the hardened per-meter ingest gateways.
fn run_ingest_exp(
    scale: Scale,
    faults: bool,
    reg: &Registry,
) -> Result<(), Box<dyn std::error::Error>> {
    let report = run_ingest(scale, faults)?;
    report.stats.register_into(reg);
    println!("{}", render_ingest(&report));
    println!("engine_stats: {}", report.stats.to_json());
    Ok(())
}

/// Encode a synthetic fleet, either serially or through the parallel
/// [`FleetEngine`](sms_core::engine::FleetEngine), and print throughput
/// counters.
fn run_fleet(
    scale: Scale,
    opts: ParallelOpts,
    reg: &Registry,
) -> Result<(), Box<dyn std::error::Error>> {
    use meterdata::generator::fleet_series;
    use sms_core::engine::{EngineConfig, FleetEngine};
    use sms_core::pipeline::CodecBuilder;
    use sms_core::separators::SeparatorMethod;

    let houses = scale.houses;
    let houses_u32 = u32::try_from(houses)
        .map_err(|_| format!("fleet generator caps at u32 houses, got {houses}"))?;
    let fleet = fleet_series(scale.seed, houses_u32, scale.days.clamp(1, 7), scale.interval_secs)?;
    let samples: usize = fleet.iter().map(|h| h.len()).sum();
    let builder =
        CodecBuilder::new().method(SeparatorMethod::Median).alphabet_size(16)?.window_secs(3600);

    if opts.parallel {
        let mut config = EngineConfig::default();
        if let Some(w) = opts.workers {
            config = EngineConfig::with_workers(w);
        }
        let engine = FleetEngine::new(builder, config);
        let enc = engine.encode_fleet(&fleet)?;
        enc.stats.register_into(reg);
        let symbols: usize = enc.series.iter().map(|s| s.len()).sum();
        println!(
            "fleet: {houses} houses, {samples} samples -> {symbols} symbols \
             ({} workers)",
            enc.stats.workers
        );
        println!("engine_stats: {}", enc.stats.to_json());
    } else {
        let t0 = Instant::now();
        let mut symbols = 0usize;
        for h in &fleet {
            symbols += builder.train(h)?.encode(h)?.len();
        }
        let secs = t0.elapsed().as_secs_f64().max(f64::MIN_POSITIVE);
        println!("fleet: {houses} houses, {samples} samples -> {symbols} symbols (serial)");
        println!(
            "serial_stats: {{\"encode_secs\":{secs:.6},\"samples_per_sec\":{:.1}}}",
            samples as f64 / secs
        );
    }
    Ok(())
}

fn run(
    experiment: &str,
    scale: Scale,
    workers: usize,
    reg: &Registry,
) -> Result<(), Box<dyn std::error::Error>> {
    match experiment {
        "fleet" => {
            let opts = ParallelOpts {
                parallel: false,
                workers: None,
                faults: false,
                meters: 64,
                shards: None,
            };
            run_fleet(scale, opts, reg)?;
        }
        "ingest" => {
            run_ingest_exp(scale, false, reg)?;
        }
        "fig1" => {
            println!("{}", fig1_symbol_tree(800.0, 3)?);
        }
        "fig2" => {
            let ds = dataset(scale)?;
            println!("{}", fig2_distribution(&ds, 1)?.render());
        }
        "fig3" => {
            println!("{}", fig3_normalization()?.render());
        }
        "fig4" => {
            let ds = dataset(scale)?;
            let report_every = (1000 / scale.interval_secs).max(1) as usize * 10;
            println!("{}", fig4_statistics(&ds, 1, 3, report_every)?.render());
        }
        "fig5" | "fig6" | "fig7" => {
            let ds = dataset(scale)?;
            let (kind, mode) = match experiment {
                "fig5" => (ClassifierKind::NaiveBayes, TableMode::PerHouse),
                "fig6" => (ClassifierKind::RandomForest, TableMode::PerHouse),
                _ => (ClassifierKind::RandomForest, TableMode::Global),
            };
            let fig = FigureRun::run(&ds, scale, kind, mode, workers)?;
            fig.eval.register_into(reg);
            println!("{}", fig.render());
            println!("mean F by method: {:?}", fig.mean_f_by_method());
            if let Some((spec, cell)) = fig.best_symbolic() {
                println!(
                    "best symbolic: {} F={:.3} vs best raw F={:.3}",
                    spec.label(),
                    cell.f_measure,
                    fig.best_raw_f()
                );
            }
        }
        "classification" => {
            // Fig. 5's grid with full engine counters: one JSON block per
            // run, mirroring the `fleet`/`ingest` experiments.
            let ds = dataset(scale)?;
            let fig = FigureRun::run(
                &ds,
                scale,
                ClassifierKind::NaiveBayes,
                TableMode::PerHouse,
                workers,
            )?;
            println!("{}", fig.render());
            let stats = sms_core::engine::EngineStats {
                workers: fig.eval.workers,
                houses: ds.records().len(),
                samples_in: ds.records().iter().map(|r| r.series.len() as u64).sum(),
                symbols_out: 0,
                eval: Some(fig.eval),
                ..Default::default()
            };
            stats.register_into(reg);
            println!("engine_stats: {}", stats.to_json());
        }
        "table1" => {
            let ds = dataset(scale)?;
            let t = Table1::run(&ds, scale, workers)?;
            println!("{}", t.render());
            println!(
                "mean per-house F: median={:.3} distinctmedian={:.3} uniform={:.3}",
                t.mean_per_house("median"),
                t.mean_per_house("distinctmedian"),
                t.mean_per_house("uniform"),
            );
        }
        "fig8" | "fig9" | "markov" => {
            let ds = dataset(scale)?;
            let model = match experiment {
                "fig8" => ForecastModel::NaiveBayes,
                "fig9" => ForecastModel::RandomForest,
                _ => ForecastModel::Markov,
            };
            let fig = ForecastFigure::run(&ds, scale, model)?;
            println!("{}", fig.render());
            println!(
                "houses where some symbolic encoding beats raw SVR: {}/{}",
                fig.symbolic_wins(),
                fig.houses.len()
            );
        }
        "compression" => {
            let ds = dataset(scale)?;
            println!("{}", compression_table(&ds, scale)?);
        }
        "drift" => {
            let opts = ParallelOpts {
                parallel: false,
                workers: None,
                faults: false,
                meters: 64,
                shards: None,
            };
            run_drift_exp(scale, opts, reg)?;
        }
        "privacy" => {
            let ds = dataset(scale)?;
            println!("{}", render_privacy(&run_privacy(&ds, scale)?));
        }
        "sax" => {
            let ds = dataset(scale)?;
            println!("{}", render_sax_comparison(&run_sax_comparison(&ds, scale, workers)?));
        }
        "clustering" => {
            let ds = dataset(scale)?;
            println!("{}", render_clustering(&run_clustering(&ds, scale)?));
        }
        "encode-bench" => {
            // The encode hot-path sweep behind `BENCH_encode.json`: scalar
            // vs batched per-core throughput, with each timed side recorded
            // as a span under this experiment's root span.
            let report = run_encode_bench(scale, reg)?;
            print!("{}", render_encode_bench(&report));
            println!("encode_bench: {}", report.to_json());
        }
        "ablation" => {
            println!("{}", render_separator_ablation(&run_separator_ablation(scale)?));
            let s = run_streaming_ablation(scale)?;
            println!(
                "Exact vs P² streaming separator learning: max relative deviation {:.3}, \
                 symbol disagreement {:.1}%",
                s.max_relative_deviation,
                s.symbol_disagreement * 100.0
            );
        }
        "fidelity" => {
            let ds = dataset(scale)?;
            let reports: Vec<(u32, meterdata::validation::FidelityReport)> = ds
                .records()
                .iter()
                .map(|r| {
                    meterdata::validation::fidelity_report(&r.series, ds.interval_secs())
                        .map(|rep| (r.house_id, rep))
                })
                .collect::<Result<_, _>>()?;
            println!("{}", meterdata::validation::render_fidelity(&reports));
        }
        "arff" => {
            let ds = dataset(scale)?;
            let dir = std::path::Path::new("arff_export");
            let files = export_arff(&ds, scale, dir)?;
            println!("wrote {} ARFF files to {}/", files.len(), dir.display());
        }
        "all" => {
            for e in [
                "fig1",
                "fig2",
                "fig3",
                "fig4",
                "compression",
                "fig5",
                "fig6",
                "fig7",
                "classification",
                "table1",
                "fig8",
                "fig9",
                "markov",
                "drift",
                "privacy",
                "clustering",
                "ablation",
                "sax",
                "fidelity",
            ] {
                println!("==================== {e} ====================");
                run(e, scale, workers, reg)?;
            }
        }
        _ => usage(),
    }
    Ok(())
}
