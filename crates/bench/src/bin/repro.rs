//! `repro` — regenerate any table or figure of the paper.
//!
//! ```text
//! repro <experiment> [--scale quick|paper] [--seed N]
//! experiments: fig1 fig2 fig3 fig4 fig5 fig6 fig7 fig8 fig9
//!              table1 compression drift privacy all
//! ```

use sms_bench::ablation::{
    render_separator_ablation, run_separator_ablation, run_streaming_ablation,
};
use sms_bench::classification::{ClassifierKind, FigureRun, TableMode};
use sms_bench::clustering::{render_clustering, run_clustering};
use sms_bench::export::export_arff;
use sms_bench::drift::run_drift;
use sms_bench::figures::{
    compression_table, fig1_symbol_tree, fig2_distribution, fig3_normalization, fig4_statistics,
};
use sms_bench::forecasting::{ForecastFigure, ForecastModel};
use sms_bench::prep::dataset;
use sms_bench::privacy_exp::{render_privacy, run_privacy};
use sms_bench::sax_exp::{render_sax_comparison, run_sax_comparison};
use sms_bench::table1::Table1;
use sms_bench::Scale;
use std::time::Instant;

fn usage() -> ! {
    eprintln!(
        "usage: repro <experiment> [--scale quick|paper] [--seed N]\n\
         experiments: fig1 fig2 fig3 fig4 fig5 fig6 fig7 fig8 fig9\n\
         table1 compression drift privacy clustering ablation sax markov fidelity arff all"
    );
    std::process::exit(2);
}

fn main() {
    let args: Vec<String> = std::env::args().skip(1).collect();
    if args.is_empty() {
        usage();
    }
    let experiment = args[0].clone();
    let mut scale = Scale::quick();
    let mut i = 1;
    while i < args.len() {
        match args[i].as_str() {
            "--scale" => {
                i += 1;
                scale = args
                    .get(i)
                    .and_then(|s| Scale::parse(s))
                    .unwrap_or_else(|| usage());
            }
            "--seed" => {
                i += 1;
                scale.seed = args.get(i).and_then(|s| s.parse().ok()).unwrap_or_else(|| usage());
            }
            _ => usage(),
        }
        i += 1;
    }

    let t0 = Instant::now();
    if let Err(e) = run(&experiment, scale) {
        eprintln!("error: {e}");
        std::process::exit(1);
    }
    eprintln!("\n[{experiment} done in {:.1}s]", t0.elapsed().as_secs_f64());
}

fn run(experiment: &str, scale: Scale) -> Result<(), Box<dyn std::error::Error>> {
    match experiment {
        "fig1" => {
            println!("{}", fig1_symbol_tree(800.0, 3)?);
        }
        "fig2" => {
            let ds = dataset(scale)?;
            println!("{}", fig2_distribution(&ds, 1)?.render());
        }
        "fig3" => {
            println!("{}", fig3_normalization()?.render());
        }
        "fig4" => {
            let ds = dataset(scale)?;
            let report_every = (1000 / scale.interval_secs).max(1) as usize * 10;
            println!("{}", fig4_statistics(&ds, 1, 3, report_every)?.render());
        }
        "fig5" | "fig6" | "fig7" => {
            let ds = dataset(scale)?;
            let (kind, mode) = match experiment {
                "fig5" => (ClassifierKind::NaiveBayes, TableMode::PerHouse),
                "fig6" => (ClassifierKind::RandomForest, TableMode::PerHouse),
                _ => (ClassifierKind::RandomForest, TableMode::Global),
            };
            let fig = FigureRun::run(&ds, scale, kind, mode)?;
            println!("{}", fig.render());
            println!("mean F by method: {:?}", fig.mean_f_by_method());
            if let Some((spec, cell)) = fig.best_symbolic() {
                println!(
                    "best symbolic: {} F={:.3} vs best raw F={:.3}",
                    spec.label(),
                    cell.f_measure,
                    fig.best_raw_f()
                );
            }
        }
        "table1" => {
            let ds = dataset(scale)?;
            let t = Table1::run(&ds, scale)?;
            println!("{}", t.render());
            println!(
                "mean per-house F: median={:.3} distinctmedian={:.3} uniform={:.3}",
                t.mean_per_house("median"),
                t.mean_per_house("distinctmedian"),
                t.mean_per_house("uniform"),
            );
        }
        "fig8" | "fig9" | "markov" => {
            let ds = dataset(scale)?;
            let model = match experiment {
                "fig8" => ForecastModel::NaiveBayes,
                "fig9" => ForecastModel::RandomForest,
                _ => ForecastModel::Markov,
            };
            let fig = ForecastFigure::run(&ds, scale, model)?;
            println!("{}", fig.render());
            println!(
                "houses where some symbolic encoding beats raw SVR: {}/{}",
                fig.symbolic_wins(),
                fig.houses.len()
            );
        }
        "compression" => {
            let ds = dataset(scale)?;
            println!("{}", compression_table(&ds, scale)?);
        }
        "drift" => {
            let days = if scale.days >= 30 { 365 } else { 180 };
            println!("{}", run_drift(scale.seed, days, 86_400)?.render());
        }
        "privacy" => {
            let ds = dataset(scale)?;
            println!("{}", render_privacy(&run_privacy(&ds, scale)?));
        }
        "sax" => {
            let ds = dataset(scale)?;
            println!("{}", render_sax_comparison(&run_sax_comparison(&ds, scale)?));
        }
        "clustering" => {
            let ds = dataset(scale)?;
            println!("{}", render_clustering(&run_clustering(&ds, scale)?));
        }
        "ablation" => {
            println!("{}", render_separator_ablation(&run_separator_ablation(scale)?));
            let s = run_streaming_ablation(scale)?;
            println!(
                "Exact vs P² streaming separator learning: max relative deviation {:.3}, \
                 symbol disagreement {:.1}%",
                s.max_relative_deviation,
                s.symbol_disagreement * 100.0
            );
        }
        "fidelity" => {
            let ds = dataset(scale)?;
            let reports: Vec<(u32, meterdata::validation::FidelityReport)> = ds
                .records()
                .iter()
                .map(|r| {
                    meterdata::validation::fidelity_report(&r.series, ds.interval_secs())
                        .map(|rep| (r.house_id, rep))
                })
                .collect::<Result<_, _>>()?;
            println!("{}", meterdata::validation::render_fidelity(&reports));
        }
        "arff" => {
            let ds = dataset(scale)?;
            let dir = std::path::Path::new("arff_export");
            let files = export_arff(&ds, scale, dir)?;
            println!("wrote {} ARFF files to {}/", files.len(), dir.display());
        }
        "all" => {
            for e in [
                "fig1", "fig2", "fig3", "fig4", "compression", "fig5", "fig6", "fig7", "table1",
                "fig8", "fig9", "markov", "drift", "privacy", "clustering", "ablation",
                "sax", "fidelity",
            ] {
                println!("==================== {e} ====================");
                run(e, scale)?;
            }
        }
        _ => usage(),
    }
    Ok(())
}
