//! The encode hot-path experiment behind `BENCH_encode.json`: per-core
//! throughput of the legacy scalar encode (one binary search plus one checked
//! `Symbol::from_rank` per value) versus the batched fast path
//! ([`LookupTable::encode_batch_into`]) across alphabet sizes.
//!
//! k ≤ 8 exercises the columnar per-boundary kernel, k = 16 the four-step
//! branchless ladder, k = 32 the five-step ladder, and k = 64 the
//! binary-search fallback (where the win is dropping per-value symbol
//! validation alone). Each timed side is recorded as a telemetry span
//! (`scalar_k4`, `batched_k4`, …) nested under the caller's open span, so
//! `repro encode-bench --metrics` exports the wall time alongside the
//! derived samples/sec.
//!
//! The Criterion-style harness (`cargo bench -p sms-bench --bench encode`)
//! drives the same [`run_encode_bench_with`] body and adds the JSON record
//! writer plus the CI regression gate.

use crate::scale::Scale;
use sms_core::alphabet::Alphabet;
use sms_core::error::Result;
use sms_core::lookup::LookupTable;
use sms_core::separators::{def3_bin_index, SeparatorMethod};
use sms_core::symbol::Symbol;
use sms_core::telemetry::Registry;
use std::time::Instant;

/// Alphabet sizes the experiment sweeps: the three fast-path regimes plus
/// the k > 32 binary-search fallback.
pub const ENCODE_BENCH_ALPHABETS: [usize; 4] = [4, 16, 32, 64];

/// One alphabet's scalar-vs-batched throughput comparison.
#[derive(Debug, Clone)]
pub struct EncodeBenchRow {
    /// `k{size}`, or `k{size}_fallback` past the 32-slot flat-table cap.
    pub label: String,
    /// Legacy per-value encode throughput, samples per second on one core.
    pub scalar_samples_per_sec: f64,
    /// Batched fast-path throughput, samples per second on one core.
    pub batched_samples_per_sec: f64,
    /// `scalar_secs / batched_secs` (> 1 means the fast path wins).
    pub speedup: f64,
}

/// The full sweep: one row per alphabet in [`ENCODE_BENCH_ALPHABETS`].
#[derive(Debug, Clone)]
pub struct EncodeBenchReport {
    /// Values encoded per timed pass.
    pub values: usize,
    /// Timed passes per side; the reported time is the median.
    pub samples: usize,
    /// Per-alphabet results, in sweep order.
    pub rows: Vec<EncodeBenchRow>,
}

impl EncodeBenchReport {
    /// The `BENCH_encode.json` document: one object per row keyed by label,
    /// matching the committed baseline the CI gate diffs against.
    pub fn to_json(&self) -> String {
        let mut json = String::from("{\"bench\":\"encode\",");
        json += &format!("\"values\":{},\"samples\":{},", self.values, self.samples);
        for row in &self.rows {
            json += &format!(
                "\"{}\":{{\"scalar_samples_per_sec\":{:.0},\
                 \"batched_samples_per_sec\":{:.0},\"speedup\":{:.3}}},",
                row.label, row.scalar_samples_per_sec, row.batched_samples_per_sec, row.speedup
            );
        }
        json.pop();
        json += "}";
        json
    }
}

fn xorshift(state: &mut u64) -> u64 {
    *state ^= *state >> 12;
    *state ^= *state << 25;
    *state ^= *state >> 27;
    state.wrapping_mul(0x2545_F491_4F6C_DD1D)
}

/// Smart-meter-shaped load curve: a daily base pattern plus noise.
pub fn meter_values(n: usize) -> Vec<f64> {
    let mut state = 0x9E37_79B9_7F4A_7C15u64;
    (0..n)
        .map(|i| {
            let hour = (i / 60) % 24;
            let base = 150.0 + 400.0 * ((hour as f64 - 7.0) / 24.0).sin().abs();
            let noise = (xorshift(&mut state) & 0xFFFF) as f64 / 65536.0 * 120.0;
            base + noise
        })
        .collect()
}

/// The legacy encode loop, reconstructed exactly: one binary search and one
/// checked `Symbol::from_rank` per value.
fn scalar_encode(table: &LookupTable, values: &[f64], out: &mut Vec<Symbol>) {
    out.clear();
    let separators = table.separators();
    let bits = table.resolution_bits();
    for &v in values {
        let rank = def3_bin_index(separators, v) as u16;
        out.push(Symbol::from_rank(rank, bits).expect("rank fits resolution"));
    }
}

/// Median wall time in seconds of `samples` runs of `f`.
fn median_secs(samples: usize, mut f: impl FnMut()) -> f64 {
    let mut times: Vec<f64> = (0..samples)
        .map(|_| {
            let t0 = Instant::now();
            f();
            t0.elapsed().as_secs_f64()
        })
        .collect();
    times.sort_by(|a, b| a.total_cmp(b));
    times[times.len() / 2]
}

/// [`run_encode_bench`] with explicit sizing — the bench harness calls this
/// directly so its smoke/full modes and the `repro` scales share one body.
pub fn run_encode_bench_with(
    n: usize,
    samples: usize,
    reg: &Registry,
) -> Result<EncodeBenchReport> {
    let values = meter_values(n);
    let mut rows = Vec::new();
    for k in ENCODE_BENCH_ALPHABETS {
        let table = LookupTable::learn(SeparatorMethod::Median, Alphabet::with_size(k)?, &values)?;
        let mut out: Vec<Symbol> = Vec::with_capacity(n);
        // Warm both paths once so page faults and lazy allocs don't land in
        // the first timed sample.
        scalar_encode(&table, &values, &mut out);
        table.encode_batch_into(&values, &mut out)?;

        let label = if k <= 32 { format!("k{k}") } else { format!("k{k}_fallback") };
        let scalar = {
            let _span = reg.span(&format!("scalar_{label}"));
            median_secs(samples, || {
                scalar_encode(&table, &values, &mut out);
                assert_eq!(out.len(), n);
            })
        };
        let batched = {
            let _span = reg.span(&format!("batched_{label}"));
            median_secs(samples, || {
                table.encode_batch_into(&values, &mut out).expect("finite bench values");
                assert_eq!(out.len(), n);
            })
        };
        rows.push(EncodeBenchRow {
            label,
            scalar_samples_per_sec: n as f64 / scalar.max(f64::MIN_POSITIVE),
            batched_samples_per_sec: n as f64 / batched.max(f64::MIN_POSITIVE),
            speedup: scalar / batched.max(f64::MIN_POSITIVE),
        });
    }
    Ok(EncodeBenchReport { values: n, samples, rows })
}

/// Runs the sweep at an experiment [`Scale`]: `quick` times a down-scaled
/// column, `paper` the full two-million-value column the committed
/// `BENCH_encode.json` was recorded at.
pub fn run_encode_bench(scale: Scale, reg: &Registry) -> Result<EncodeBenchReport> {
    let (n, samples) = if scale.days >= 30 { (2_000_000, 9) } else { (200_000, 5) };
    run_encode_bench_with(n, samples, reg)
}

/// Human-readable table mirroring the bench harness output.
pub fn render_encode_bench(report: &EncodeBenchReport) -> String {
    let mut out = format!(
        "encode bench: {} values, median of {} passes [per-core Msamples/s]\n",
        report.values, report.samples
    );
    out += &format!("{:<16} {:>10} {:>10} {:>8}\n", "alphabet", "scalar", "batched", "speedup");
    for row in &report.rows {
        out += &format!(
            "{:<16} {:>10.1} {:>10.1} {:>7.2}x\n",
            row.label,
            row.scalar_samples_per_sec / 1e6,
            row.batched_samples_per_sec / 1e6,
            row.speedup
        );
    }
    out
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn sweep_produces_one_row_per_alphabet_and_valid_json() {
        let reg = Registry::new();
        let report = run_encode_bench_with(4096, 1, &reg).expect("bench runs");
        assert_eq!(report.rows.len(), ENCODE_BENCH_ALPHABETS.len());
        assert_eq!(report.rows[0].label, "k4");
        assert_eq!(report.rows[3].label, "k64_fallback");
        for row in &report.rows {
            assert!(row.scalar_samples_per_sec > 0.0);
            assert!(row.batched_samples_per_sec > 0.0);
            assert!(row.speedup > 0.0);
        }

        // The JSON record parses back and keeps every per-row field the CI
        // gate reads.
        let doc = sms_core::json::parse(&report.to_json()).expect("record parses");
        for row in &report.rows {
            let entry = doc.get(&row.label).expect("row present");
            assert!(entry.get("batched_samples_per_sec").and_then(|v| v.as_f64()).is_some());
        }

        // Both timed sides were recorded as spans.
        let paths: Vec<String> = reg.span_snapshots().into_iter().map(|s| s.path).collect();
        assert!(paths.iter().any(|p| p == "scalar_k4"), "spans: {paths:?}");
        assert!(paths.iter().any(|p| p == "batched_k64_fallback"), "spans: {paths:?}");

        let rendered = render_encode_bench(&report);
        assert!(rendered.contains("k32"));
    }
}
