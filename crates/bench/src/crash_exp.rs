//! `repro crash` — the crash-point sweep behind the durable segment store.
//!
//! The `scale` experiment ([`crate::scale_exp`]) proved the sharded encode
//! path byte-identical across topologies; this one proves the durability
//! layer ([`sms_core::durable`]) keeps that property through power loss.
//! Three legs, all deterministic per seed:
//!
//! 1. **Crash sweep** — encode [`Scale::houses`] houses once, then replay
//!    the same append workload against a [`FaultStorage`] backend that is
//!    killed after every Nth mutating storage operation (stride 1 unless the
//!    run is large; the stride is reported, never silent). Each crash point
//!    cycles the fault shapes of [`crate::ingest_exp::ALL_STORAGE_FAULTS`]
//!    (hard fail, short write, torn-and-corrupted tail). After every crash
//!    the store is recovered from the surviving bytes and must satisfy:
//!    the recovered record count `j` covers every acknowledged (fsynced)
//!    record, the recovered image is byte-identical to an uncrashed
//!    reference holding the first `j` records, truncated reads at every
//!    resolution `r ∈ 1..=b` match the reference, and resuming the workload
//!    from `j` converges on the full reference image.
//! 2. **Failover** — a [`DurableFleet`] whose shard 0 backend dies mid-run
//!    must re-route deterministically (two runs, identical images and
//!    stats) and lose no acknowledged record.
//! 3. **Gateway path** — a loopback [`Gateway`] fleet streams windows and
//!    collects cumulative acks; every gateway-acked frame must survive a
//!    mid-append crash of the durable store it lands in (recover + resume,
//!    then read back byte-identical). The gateway's `/readyz` must report
//!    `degraded` while the fleet runs with a dead shard.

use std::io::{Read, Write};
use std::net::TcpStream;

use crate::ingest_exp::FaultInjector;
use crate::scale::Scale;
use crate::scale_exp::{house_series, SAMPLES_PER_HOUSE};
use sms_core::durable::{DurableConfig, DurableFleet, DurableStats, DurableStore, FaultStorage};
use sms_core::encoder::SensorMessage;
use sms_core::engine::EngineStats;
use sms_core::error::{Error, Result};
use sms_core::gateway::{encode_handshake, Gateway, GatewayConfig, HANDSHAKE_ACK};
use sms_core::horizontal::SymbolicSeries;
use sms_core::json::JsonWriter;
use sms_core::pipeline::CodecBuilder;
use sms_core::segstore::SegmentStore;
use sms_core::separators::SeparatorMethod;
use sms_core::shard::{ShardedEngineConfig, ShardedFleetEngine};
use sms_core::symbol::Symbol;
use sms_core::timeseries::TimeSeries;
use sms_core::wire::encode_message;

/// Crash points swept exhaustively; larger runs stride so the sweep stays
/// `O(records × MAX_CRASH_POINTS)`. The stride is part of the report.
const MAX_CRASH_POINTS: u64 = 256;
/// Houses whose truncated reads are compared per crash point.
const TRUNCATED_SAMPLE_HOUSES: usize = 2;
/// Records per WAL group commit in the sweep workload — small, so crash
/// points land between acknowledgement boundaries often.
const GROUP_COMMIT: usize = 4;
/// Most records between automatic checkpoints — co-prime with the group
/// size, so crashes hit every phase of the checkpoint protocol. Small runs
/// shrink the interval so the sweep always crosses checkpoints.
const CHECKPOINT_EVERY_MAX: u64 = 37;
/// Meters in the gateway leg.
const GATEWAY_METERS: usize = 6;
/// Hourly windows each gateway meter streams.
const GATEWAY_WINDOWS: usize = 24;

/// Everything one `repro crash` run verified.
#[derive(Debug, Clone)]
pub struct CrashReport {
    /// Houses in the sweep workload.
    pub houses: usize,
    /// Shards in the failover leg.
    pub shards: usize,
    /// Workers used for the (deterministic) encode.
    pub workers: usize,
    /// Records the workload appends per run.
    pub records: u64,
    /// Mutating storage operations in an uncrashed run.
    pub total_ops: u64,
    /// Crash points actually injected.
    pub crash_points: usize,
    /// Sweep stride over `1..=total_ops` (1 = every operation).
    pub stride: u64,
    /// Symbol resolution of the stored segments (truncated reads cover
    /// `1..=resolution_bits`).
    pub resolution_bits: u8,
    /// Truncated-read comparisons performed across the sweep.
    pub truncated_reads: u64,
    /// Meters in the gateway leg.
    pub gateway_meters: usize,
    /// Frames the gateway acknowledged (all survived the crash).
    pub gateway_acked_frames: u64,
    /// Shards the failover leg killed.
    pub failover_dead_shards: usize,
    /// Engine counters with the `durable` block aggregated over every leg.
    pub stats: EngineStats,
}

impl CrashReport {
    /// Machine-readable record (the `BENCH_crash.json` payload).
    pub fn to_json(&self) -> String {
        let d = self.stats.durable.as_ref().expect("run_crash always sets the durable block");
        let mut w = JsonWriter::new();
        w.begin_object();
        w.key("houses").u64(self.houses as u64);
        w.key("shards").u64(self.shards as u64);
        w.key("workers").u64(self.workers as u64);
        w.key("records").u64(self.records);
        w.key("total_ops").u64(self.total_ops);
        w.key("crash_points").u64(self.crash_points as u64);
        w.key("stride").u64(self.stride);
        w.key("resolution_bits").u64(self.resolution_bits as u64);
        w.key("truncated_reads").u64(self.truncated_reads);
        w.key("gateway_meters").u64(self.gateway_meters as u64);
        w.key("gateway_acked_frames").u64(self.gateway_acked_frames);
        w.key("failover_dead_shards").u64(self.failover_dead_shards as u64);
        w.key("recoveries").u64(d.recoveries);
        w.key("replayed_records").u64(d.replayed_records);
        w.key("torn_records_dropped").u64(d.torn_records_dropped);
        w.key("checkpoints").u64(d.checkpoints);
        w.key("shard_failovers").u64(d.shard_failovers);
        w.end_object();
        w.finish()
    }
}

/// Renders the human-readable report.
pub fn render_crash(r: &CrashReport) -> String {
    let d = r.stats.durable.as_ref().expect("run_crash always sets the durable block");
    let mut out = String::new();
    out.push_str(&format!(
        "crash: {} houses -> {} records, {} storage ops/run; {} crash points \
         (stride {})\n",
        r.houses, r.records, r.total_ops, r.crash_points, r.stride
    ));
    out.push_str(&format!(
        "  every recovery covered its acknowledged prefix and matched the reference \
         byte-for-byte (full resolution + {} truncated reads at r in 1..={})\n",
        r.truncated_reads, r.resolution_bits
    ));
    out.push_str(&format!(
        "  durability: {} recoveries, {} records replayed, {} torn records dropped, \
         {} checkpoints, {} fsyncs\n",
        d.recoveries, d.replayed_records, d.torn_records_dropped, d.checkpoints, d.fsyncs
    ));
    out.push_str(&format!(
        "  failover: {} of {} shards killed mid-run, {} failovers, zero acknowledged \
         records lost, deterministic across replays\n",
        r.failover_dead_shards, r.shards, d.shard_failovers
    ));
    out.push_str(&format!(
        "  gateway: {} meters, {} acked frames all present after crash + recovery; \
         /readyz reported degraded while a shard was dead\n",
        r.gateway_meters, r.gateway_acked_frames
    ));
    out
}

fn codec_builder() -> Result<CodecBuilder> {
    Ok(CodecBuilder::new().method(SeparatorMethod::Median).alphabet_size(16)?.no_aggregation())
}

/// Encodes the sweep workload once: `(house, series)` records in append
/// order, via the sharded engine (output is worker-count independent).
fn encode_workload(scale: Scale, workers: usize) -> Result<Vec<(u64, SymbolicSeries)>> {
    let config = ShardedEngineConfig::with_shards(4).workers(workers.max(1));
    let mut engine = ShardedFleetEngine::new(codec_builder()?, config)?;
    let fleet: Vec<(u64, TimeSeries)> =
        (0..scale.houses).map(|h| (h as u64, house_series(scale.seed, h as u64))).collect();
    let enc = engine.encode_batch(&fleet)?;
    if let Some(q) = enc.quarantined.first() {
        return Err(Error::Engine(format!(
            "crash fleet unexpectedly quarantined house {}: {}",
            q.house, q.reason
        )));
    }
    Ok(fleet.iter().map(|(h, _)| *h).zip(enc.series).collect())
}

/// Runs the full workload against `storage`, reporting how many records
/// were acknowledged (durable) when it stopped, and the store's counters.
/// An `Err` is a planned crash, not a failure of the harness.
fn run_workload(
    storage: &mut FaultStorage,
    config: DurableConfig,
    records: &[(u64, SymbolicSeries)],
    acked: &mut u64,
    stats: &mut DurableStats,
) -> Result<()> {
    let (mut ds, _) = DurableStore::open(&mut *storage, config)?;
    let finish = |ds: &DurableStore<&mut FaultStorage>, acked: &mut u64, st: &mut DurableStats| {
        *acked = ds.durable_records();
        st.merge(&ds.stats());
    };
    for (house, series) in records {
        if let Err(e) = ds.append(*house, series) {
            finish(&ds, acked, stats);
            return Err(e);
        }
    }
    let out = ds.commit();
    finish(&ds, acked, stats);
    out
}

/// Uncrashed reference image of the first `j` workload records.
fn prefix_image(records: &[(u64, SymbolicSeries)], j: usize) -> Result<Vec<u8>> {
    let mut store = SegmentStore::new();
    for (house, series) in &records[..j] {
        store.append(*house, series)?;
    }
    Ok(store.to_bytes())
}

/// One crash point: run to the planned crash, recover from the surviving
/// bytes, check the prefix/truncation invariants, then resume to the end.
/// Returns the truncated-read comparisons performed.
#[allow(clippy::too_many_arguments)]
fn check_crash_point(
    crash_at: u64,
    injector: &mut FaultInjector,
    total_ops: u64,
    config: DurableConfig,
    records: &[(u64, SymbolicSeries)],
    full_reference: &mut SegmentStore,
    full_image: &[u8],
    stats: &mut DurableStats,
) -> Result<u64> {
    let (_, mut plan) = injector.storage_plan_nth(crash_at, total_ops);
    plan.crash_at_op = Some(crash_at);
    let mut storage = FaultStorage::with_plan(plan);
    let mut acked = 0u64;
    let crashed = run_workload(&mut storage, config, records, &mut acked, stats).is_err();

    // Recover from what a real disk would hold after the power cut.
    let (mut recovered, _) = DurableStore::open(storage.crash_view(), config)?;
    stats.merge(&recovered.stats());
    let j = recovered.durable_records();
    if j < acked || j > records.len() as u64 {
        return Err(Error::Engine(format!(
            "crash at op {crash_at}: recovered {j} records but {acked} were acknowledged \
             (of {})",
            records.len()
        )));
    }
    let expect = prefix_image(records, j as usize)?;
    if recovered.store().to_bytes() != expect {
        return Err(Error::Engine(format!(
            "crash at op {crash_at}: recovered image differs from the {j}-record reference"
        )));
    }

    // Truncated reads on a sample of recovered houses, at every resolution.
    let mut truncated_reads = 0u64;
    let step = (j as usize / TRUNCATED_SAMPLE_HOUSES.max(1)).max(1);
    for (house, series) in records[..j as usize].iter().step_by(step) {
        for r in 1..=series.resolution_bits() {
            let got = recovered.store_mut().read_truncated(*house, i64::MIN, i64::MAX, r)?;
            let want = full_reference.read_truncated(*house, i64::MIN, i64::MAX, r)?;
            if got.symbols() != want.symbols() || got.timestamps() != want.timestamps() {
                return Err(Error::Engine(format!(
                    "crash at op {crash_at}: truncated read of house {house} at {r} bits \
                     diverges from the reference"
                )));
            }
            truncated_reads += 1;
        }
    }

    // Resume: the recovered store must accept the rest of the workload and
    // converge on the full reference image.
    for (house, series) in &records[j as usize..] {
        recovered.append(*house, series)?;
    }
    recovered.commit()?;
    stats.merge(&recovered.stats());
    if recovered.store().to_bytes() != full_image {
        return Err(Error::Engine(format!(
            "crash at op {crash_at}: resumed store does not match the full reference \
             (crashed: {crashed})"
        )));
    }
    Ok(truncated_reads)
}

/// The failover leg: shard 0's backend dies mid-run; the fleet must keep
/// every record reachable and behave identically on a second run.
fn run_failover_leg(
    records: &[(u64, SymbolicSeries)],
    shards: usize,
    seed: u64,
) -> Result<(usize, DurableStats)> {
    let config = DurableConfig::default().group_commit(GROUP_COMMIT);
    let run = || -> Result<(Vec<Vec<u8>>, usize, DurableStats)> {
        let mut stores = Vec::with_capacity(shards);
        for s in 0..shards {
            // Shard 0 dies on its 9th mutating op: past the 5 ops of
            // initialization, early in the append stream.
            let plan = if s == 0 {
                sms_core::durable::FaultPlan::crash_at(9, seed)
            } else {
                sms_core::durable::FaultPlan::default()
            };
            let (ds, _) = DurableStore::open(FaultStorage::with_plan(plan), config)?;
            stores.push(ds);
        }
        let mut fleet = DurableFleet::new(stores)?;
        for (house, series) in records {
            fleet.append(*house, series)?;
        }
        fleet.commit()?;
        // Zero acknowledged loss: every record is on the shard that now
        // serves its house, or on a dead shard awaiting its re-open.
        for (house, _) in records {
            let routed = fleet
                .route(*house)
                .map(|s| fleet.shard(s).store().contains_house(*house))
                .unwrap_or(false);
            let on_dead = (0..shards)
                .any(|s| !fleet.alive()[s] && fleet.shard(s).store().contains_house(*house));
            if !routed && !on_dead {
                return Err(Error::Engine(format!(
                    "failover leg lost house {house}: on no live or dead shard"
                )));
            }
        }
        let dead = fleet.dead_shards();
        let stats = fleet.stats();
        let images =
            fleet.into_shards().into_iter().map(|s| s.store().to_bytes()).collect::<Vec<_>>();
        Ok((images, dead, stats))
    };
    let (images_a, dead_a, stats_a) = run()?;
    let (images_b, dead_b, stats_b) = run()?;
    if images_a != images_b || dead_a != dead_b || stats_a != stats_b {
        return Err(Error::Engine(
            "failover leg is not deterministic: two identical runs diverged".to_string(),
        ));
    }
    if dead_a == 0 || stats_a.shard_failovers == 0 {
        return Err(Error::Engine(
            "failover leg never killed a shard — the fault plan missed".to_string(),
        ));
    }
    Ok((dead_a, stats_a))
}

/// The gateway leg: stream `GATEWAY_METERS` meters of hourly windows over
/// loopback TCP, crash the durable store their decoded frames land in, and
/// prove every gateway-acknowledged frame survives recovery + resume. With
/// a dead shard in the (simulated) fleet, `/readyz` must say `degraded`.
fn run_gateway_leg(
    scale: Scale,
    workers: usize,
    dead_shards: usize,
    stats: &mut DurableStats,
) -> Result<(usize, u64)> {
    let gw = Gateway::start(GatewayConfig::default().workers(workers.max(1)).http_metrics(true))?;
    let addr = gw.local_addr();
    let token = b"smg-local-dev";

    // Per-meter wire: one table frame, then hourly 4-bit windows.
    let history = house_series(scale.seed, 0);
    let codec = codec_builder()?.train(&history)?;
    let table_frame = encode_message(&SensorMessage::Table(codec.table().clone()))?;
    let mut expected: Vec<SymbolicSeries> = Vec::with_capacity(GATEWAY_METERS);
    let mut acked_total = 0u64;
    for m in 0..GATEWAY_METERS {
        let meter = m as u64;
        let mut wire = table_frame.clone();
        let mut series = SymbolicSeries::new(4)?;
        for w in 0..GATEWAY_WINDOWS {
            let rank =
                (sms_core::shard::splitmix64(scale.seed ^ (meter << 8) ^ w as u64) % 16) as u16;
            let symbol = Symbol::from_rank(rank, 4)?;
            let start = (w as i64) * 3600;
            series.push(start, symbol)?;
            wire.extend(encode_message(&SensorMessage::Window(
                sms_core::encoder::EncodedWindow { window_start: start, symbol, samples: 4 },
            ))?);
        }
        let mut conn = TcpStream::connect(addr)
            .map_err(|e| Error::Engine(format!("gateway leg connect: {e}")))?;
        let io = |what: &str, e: std::io::Error| Error::Engine(format!("gateway leg {what}: {e}"));
        conn.write_all(&encode_handshake(meter, token)).map_err(|e| io("handshake", e))?;
        let mut ack = [0u8; 1];
        conn.read_exact(&mut ack).map_err(|e| io("handshake ack", e))?;
        if ack[0] != HANDSHAKE_ACK {
            return Err(Error::Engine(format!("gateway leg: meter {meter} not ACKed")));
        }
        conn.write_all(&wire).map_err(|e| io("stream", e))?;
        conn.shutdown(std::net::Shutdown::Write).ok();
        let mut last = 0u64;
        let mut buf = [0u8; 8];
        while conn.read_exact(&mut buf).is_ok() {
            last = u64::from_le_bytes(buf);
        }
        // 1 table frame + the windows: the stream is clean, all acked.
        if last != (GATEWAY_WINDOWS + 1) as u64 {
            return Err(Error::Engine(format!(
                "gateway leg: meter {meter} acked {last} of {} frames",
                GATEWAY_WINDOWS + 1
            )));
        }
        acked_total += last;
        expected.push(series);
    }

    // A dead storage shard degrades the instance without pulling it out of
    // the load-balancer rotation: /readyz stays 200 but says so.
    gw.set_degraded(dead_shards > 0);
    let mut http = TcpStream::connect(gw.metrics_addr().expect("sidecar enabled"))
        .map_err(|e| Error::Engine(format!("gateway leg readyz connect: {e}")))?;
    http.write_all(b"GET /readyz HTTP/1.1\r\nHost: x\r\n\r\n")
        .map_err(|e| Error::Engine(format!("gateway leg readyz write: {e}")))?;
    let mut readyz = String::new();
    http.read_to_string(&mut readyz)
        .map_err(|e| Error::Engine(format!("gateway leg readyz read: {e}")))?;
    let want = if dead_shards > 0 { "degraded" } else { "ready" };
    if !readyz.starts_with("HTTP/1.1 200") || !readyz.trim_end().ends_with(want) {
        return Err(Error::Engine(format!(
            "gateway leg: /readyz did not report {want}: {readyz:?}"
        )));
    }

    let report = gw.shutdown();

    // Rebuild each meter's decoded windows from the gateway output and
    // push them through a durable store that crashes mid-append.
    let mut records: Vec<(u64, SymbolicSeries)> = Vec::with_capacity(GATEWAY_METERS);
    for (m, want) in expected.iter().enumerate().take(GATEWAY_METERS) {
        let meter = m as u64;
        let msgs = report.output.get(&meter).map(Vec::as_slice).unwrap_or(&[]);
        let mut series = SymbolicSeries::new(4)?;
        for msg in msgs {
            if let SensorMessage::Window(w) = msg {
                series.push(w.window_start, w.symbol)?;
            }
        }
        if series.symbols() != want.symbols() || series.timestamps() != want.timestamps() {
            return Err(Error::Engine(format!(
                "gateway leg: decoded windows for meter {meter} diverge from what was sent"
            )));
        }
        records.push((meter, series));
    }
    let config = DurableConfig::default().group_commit(2);
    // Crash roughly mid-append (past the 5 initialization ops).
    let plan = sms_core::durable::FaultPlan::crash_at(5 + GATEWAY_METERS as u64 / 2, scale.seed);
    let mut storage = FaultStorage::with_plan(plan);
    let mut acked = 0u64;
    let _ = run_workload(&mut storage, config, &records, &mut acked, stats);
    let (mut recovered, _) = DurableStore::open(storage.crash_view(), config)?;
    stats.merge(&recovered.stats());
    let j = recovered.durable_records() as usize;
    if (j as u64) < acked {
        return Err(Error::Engine(format!(
            "gateway leg: {acked} records acknowledged but only {j} recovered"
        )));
    }
    for (house, series) in &records[j..] {
        recovered.append(*house, series)?;
    }
    recovered.commit()?;
    stats.merge(&recovered.stats());
    // Every gateway-acked frame reads back bit-for-bit.
    for (meter, series) in &records {
        let got = recovered.store_mut().read_range(*meter, i64::MIN, i64::MAX)?;
        if got.symbols() != series.symbols() || got.timestamps() != series.timestamps() {
            return Err(Error::Engine(format!(
                "gateway leg: meter {meter}'s acked frames did not survive the crash"
            )));
        }
    }
    Ok((GATEWAY_METERS, acked_total))
}

/// Runs the full crash experiment at `scale.houses` houses.
pub fn run_crash(scale: Scale, shards: usize, workers: usize) -> Result<CrashReport> {
    let records = encode_workload(scale, workers)?;
    let resolution_bits = records.first().map(|(_, s)| s.resolution_bits()).unwrap_or(1);
    let checkpoint_every = (records.len() as u64 / 3).clamp(1, CHECKPOINT_EVERY_MAX);
    let config =
        DurableConfig::default().group_commit(GROUP_COMMIT).checkpoint_every(checkpoint_every);
    let mut totals = DurableStats::default();

    // Uncrashed run: counts the storage ops the sweep must cover and
    // doubles as the full-reference image.
    let mut reference_storage = FaultStorage::new();
    let mut reference_acked = 0u64;
    run_workload(&mut reference_storage, config, &records, &mut reference_acked, &mut totals)?;
    let total_ops = reference_storage.ops();
    if reference_acked != records.len() as u64 {
        return Err(Error::Engine(format!(
            "uncrashed reference only acknowledged {reference_acked} of {} records",
            records.len()
        )));
    }
    let full_image = prefix_image(&records, records.len())?;
    let mut full_reference = SegmentStore::from_bytes(&full_image)?;

    let stride = total_ops.div_ceil(MAX_CRASH_POINTS).max(1);
    let mut injector = FaultInjector::new(scale.seed ^ 0xC0A5_7D1E);
    let mut crash_points = 0usize;
    let mut truncated_reads = 0u64;
    let mut crash_at = 1u64;
    while crash_at <= total_ops {
        truncated_reads += check_crash_point(
            crash_at,
            &mut injector,
            total_ops,
            config,
            &records,
            &mut full_reference,
            &full_image,
            &mut totals,
        )?;
        crash_points += 1;
        crash_at += stride;
    }

    let shards = shards.max(2);
    let (failover_dead_shards, failover_stats) = run_failover_leg(&records, shards, scale.seed)?;
    totals.merge(&failover_stats);
    let shard_failovers = failover_stats.shard_failovers;

    let (gateway_meters, gateway_acked_frames) =
        run_gateway_leg(scale, workers, failover_dead_shards, &mut totals)?;

    // `merge` sums the failover counter like the others; the fleet is the
    // only leg that fails over, so pin it to that leg's count.
    totals.shard_failovers = shard_failovers;
    let stats = EngineStats {
        workers: workers.max(1),
        houses: scale.houses,
        samples_in: (scale.houses * SAMPLES_PER_HOUSE) as u64,
        symbols_out: records.iter().map(|(_, s)| s.len() as u64).sum(),
        durable: Some(totals),
        ..EngineStats::default()
    };

    Ok(CrashReport {
        houses: scale.houses,
        shards,
        workers: workers.max(1),
        records: records.len() as u64,
        total_ops,
        crash_points,
        stride,
        resolution_bits,
        truncated_reads,
        gateway_meters,
        gateway_acked_frames,
        failover_dead_shards,
        stats,
    })
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn small_crash_sweep_verifies_end_to_end() {
        let scale = Scale { houses: 24, ..Scale::quick() };
        let report = run_crash(scale, 3, 2).unwrap();
        assert_eq!(report.records, 24);
        assert_eq!(report.stride, 1, "small runs sweep every op");
        assert_eq!(report.crash_points as u64, report.total_ops);
        assert!(report.truncated_reads > 0);
        assert_eq!(report.failover_dead_shards, 1);
        assert_eq!(report.gateway_acked_frames, (GATEWAY_METERS * (GATEWAY_WINDOWS + 1)) as u64);
        let d = report.stats.durable.as_ref().unwrap();
        assert!(d.recoveries as usize >= report.crash_points);
        assert!(d.shard_failovers >= 1);
        assert!(d.torn_records_dropped > 0, "the sweep must hit torn tails");
        assert!(d.checkpoints > 0, "the sweep must cross checkpoints");
        let json = report.to_json();
        let doc = sms_core::json::parse(&json).unwrap();
        assert_eq!(doc.get("records").and_then(|v| v.as_u64()), Some(24));
        assert!(doc.get("recoveries").and_then(|v| v.as_u64()).unwrap() > 0);
        let rendered = render_crash(&report);
        assert!(rendered.contains("byte-for-byte"), "{rendered}");
        assert!(rendered.contains("degraded"), "{rendered}");
    }

    #[test]
    fn large_runs_stride_and_report_it() {
        assert_eq!(1000u64.div_ceil(MAX_CRASH_POINTS).max(1), 4);
        assert_eq!(100u64.div_ceil(MAX_CRASH_POINTS).max(1), 1);
    }
}
