//! Privacy/utility trade-off experiment (paper §1, §3.1 remark, §4): the
//! classification task doubles as a re-identification attack, so we measure
//! — per alphabet size — how much identifying information symbols leak
//! (mutual information, anonymity-set size) against how useful they remain
//! (re-identification F-measure is reported by the classification
//! experiment; here we report the information-theoretic side).

use crate::prep::{global_table, PAPER_MIN_COVERAGE};
use crate::scale::Scale;
use meterdata::dataset::MeterDataset;
use sms_core::error::Result;
use sms_core::horizontal::horizontal_segmentation;
use sms_core::privacy::{
    expected_anonymity_set, mutual_information_bits, symbol_entropy_bits, PrivacyReport,
};
use sms_core::separators::SeparatorMethod;
use sms_core::symbol::Symbol;
use sms_core::vertical::{aggregate_by_window, Aggregation};

/// Runs the privacy measures over alphabet resolutions 1–4 bits with a
/// global median table (attacker without per-house tables) at hourly
/// aggregation.
pub fn run_privacy(ds: &MeterDataset, scale: Scale) -> Result<Vec<PrivacyReport>> {
    let mut out = Vec::new();
    for bits in 1..=4u8 {
        let table = global_table(ds, SeparatorMethod::Median, bits, scale.training_prefix_secs())?;
        let mut labels: Vec<usize> = Vec::new();
        let mut symbols: Vec<Symbol> = Vec::new();
        let mut sequences: Vec<(usize, Vec<Symbol>)> = Vec::new();
        for (idx, r) in ds.records().iter().enumerate() {
            let hourly = aggregate_by_window(&r.series, 3600, Aggregation::Mean, 1)?;
            let symbolic = horizontal_segmentation(&hourly, &table)?;
            labels.extend(std::iter::repeat_n(idx, symbolic.len()));
            symbols.extend(symbolic.symbols().iter().copied());
            // Day-long windows from complete days only.
            for day in r.series.split_days() {
                if day.1.coverage_seconds(ds.interval_secs()) < PAPER_MIN_COVERAGE {
                    continue;
                }
                let day_hourly = aggregate_by_window(&day.1, 3600, Aggregation::Mean, 1)?;
                let day_sym = horizontal_segmentation(&day_hourly, &table)?;
                sequences.push((idx, day_sym.symbols().to_vec()));
            }
        }
        let entropy_bits = symbol_entropy_bits(&symbols);
        let mi_bits = mutual_information_bits(&labels, &symbols)?;
        let anonymity = expected_anonymity_set(&sequences, 6).unwrap_or(f64::NAN);
        out.push(PrivacyReport { resolution_bits: bits, entropy_bits, mi_bits, anonymity });
    }
    Ok(out)
}

/// Text rendering of the privacy sweep.
pub fn render_privacy(reports: &[PrivacyReport]) -> String {
    let mut s = format!(
        "{:<10} {:>14} {:>18} {:>22}\n",
        "alphabet", "entropy [bit]", "MI(house;sym) [bit]", "anonymity set (6h win)"
    );
    for r in reports {
        s += &format!(
            "{:<10} {:>14.3} {:>18.4} {:>22.2}\n",
            format!("{} sym", 1u32 << r.resolution_bits),
            r.entropy_bits,
            r.mi_bits,
            r.anonymity
        );
    }
    s
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::prep::dataset;

    #[test]
    fn privacy_sweep_shapes() {
        let scale = Scale {
            days: 6,
            interval_secs: 600,
            forest_trees: 4,
            cv_folds: 2,
            seed: 13,
            ..Scale::quick()
        };
        let ds = dataset(scale).unwrap();
        let reports = run_privacy(&ds, scale).unwrap();
        assert_eq!(reports.len(), 4);
        // Entropy grows with resolution; MI (leakage) does not decrease.
        for w in reports.windows(2) {
            assert!(
                w[1].entropy_bits >= w[0].entropy_bits - 1e-9,
                "entropy monotone: {:?}",
                reports
            );
            assert!(w[1].mi_bits >= w[0].mi_bits - 0.05, "leakage grows with detail");
        }
        // Anonymity shrinks (or stays) as resolution grows.
        assert!(
            reports[3].anonymity <= reports[0].anonymity + 1e-9,
            "finer symbols are more identifying: {:?}",
            reports
        );
        let txt = render_privacy(&reports);
        assert!(txt.contains("16 sym"));
    }
}
