//! Shared experiment preparation: dataset generation, lookup-table training
//! (per-house and global), and day-vector construction for the
//! classification experiments.

use crate::scale::Scale;
use meterdata::dataset::MeterDataset;
use meterdata::generator::redd_like;
use sms_core::alphabet::Alphabet;
use sms_core::error::{Error, Result};
use sms_core::lookup::LookupTable;
use sms_core::separators::{SeparatorMethod, SortedSample};
use sms_core::timeseries::SECONDS_PER_DAY;
use sms_core::vertical::{aggregate_by_window, Aggregation};
use sms_ml::data::{Attribute, Instances, Value};
use std::collections::BTreeMap;

/// Generates the REDD-like evaluation dataset at the given scale.
pub fn dataset(scale: Scale) -> Result<MeterDataset> {
    redd_like(scale.seed, scale.days, scale.interval_secs).generate()
}

/// Trains one lookup table per house from each house's first two days
/// (the paper's per-house protocol, used in Figs. 5–6).
pub fn per_house_tables(
    ds: &MeterDataset,
    method: SeparatorMethod,
    bits: u8,
    training_secs: i64,
) -> Result<BTreeMap<u32, LookupTable>> {
    let alphabet = Alphabet::with_resolution(bits)?;
    let mut out = BTreeMap::new();
    for r in ds.records() {
        let head = r.series.head_duration(training_secs);
        if head.is_empty() {
            return Err(Error::EmptyInput("per_house_tables: empty training prefix"));
        }
        out.insert(r.house_id, LookupTable::learn(method, alphabet, &head.values())?);
    }
    Ok(out)
}

/// Trains one global table from the pooled first two days of every house
/// (the `+` variants of Fig. 7 / Table 1: "using statistics over all houses").
pub fn global_table(
    ds: &MeterDataset,
    method: SeparatorMethod,
    bits: u8,
    training_secs: i64,
) -> Result<LookupTable> {
    let alphabet = Alphabet::with_resolution(bits)?;
    let pooled = ds.head_duration(training_secs).pooled_values();
    if pooled.is_empty() {
        return Err(Error::EmptyInput("global_table: empty training prefix"));
    }
    LookupTable::learn(method, alphabet, &pooled)
}

/// Cached training samples for table learning. A house's training prefix
/// depends only on the house and `training_secs` — not on the encoding spec —
/// so the paper's whole grid (3 methods × 2 windows × 4 alphabet sizes) can
/// learn its tables from **one sort per house** (plus one pooled sort)
/// instead of re-sorting the same two days for every cell. Tables produced
/// here are bit-identical to [`per_house_tables`] / [`global_table`].
#[derive(Debug, Clone)]
pub struct TableCache {
    samples: BTreeMap<u32, SortedSample>,
    pooled: SortedSample,
}

impl TableCache {
    /// Sorts every house's training prefix (and the pooled prefix) once.
    pub fn new(ds: &MeterDataset, training_secs: i64) -> Result<Self> {
        let mut samples = BTreeMap::new();
        for r in ds.records() {
            let head = r.series.head_duration(training_secs);
            if head.is_empty() {
                return Err(Error::EmptyInput("per_house_tables: empty training prefix"));
            }
            samples.insert(r.house_id, SortedSample::new(&head.values())?);
        }
        let pooled = ds.head_duration(training_secs).pooled_values();
        if pooled.is_empty() {
            return Err(Error::EmptyInput("global_table: empty training prefix"));
        }
        Ok(TableCache { samples, pooled: SortedSample::new(&pooled)? })
    }

    /// House ids with cached samples (insertion = id order).
    pub fn house_ids(&self) -> Vec<u32> {
        self.samples.keys().copied().collect()
    }

    /// [`per_house_tables`] from the cached sorts.
    pub fn per_house_tables(
        &self,
        method: SeparatorMethod,
        bits: u8,
    ) -> Result<BTreeMap<u32, LookupTable>> {
        let alphabet = Alphabet::with_resolution(bits)?;
        self.samples
            .iter()
            .map(|(&h, s)| LookupTable::learn_from_sample(method, alphabet, s).map(|t| (h, t)))
            .collect()
    }

    /// [`global_table`] from the cached pooled sort.
    pub fn global_table(&self, method: SeparatorMethod, bits: u8) -> Result<LookupTable> {
        LookupTable::learn_from_sample(method, Alphabet::with_resolution(bits)?, &self.pooled)
    }
}

/// Maps house ids to consecutive class indices (insertion order).
pub fn class_indices(ds: &MeterDataset) -> BTreeMap<u32, u32> {
    ds.house_ids().into_iter().enumerate().map(|(i, id)| (id, i as u32)).collect()
}

fn window_count(window_secs: i64) -> usize {
    (SECONDS_PER_DAY / window_secs) as usize
}

/// Builds the symbolic day-vector dataset: one row per complete day, one
/// nominal feature per aggregation window (symbol rank; `Missing` for
/// windows lost to gaps), class = house (paper §3.1).
///
/// `tables` supplies either a per-house table each or — for the global
/// variant — the same table for every house.
pub fn symbolic_day_vectors(
    ds: &MeterDataset,
    window_secs: i64,
    tables: &BTreeMap<u32, LookupTable>,
    min_coverage_secs: i64,
) -> Result<Instances> {
    let classes = class_indices(ds);
    let n_windows = window_count(window_secs);
    let bits = tables
        .values()
        .next()
        .ok_or(Error::EmptyInput("symbolic_day_vectors: no tables"))?
        .resolution_bits();
    let card = 1usize << bits;

    let mut attrs: Vec<Attribute> =
        (0..n_windows).map(|w| Attribute::nominal_indexed(format!("w{w}"), card)).collect();
    attrs.push(Attribute::nominal_indexed("house", classes.len()));
    let class_index = attrs.len() - 1;
    let mut inst = Instances::new(attrs, class_index)
        .map_err(|e| Error::InvalidParameter { name: "instances", reason: e.to_string() })?;

    for day in ds.complete_days(min_coverage_secs) {
        let table = tables.get(&day.house_id).ok_or(Error::InvalidParameter {
            name: "tables",
            reason: format!("no table for house {}", day.house_id),
        })?;
        let agg = aggregate_by_window(&day.series, window_secs, Aggregation::Mean, 1)?;
        let mut row = vec![Value::Missing; n_windows + 1];
        for (t, v) in agg.iter() {
            let w = (t - day.day_start) / window_secs;
            if (0..n_windows as i64).contains(&w) {
                row[w as usize] = Value::Nominal(
                    table.encode_value(v).expect("aggregated values are finite").rank() as u32,
                );
            }
        }
        row[n_windows] = Value::Nominal(classes[&day.house_id]);
        inst.push_row(row)
            .map_err(|e| Error::InvalidParameter { name: "row", reason: e.to_string() })?;
    }
    if inst.is_empty() {
        return Err(Error::EmptyInput("symbolic_day_vectors: no complete days"));
    }
    Ok(inst)
}

/// Builds the raw (numeric) day-vector dataset at the same aggregation
/// (paper §3.1: "raw values were also aggregated, by taking the average over
/// 15 minutes, respectively 1 hour").
pub fn raw_day_vectors(
    ds: &MeterDataset,
    window_secs: i64,
    min_coverage_secs: i64,
) -> Result<Instances> {
    let classes = class_indices(ds);
    let n_windows = window_count(window_secs);
    let mut attrs: Vec<Attribute> =
        (0..n_windows).map(|w| Attribute::numeric(format!("w{w}"))).collect();
    attrs.push(Attribute::nominal_indexed("house", classes.len()));
    let class_index = attrs.len() - 1;
    let mut inst = Instances::new(attrs, class_index)
        .map_err(|e| Error::InvalidParameter { name: "instances", reason: e.to_string() })?;

    for day in ds.complete_days(min_coverage_secs) {
        let agg = aggregate_by_window(&day.series, window_secs, Aggregation::Mean, 1)?;
        let mut row = vec![Value::Missing; n_windows + 1];
        for (t, v) in agg.iter() {
            let w = (t - day.day_start) / window_secs;
            if (0..n_windows as i64).contains(&w) {
                row[w as usize] = Value::Numeric(v);
            }
        }
        row[n_windows] = Value::Nominal(classes[&day.house_id]);
        inst.push_row(row)
            .map_err(|e| Error::InvalidParameter { name: "row", reason: e.to_string() })?;
    }
    if inst.is_empty() {
        return Err(Error::EmptyInput("raw_day_vectors: no complete days"));
    }
    Ok(inst)
}

/// Raw **full-rate** day vectors (the paper's "raw 1sec" row): one numeric
/// feature per native sample slot of the day. Dimensionality is
/// `86 400 / interval`, so this is exactly the configuration the paper found
/// two orders of magnitude slower.
pub fn raw_fullrate_day_vectors(ds: &MeterDataset, min_coverage_secs: i64) -> Result<Instances> {
    raw_day_vectors(ds, ds.interval_secs(), min_coverage_secs)
}

/// The paper's completeness threshold: 20 hours.
pub const PAPER_MIN_COVERAGE: i64 = 20 * 3600;

#[cfg(test)]
mod tests {
    use super::*;

    fn small() -> (Scale, MeterDataset) {
        let scale = Scale {
            days: 4,
            interval_secs: 300,
            forest_trees: 5,
            cv_folds: 2,
            seed: 7,
            ..Scale::quick()
        };
        let ds = dataset(scale).unwrap();
        (scale, ds)
    }

    #[test]
    fn tables_trained_per_house_differ() {
        let (scale, ds) = small();
        let tables =
            per_house_tables(&ds, SeparatorMethod::Median, 4, scale.training_prefix_secs())
                .unwrap();
        assert_eq!(tables.len(), 6);
        // Big house 6 vs small house 2: separators must differ substantially.
        let s6 = tables[&6].separators()[14];
        let s2 = tables[&2].separators()[14];
        assert!(s6 > s2, "house 6 top separator {s6} vs house 2 {s2}");
    }

    #[test]
    fn table_cache_is_bit_identical_to_direct_learning() {
        let (scale, ds) = small();
        let cache = TableCache::new(&ds, scale.training_prefix_secs()).unwrap();
        for method in SeparatorMethod::ALL {
            for bits in 1..=4u8 {
                let direct =
                    per_house_tables(&ds, method, bits, scale.training_prefix_secs()).unwrap();
                let cached = cache.per_house_tables(method, bits).unwrap();
                assert_eq!(direct, cached, "{method} {bits} bits");
                let g_direct =
                    global_table(&ds, method, bits, scale.training_prefix_secs()).unwrap();
                assert_eq!(g_direct, cache.global_table(method, bits).unwrap());
            }
        }
        assert_eq!(cache.house_ids(), ds.house_ids());
    }

    #[test]
    fn global_table_is_shared_statistics() {
        let (scale, ds) = small();
        let g =
            global_table(&ds, SeparatorMethod::Median, 3, scale.training_prefix_secs()).unwrap();
        assert_eq!(g.size(), 8);
    }

    #[test]
    fn symbolic_day_vectors_shape() {
        let (scale, ds) = small();
        let tables =
            per_house_tables(&ds, SeparatorMethod::Median, 2, scale.training_prefix_secs())
                .unwrap();
        let inst = symbolic_day_vectors(&ds, 3600, &tables, PAPER_MIN_COVERAGE).unwrap();
        assert_eq!(inst.attributes().len(), 25, "24 hourly windows + class");
        assert!(inst.len() > 6, "several days across houses: {}", inst.len());
        assert_eq!(inst.num_classes().unwrap(), 6);
        // All feature values within the 4-symbol alphabet.
        for row in inst.rows() {
            for v in &row[..24] {
                if let Value::Nominal(r) = v {
                    assert!(*r < 4);
                }
            }
        }
    }

    #[test]
    fn raw_day_vectors_shape() {
        let (_, ds) = small();
        let inst = raw_day_vectors(&ds, 900, PAPER_MIN_COVERAGE).unwrap();
        assert_eq!(inst.attributes().len(), 97, "96 quarter-hours + class");
        let full = raw_fullrate_day_vectors(&ds, PAPER_MIN_COVERAGE).unwrap();
        assert_eq!(full.attributes().len(), (86_400 / 300 + 1) as usize);
    }

    #[test]
    fn class_indices_are_dense() {
        let (_, ds) = small();
        let c = class_indices(&ds);
        let mut vals: Vec<u32> = c.values().copied().collect();
        vals.sort_unstable();
        assert_eq!(vals, vec![0, 1, 2, 3, 4, 5]);
    }
}
