//! §2.3's sensor→server link made hostile: the `ingest` experiment.
//!
//! The paper motivates symbols by the cost of shipping meter data to a
//! server; this experiment reproduces that link end to end and then attacks
//! it. A synthetic fleet is encoded through the parallel
//! [`FleetStream`] engine (feeding with the hardened
//! [`try_feed`](FleetStream::try_feed) path, so backpressure is counted
//! rather than deadlocking), each meter's table + window messages are
//! serialized to the length-prefixed wire format, a deterministic
//! [`FaultInjector`] corrupts the byte streams (bit flips, truncation,
//! duplication), delivery is split at random mid-frame boundaries, and the
//! server-side [`FleetIngest`] gateway decodes what survives. The
//! [`IngestStats`](sms_core::ingest::IngestStats) counter block lands in
//! [`EngineStats`] JSON, which `repro ingest [--faults]` prints.
//!
//! The injector also owns the *compute-level* fault vocabulary
//! ([`SeriesFault`]): NaN runs, gaps, duplicated sample runs and reset
//! spikes applied to the generated series themselves, which the
//! `repro quality [--faults]` experiment (see [`crate::quality_exp`]) feeds
//! through the sanitizing, panic-isolating fleet engine.

use std::collections::BTreeSet;
use std::time::Instant;

use rand::rngs::StdRng;
use rand::{Rng, RngCore, SeedableRng};

use crate::scale::Scale;
use meterdata::generator::fleet_series;
use sms_core::encoder::SensorMessage;
use sms_core::engine::{EngineConfig, EngineStats, FleetStream, WindowEvent};
use sms_core::error::{Error, Result};
use sms_core::ingest::{FleetIngest, IngestConfig};
use sms_core::pipeline::CodecBuilder;
use sms_core::separators::SeparatorMethod;
use sms_core::timeseries::Sample;
use sms_core::wire::encode_message;

/// One kind of deterministic wire-level fault.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum Fault {
    /// XOR one random bit of one random byte (line noise).
    BitFlip,
    /// Remove a short random byte range (lossy transport, reconnect gaps).
    Truncate,
    /// Re-insert a copy of a short random byte range right after itself
    /// (retransmission without dedup).
    Duplicate,
}

/// All fault kinds, in the order [`FaultInjector::apply_nth`] cycles them.
pub const ALL_FAULTS: [Fault; 3] = [Fault::BitFlip, Fault::Truncate, Fault::Duplicate];

/// Longest byte range a single truncation/duplication touches.
const MAX_FAULT_SPAN: usize = 24;

/// One kind of deterministic sample-level (compute) fault, mirroring the
/// defect taxonomy of [`sms_core::quality`]: these corrupt the *data* a
/// house hands the encoder, where [`Fault`] corrupts the *bytes* it ships.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum SeriesFault {
    /// Overwrite a short run of values with `NaN` (sensor glitch).
    NanRun,
    /// Delete a short run of samples (outage / reporting gap).
    Gap,
    /// Re-insert a copy of a short sample run with identical timestamps
    /// (retransmission without dedup, now at the sample level).
    DuplicateRun,
    /// A meter-reset artifact: one implausibly huge spike followed by a
    /// negative reading.
    ResetSpike,
}

/// All series fault kinds, in the order
/// [`FaultInjector::corrupt_series_nth`] cycles them.
pub const ALL_SERIES_FAULTS: [SeriesFault; 4] =
    [SeriesFault::NanRun, SeriesFault::Gap, SeriesFault::DuplicateRun, SeriesFault::ResetSpike];

/// Longest sample run a single series fault touches.
const MAX_SERIES_SPAN: usize = 8;

/// One kind of deterministic storage-level fault, expressed as a
/// [`sms_core::durable::FaultPlan`] for the durable layer's
/// [`FaultStorage`](sms_core::durable::FaultStorage) backend: where [`Fault`]
/// corrupts bytes *in flight* and [`SeriesFault`] corrupts samples *before
/// encoding*, these corrupt bytes *at rest* — a disk that dies mid-write.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum StorageFault {
    /// The backend fails hard at a seeded mutating call (power loss).
    FailAtOp,
    /// The crashing append persists a seeded prefix of its bytes before
    /// failing (a short write into the log tail).
    ShortWrite,
    /// Like [`StorageFault::ShortWrite`], but the last surviving un-synced
    /// byte is also bit-flipped, so recovery must take the CRC path rather
    /// than the short-record path.
    TornTail,
}

/// All storage fault kinds, in the order
/// [`FaultInjector::storage_plan_nth`] cycles them.
pub const ALL_STORAGE_FAULTS: [StorageFault; 3] =
    [StorageFault::FailAtOp, StorageFault::ShortWrite, StorageFault::TornTail];

/// Longest short-write prefix a storage fault keeps.
const MAX_SHORT_WRITE_KEEP: u64 = 32;

/// Wattage of an injected reset spike — far above any plausible household
/// draw, so the sanitizer's spike policy always sees it.
pub const RESET_SPIKE_WATTS: f64 = 5.0e6;

/// Seeded source of reproducible wire corruption and chunked delivery.
///
/// Every draw comes from one [`StdRng`], so a `(seed, call sequence)` pair
/// always produces the same mutations — failures found by the fuzz tests
/// replay exactly.
#[derive(Debug)]
pub struct FaultInjector {
    rng: StdRng,
}

impl FaultInjector {
    /// Creates an injector with a fully deterministic stream.
    pub fn new(seed: u64) -> Self {
        FaultInjector { rng: StdRng::seed_from_u64(seed) }
    }

    /// Applies `fault` at a seeded position, returning the offset of the
    /// first byte affected (`0` on an empty buffer, which is left alone).
    pub fn apply(&mut self, fault: Fault, wire: &mut Vec<u8>) -> usize {
        if wire.is_empty() {
            return 0;
        }
        match fault {
            Fault::BitFlip => {
                let i = self.rng.gen_range(0..wire.len());
                let bit = self.rng.gen_range(0..8u32);
                wire[i] ^= 1 << bit;
                i
            }
            Fault::Truncate => {
                let i = self.rng.gen_range(0..wire.len());
                let n = self.rng.gen_range(1..=MAX_FAULT_SPAN.min(wire.len() - i));
                wire.drain(i..i + n);
                i
            }
            Fault::Duplicate => {
                let i = self.rng.gen_range(0..wire.len());
                let n = self.rng.gen_range(1..=MAX_FAULT_SPAN.min(wire.len() - i));
                let dup: Vec<u8> = wire[i..i + n].to_vec();
                wire.splice(i + n..i + n, dup);
                i
            }
        }
    }

    /// Applies the `n`-th fault of the cycling schedule
    /// (flip, truncate, duplicate, flip, …); see [`apply`](Self::apply).
    pub fn apply_nth(&mut self, n: u64, wire: &mut Vec<u8>) -> (Fault, usize) {
        let fault = ALL_FAULTS[(n % ALL_FAULTS.len() as u64) as usize];
        (fault, self.apply(fault, wire))
    }

    /// Applies `fault` to `samples` at a seeded position, returning the
    /// index of the first sample affected (`0` on an empty series, which is
    /// left alone). `DuplicateRun` and `NanRun` leave timestamps sorted but
    /// violate the clean-series invariants, so callers must rebuild through
    /// [`sms_core::timeseries::TimeSeries::from_samples_unchecked`].
    pub fn corrupt_series(&mut self, fault: SeriesFault, samples: &mut Vec<Sample>) -> usize {
        if samples.is_empty() {
            return 0;
        }
        match fault {
            SeriesFault::NanRun => {
                let i = self.rng.gen_range(0..samples.len());
                let n = self.rng.gen_range(1..=MAX_SERIES_SPAN.min(samples.len() - i));
                for s in &mut samples[i..i + n] {
                    s.v = f64::NAN;
                }
                i
            }
            SeriesFault::Gap => {
                // Keep at least one sample so the house stays non-empty.
                if samples.len() == 1 {
                    return 0;
                }
                let i = self.rng.gen_range(0..samples.len() - 1);
                let n = self.rng.gen_range(1..=MAX_SERIES_SPAN.min(samples.len() - 1 - i).max(1));
                samples.drain(i..i + n);
                i
            }
            SeriesFault::DuplicateRun => {
                let i = self.rng.gen_range(0..samples.len());
                let n = self.rng.gen_range(1..=MAX_SERIES_SPAN.min(samples.len() - i));
                let dup: Vec<Sample> = samples[i..i + n].to_vec();
                samples.splice(i + n..i + n, dup);
                i
            }
            SeriesFault::ResetSpike => {
                let i = self.rng.gen_range(0..samples.len());
                samples[i].v = RESET_SPIKE_WATTS;
                if i + 1 < samples.len() {
                    samples[i + 1].v = -samples[i + 1].v.abs().max(1.0);
                }
                i
            }
        }
    }

    /// Applies the `n`-th series fault of the cycling schedule
    /// (NaN, gap, duplicate, reset, NaN, …); see
    /// [`corrupt_series`](Self::corrupt_series).
    pub fn corrupt_series_nth(
        &mut self,
        n: u64,
        samples: &mut Vec<Sample>,
    ) -> (SeriesFault, usize) {
        let fault = ALL_SERIES_FAULTS[(n % ALL_SERIES_FAULTS.len() as u64) as usize];
        (fault, self.corrupt_series(fault, samples))
    }

    /// Builds a seeded [`sms_core::durable::FaultPlan`] for `fault`,
    /// crashing at a mutating call drawn from `1..=max_ops` (`max_ops` is
    /// clamped to at least 1). The tear seed comes from the same RNG stream
    /// as every other draw, so a `(seed, call sequence)` pair replays the
    /// exact crash.
    pub fn storage_plan(
        &mut self,
        fault: StorageFault,
        max_ops: u64,
    ) -> sms_core::durable::FaultPlan {
        let op = self.rng.gen_range(1..=max_ops.max(1));
        let mut plan = sms_core::durable::FaultPlan::crash_at(op, self.rng.next_u64());
        match fault {
            StorageFault::FailAtOp => {}
            StorageFault::ShortWrite => {
                plan.short_write_keep = Some(self.rng.gen_range(0..=MAX_SHORT_WRITE_KEEP));
            }
            StorageFault::TornTail => {
                plan.short_write_keep = Some(self.rng.gen_range(0..=MAX_SHORT_WRITE_KEEP));
                plan.corrupt_torn_byte = true;
            }
        }
        plan
    }

    /// Builds the `n`-th storage plan of the cycling schedule
    /// (fail, short-write, torn-tail, fail, …); see
    /// [`storage_plan`](Self::storage_plan).
    pub fn storage_plan_nth(
        &mut self,
        n: u64,
        max_ops: u64,
    ) -> (StorageFault, sms_core::durable::FaultPlan) {
        let fault = ALL_STORAGE_FAULTS[(n % ALL_STORAGE_FAULTS.len() as u64) as usize];
        (fault, self.storage_plan(fault, max_ops))
    }

    /// Draws `count` distinct house indices out of `0..n_houses`
    /// (deterministic per seed; fewer when `count > n_houses`).
    pub fn pick_houses(&mut self, n_houses: usize, count: usize) -> BTreeSet<usize> {
        let mut picked = BTreeSet::new();
        if n_houses == 0 {
            return picked;
        }
        // Rejection sampling keeps draws independent of `count`'s order of
        // magnitude; bounded because count is capped at n_houses.
        let count = count.min(n_houses);
        while picked.len() < count {
            picked.insert(self.rng.gen_range(0..n_houses));
        }
        picked
    }

    /// Splits `total` bytes into random delivery chunk lengths in
    /// `1..=max_chunk` — guaranteed to land mid-frame regularly, which is
    /// what stresses a streaming decoder's buffering.
    pub fn chunk_lens(&mut self, total: usize, max_chunk: usize) -> Vec<usize> {
        let max_chunk = max_chunk.max(1);
        let mut lens = Vec::new();
        let mut remaining = total;
        while remaining > 0 {
            let n = self.rng.gen_range(1..=max_chunk.min(remaining));
            lens.push(n);
            remaining -= n;
        }
        lens
    }
}

/// Outcome of one `ingest` experiment run.
#[derive(Debug, Clone)]
pub struct IngestReport {
    /// Whether the transport was faulted.
    pub faults: bool,
    /// Meters in the fleet.
    pub houses: usize,
    /// Frames serialized sensor-side (tables + windows).
    pub frames_sent: u64,
    /// Faults injected across the fleet's byte streams.
    pub faults_injected: u64,
    /// Messages the server-side gateways decoded.
    pub messages_decoded: u64,
    /// Engine counters with the [`ingest`](EngineStats::ingest) block set.
    pub stats: EngineStats,
}

/// Runs the sensor→wire→fault→server pipeline at `scale`.
pub fn run_ingest(scale: Scale, faults: bool) -> Result<IngestReport> {
    let houses = if scale.days >= 30 { 24 } else { 8 };
    let fleet =
        fleet_series(scale.seed, houses as u32, scale.days.clamp(1, 7), scale.interval_secs)?;

    // Stage 1 — train a shared table, then encode the fleet through the
    // streaming engine using the hardened non-blocking feed path.
    let t_train = Instant::now();
    let codec = CodecBuilder::new()
        .method(SeparatorMethod::Median)
        .alphabet_size(16)?
        .window_secs(3600)
        .train(&fleet[0])?;
    let train_secs = t_train.elapsed().as_secs_f64();

    let config = EngineConfig::with_workers(2).channel_capacity(8);
    let mut stream = FleetStream::spawn(&codec, &config)?;
    let t_encode = Instant::now();
    let mut events: Vec<WindowEvent> = Vec::new();
    for (house, series) in fleet.iter().enumerate() {
        let samples: Vec<_> = series.iter().collect();
        for chunk in samples.chunks(512) {
            loop {
                match stream.try_feed(house, chunk) {
                    Ok(()) => break,
                    Err(Error::WouldBlock) => events.extend(stream.drain()?),
                    Err(e) => return Err(e),
                }
            }
        }
    }
    let samples_in = stream.samples_in();
    let stalls = stream.backpressure_stalls();
    events.extend(stream.finish()?);
    let encode_secs = t_encode.elapsed().as_secs_f64();

    // Stage 2 — serialize each meter's stream: its table first, then every
    // window the engine emitted for it.
    let table_frame = encode_message(&SensorMessage::Table(codec.table().clone()))?;
    let mut wires: Vec<Vec<u8>> = vec![table_frame; houses];
    let mut frames_sent = houses as u64;
    for ev in &events {
        wires[ev.house].extend(encode_message(&SensorMessage::Window(ev.window))?);
        frames_sent += 1;
    }

    // Stage 3 — deterministic corruption, roughly one fault per 1.5 kB.
    let mut injector = FaultInjector::new(scale.seed ^ 0x1B4D_F00D);
    let mut faults_injected = 0u64;
    if faults {
        for wire in &mut wires {
            let n = 1 + (wire.len() / 1500) as u64;
            for _ in 0..n {
                injector.apply_nth(faults_injected, wire);
                faults_injected += 1;
            }
        }
    }

    // Stage 4 — server-side decode through per-meter gateways, delivered in
    // random chunks that split frames mid-header and mid-payload.
    let mut gateway = FleetIngest::new(IngestConfig::default().max_frame_len(1 << 16));
    let mut messages_decoded = 0u64;
    for (house, wire) in wires.iter().enumerate() {
        let mut offset = 0usize;
        for len in injector.chunk_lens(wire.len(), 777) {
            messages_decoded +=
                gateway.ingest(house as u64, &wire[offset..offset + len])?.len() as u64;
            offset += len;
        }
    }

    let mut ingest_stats = gateway.stats();
    ingest_stats.backpressure_stalls = stalls;
    ingest_stats.feed_secs = encode_secs;
    let stats = EngineStats {
        workers: config.workers,
        houses,
        samples_in,
        symbols_out: events.len() as u64,
        train_secs,
        encode_secs,
        ingest: Some(ingest_stats),
        ..Default::default()
    };
    Ok(IngestReport { faults, houses, frames_sent, faults_injected, messages_decoded, stats })
}

/// Human-readable summary printed by `repro ingest`.
pub fn render_ingest(r: &IngestReport) -> String {
    let s = r.stats.ingest.as_ref().expect("run_ingest always sets the ingest block");
    format!(
        "ingest: {} meters, {} samples -> {} frames on the wire (faults: {})\n\
         transport: {} faults injected, {} bytes delivered in mid-frame chunks\n\
         gateway: {} ok, {} corrupt, {} oversized, {} resyncs -> {} messages \
         ({:.1}% frame survival)\n\
         backpressure: {} stalls absorbed by try_feed",
        r.houses,
        r.stats.samples_in,
        r.frames_sent,
        if r.faults { "on" } else { "off" },
        r.faults_injected,
        s.bytes_in,
        s.frames_ok,
        s.frames_corrupt,
        s.frames_oversized,
        s.resyncs,
        r.messages_decoded,
        100.0 * s.frame_success_rate(),
        s.backpressure_stalls,
    )
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn injector_is_deterministic_per_seed() {
        let base: Vec<u8> = (0..=255u8).cycle().take(2000).collect();
        let mutate = |seed: u64| {
            let mut inj = FaultInjector::new(seed);
            let mut wire = base.clone();
            let offsets: Vec<(Fault, usize)> =
                (0..9).map(|n| inj.apply_nth(n, &mut wire)).collect();
            (wire, offsets, inj.chunk_lens(base.len(), 64))
        };
        assert_eq!(mutate(7), mutate(7));
        assert_ne!(mutate(7).0, mutate(8).0);
    }

    #[test]
    fn storage_plans_are_deterministic_and_shaped_per_fault() {
        let plans = |seed: u64| -> Vec<(StorageFault, sms_core::durable::FaultPlan)> {
            let mut inj = FaultInjector::new(seed);
            (0..9).map(|n| inj.storage_plan_nth(n, 100)).collect()
        };
        assert_eq!(plans(7), plans(7));
        assert_ne!(plans(7), plans(8));
        for (i, (fault, plan)) in plans(7).iter().enumerate() {
            assert_eq!(*fault, ALL_STORAGE_FAULTS[i % ALL_STORAGE_FAULTS.len()]);
            let op = plan.crash_at_op.expect("every storage plan crashes");
            assert!((1..=100).contains(&op));
            match fault {
                StorageFault::FailAtOp => {
                    assert_eq!(plan.short_write_keep, None);
                    assert!(!plan.corrupt_torn_byte);
                }
                StorageFault::ShortWrite => {
                    assert!(plan.short_write_keep.unwrap() <= MAX_SHORT_WRITE_KEEP);
                    assert!(!plan.corrupt_torn_byte);
                }
                StorageFault::TornTail => {
                    assert!(plan.short_write_keep.unwrap() <= MAX_SHORT_WRITE_KEEP);
                    assert!(plan.corrupt_torn_byte);
                }
            }
        }
        // max_ops = 0 is clamped, not a panic.
        let mut inj = FaultInjector::new(1);
        assert_eq!(inj.storage_plan(StorageFault::FailAtOp, 0).crash_at_op, Some(1));
    }

    #[test]
    fn injector_faults_change_the_stream_as_advertised() {
        let base: Vec<u8> = (0..=255u8).cycle().take(512).collect();
        let mut inj = FaultInjector::new(1);

        let mut flipped = base.clone();
        inj.apply(Fault::BitFlip, &mut flipped);
        assert_eq!(flipped.len(), base.len());
        assert_eq!(base.iter().zip(&flipped).filter(|(a, b)| a != b).count(), 1);

        let mut truncated = base.clone();
        inj.apply(Fault::Truncate, &mut truncated);
        assert!(truncated.len() < base.len());
        assert!(base.len() - truncated.len() <= MAX_FAULT_SPAN);

        let mut duplicated = base.clone();
        let at = inj.apply(Fault::Duplicate, &mut duplicated);
        assert!(duplicated.len() > base.len());
        let n = duplicated.len() - base.len();
        assert_eq!(duplicated[at..at + n], duplicated[at + n..at + 2 * n]);

        let mut empty = Vec::new();
        assert_eq!(inj.apply(Fault::Truncate, &mut empty), 0);
        assert!(empty.is_empty());
    }

    #[test]
    fn series_faults_corrupt_as_advertised() {
        let base: Vec<Sample> = (0..200).map(|i| Sample::new(i * 60, 100.0 + i as f64)).collect();
        let mut inj = FaultInjector::new(11);

        let mut nans = base.clone();
        let at = inj.corrupt_series(SeriesFault::NanRun, &mut nans);
        assert_eq!(nans.len(), base.len());
        let n_nan = nans.iter().filter(|s| s.v.is_nan()).count();
        assert!((1..=MAX_SERIES_SPAN).contains(&n_nan));
        assert!(nans[at].v.is_nan());

        let mut gapped = base.clone();
        inj.corrupt_series(SeriesFault::Gap, &mut gapped);
        assert!(gapped.len() < base.len());
        assert!(base.len() - gapped.len() <= MAX_SERIES_SPAN);

        let mut duped = base.clone();
        let at = inj.corrupt_series(SeriesFault::DuplicateRun, &mut duped);
        let n = duped.len() - base.len();
        assert!((1..=MAX_SERIES_SPAN).contains(&n));
        assert_eq!(duped[at..at + n], duped[at + n..at + 2 * n]);

        let mut reset = base.clone();
        let at = inj.corrupt_series(SeriesFault::ResetSpike, &mut reset);
        assert_eq!(reset[at].v, RESET_SPIKE_WATTS);
        if at + 1 < reset.len() {
            assert!(reset[at + 1].v < 0.0);
        }

        let mut empty: Vec<Sample> = Vec::new();
        assert_eq!(inj.corrupt_series(SeriesFault::NanRun, &mut empty), 0);
        assert!(empty.is_empty());
    }

    #[test]
    fn pick_houses_is_deterministic_and_bounded() {
        let pick = |seed: u64| FaultInjector::new(seed).pick_houses(24, 5);
        assert_eq!(pick(9), pick(9));
        let houses = pick(9);
        assert_eq!(houses.len(), 5);
        assert!(houses.iter().all(|&h| h < 24));
        assert_eq!(FaultInjector::new(1).pick_houses(3, 99).len(), 3);
        assert!(FaultInjector::new(1).pick_houses(0, 4).is_empty());
    }

    #[test]
    fn chunk_lens_cover_exactly_the_stream() {
        let mut inj = FaultInjector::new(3);
        for total in [1usize, 5, 999, 10_240] {
            let lens = inj.chunk_lens(total, 97);
            assert_eq!(lens.iter().sum::<usize>(), total);
            assert!(lens.iter().all(|&n| (1..=97).contains(&n)));
        }
        assert!(inj.chunk_lens(0, 8).is_empty());
    }

    #[test]
    fn clean_run_loses_nothing_and_reports_counters() {
        let mut scale = Scale::quick();
        scale.days = 2;
        let r = run_ingest(scale, false).unwrap();
        let s = r.stats.ingest.as_ref().unwrap();
        assert_eq!(r.faults_injected, 0);
        assert_eq!(s.frames_corrupt + s.frames_oversized + s.resyncs, 0);
        assert_eq!(s.frames_ok, r.frames_sent);
        assert_eq!(r.messages_decoded, r.frames_sent);
        let json = r.stats.to_json();
        assert!(json.contains("\"ingest\""), "{json}");
        assert!(json.contains("backpressure_stalls"), "{json}");
    }

    #[test]
    fn faulted_run_survives_and_recovers_most_frames() {
        let mut scale = Scale::quick();
        scale.days = 2;
        let r = run_ingest(scale, true).unwrap();
        let s = r.stats.ingest.as_ref().unwrap();
        assert!(r.faults_injected > 0);
        assert!(s.frames_corrupt + s.frames_oversized > 0, "{s:?}");
        assert!(s.resyncs > 0);
        // A handful of localized faults must not take down the stream.
        assert!(s.frame_success_rate() > 0.8, "expected most frames to survive: {s:?}");
        let rendered = render_ingest(&r);
        assert!(rendered.contains("faults: on"));
        assert!(rendered.contains("stalls"));
    }
}
