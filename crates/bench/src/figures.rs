//! The paper's exploratory figures: Fig. 1 (recursive symbol construction),
//! Fig. 2 (power-level distribution), Fig. 3 (normalization destroys the
//! consumer-size signal), Fig. 4 (accumulative statistics convergence), and
//! the §2.3 compression table.

use crate::scale::Scale;
use meterdata::dataset::MeterDataset;
use sms_core::alphabet::Alphabet;
use sms_core::compression::day_report;
use sms_core::error::{Error, Result};
use sms_core::lookup::LookupTable;
use sms_core::sax::{euclidean, z_normalize};
use sms_core::separators::SeparatorMethod;
use sms_core::stats::{Histogram, LogNormalFit, OrderedMultiset, RunningMoments};

/// Fig. 1: the recursive division of the `[0, max]` range into
/// variable-length binary symbols, rendered as one line per symbol.
pub fn fig1_symbol_tree(max_watts: f64, max_bits: u8) -> Result<String> {
    if !(max_watts.is_finite() && max_watts > 0.0) {
        return Err(Error::InvalidParameter {
            name: "max_watts",
            reason: "must be positive and finite".to_string(),
        });
    }
    let mut s = format!("Recursive symbol construction over [0, {max_watts}] W\n");
    for bits in 1..=max_bits {
        let alphabet = Alphabet::with_resolution(bits)?;
        let seps = sms_core::separators::uniform_separators(max_watts, alphabet.size())?;
        let table = LookupTable::custom(&seps, 0.0, max_watts)?;
        debug_assert_eq!(table.alphabet(), alphabet);
        s += &format!("resolution {bits} bit:\n");
        for sym in alphabet.symbols() {
            let (lo, hi) = table.range_of(sym)?;
            s += &format!("  {:<5} ({:>6.1}, {:>6.1}] W\n", sym.to_string(), lo.max(0.0), hi);
        }
    }
    Ok(s)
}

/// Fig. 2 result: the power-level histogram and its log-normal fit.
#[derive(Debug, Clone)]
pub struct Fig2 {
    /// `(bin lower edge, count)` — the paper uses 100 W bins to 2400 W.
    pub bins: Vec<(f64, u64)>,
    /// Observations beyond the last bin.
    pub overflow: u64,
    /// Log-normal fit over the positive values.
    pub fit: LogNormalFit,
    /// Kolmogorov–Smirnov distance of the fit.
    pub ks: f64,
}

/// Runs Fig. 2 on one house's native-rate series.
pub fn fig2_distribution(ds: &MeterDataset, house: u32) -> Result<Fig2> {
    let series = ds
        .house(house)
        .ok_or(Error::InvalidParameter { name: "house", reason: format!("no house {house}") })?;
    let values = series.values();
    if values.is_empty() {
        return Err(Error::EmptyInput("fig2_distribution"));
    }
    let mut h = Histogram::new(100.0, 24)?;
    for &v in &values {
        h.push(v);
    }
    let fit = LogNormalFit::fit(&values)?;
    let ks = fit.ks_statistic(&values)?;
    Ok(Fig2 { bins: h.edges_and_counts().collect(), overflow: h.overflow(), fit, ks })
}

impl Fig2 {
    /// Text rendering.
    pub fn render(&self) -> String {
        let mut s = String::from("Distribution of power levels (100 W bins)\n");
        let max = self.bins.iter().map(|&(_, c)| c).max().unwrap_or(1).max(1);
        for &(edge, count) in &self.bins {
            let bar = "#".repeat((count * 48 / max) as usize);
            s += &format!("{:>6.0} W {:>10} {bar}\n", edge, count);
        }
        s += &format!("overflow (≥ 2400 W): {}\n", self.overflow);
        s += &format!(
            "log-normal fit: mu={:.3} sigma={:.3} (n={}, KS={:.3})\n",
            self.fit.mu, self.fit.sigma, self.fit.n, self.ks
        );
        s
    }
}

/// Fig. 3 result: pairwise distances before and after z-normalization for
/// the four synthetic consumers A–D (A,B big; C,D small; A,C share shape).
#[derive(Debug, Clone)]
pub struct Fig3 {
    /// Raw-space distances: (A,B), (A,C), (B,D), (C,D).
    pub raw: [f64; 4],
    /// z-normalized distances in the same order.
    pub normalized: [f64; 4],
}

/// Builds the four consumers and measures both groupings.
pub fn fig3_normalization() -> Result<Fig3> {
    let n = 96;
    let shape1: Vec<f64> = (0..n).map(|i| (i as f64 / 8.0).sin()).collect();
    let shape2: Vec<f64> = (0..n).map(|i| (i as f64 / 8.0).cos()).collect();
    let a: Vec<f64> = shape1.iter().map(|v| 650.0 + 80.0 * v).collect();
    let b: Vec<f64> = shape2.iter().map(|v| 630.0 + 80.0 * v).collect();
    let c: Vec<f64> = shape1.iter().map(|v| 65.0 + 8.0 * v).collect();
    let d: Vec<f64> = shape2.iter().map(|v| 63.0 + 8.0 * v).collect();
    let dist = |x: &[f64], y: &[f64]| euclidean(x, y);
    let zdist = |x: &[f64], y: &[f64]| euclidean(&z_normalize(x), &z_normalize(y));
    Ok(Fig3 {
        raw: [dist(&a, &b)?, dist(&a, &c)?, dist(&b, &d)?, dist(&c, &d)?],
        normalized: [zdist(&a, &b)?, zdist(&a, &c)?, zdist(&b, &d)?, zdist(&c, &d)?],
    })
}

impl Fig3 {
    /// Whether the raw space groups by size (A~B, C~D closer than cross pairs).
    pub fn raw_groups_by_size(&self) -> bool {
        self.raw[0] < self.raw[1] && self.raw[3] < self.raw[1]
    }

    /// Whether the normalized space groups by shape (A~C, B~D).
    pub fn normalized_groups_by_shape(&self) -> bool {
        self.normalized[1] < self.normalized[0] && self.normalized[2] < self.normalized[0]
    }

    /// Text rendering.
    pub fn render(&self) -> String {
        format!(
            "Pairwise Euclidean distances (consumers A,B big; C,D small; A/C same shape)\n\
             pair      raw     z-normalized\n\
             A-B   {:>8.1} {:>12.2}\n\
             A-C   {:>8.1} {:>12.2}\n\
             B-D   {:>8.1} {:>12.2}\n\
             C-D   {:>8.1} {:>12.2}\n\
             raw groups by consumer size: {}\n\
             z-normalized groups by shape: {}\n",
            self.raw[0],
            self.normalized[0],
            self.raw[1],
            self.normalized[1],
            self.raw[2],
            self.normalized[2],
            self.raw[3],
            self.normalized[3],
            self.raw_groups_by_size(),
            self.normalized_groups_by_shape(),
        )
    }
}

/// Fig. 4 result: accumulative mean / median / distinct-median of one
/// house's stream, sampled every `report_every` observations.
#[derive(Debug, Clone)]
pub struct Fig4 {
    /// `(elapsed_seconds, mean, median, distinctmedian)` series.
    pub series: Vec<(i64, f64, f64, f64)>,
}

/// Runs Fig. 4 over `days` days of one house.
pub fn fig4_statistics(
    ds: &MeterDataset,
    house: u32,
    days: i64,
    report_every: usize,
) -> Result<Fig4> {
    let series = ds
        .house(house)
        .ok_or(Error::InvalidParameter { name: "house", reason: format!("no house {house}") })?;
    let window = series.head_duration(days * 86_400);
    if window.is_empty() {
        return Err(Error::EmptyInput("fig4_statistics"));
    }
    let report_every = report_every.max(1);
    let mut moments = RunningMoments::new();
    let mut ms = OrderedMultiset::new();
    let mut out = Vec::new();
    let t0 = window.start().expect("non-empty");
    for (i, (t, v)) in window.iter().enumerate() {
        moments.push(v);
        ms.insert(v)?;
        if (i + 1) % report_every == 0 {
            out.push((
                t - t0,
                moments.mean().expect("non-empty"),
                ms.median().expect("non-empty"),
                ms.distinct_median().expect("non-empty"),
            ));
        }
    }
    Ok(Fig4 { series: out })
}

impl Fig4 {
    /// Relative drift of each statistic over the final quarter of the run —
    /// small values support the paper's "statistics start to converge after
    /// day one".
    pub fn final_quarter_drift(&self) -> (f64, f64, f64) {
        let n = self.series.len();
        if n < 4 {
            return (f64::NAN, f64::NAN, f64::NAN);
        }
        let q = &self.series[3 * n / 4..];
        let drift = |sel: fn(&(i64, f64, f64, f64)) -> f64| {
            let first = sel(&q[0]);
            let last = sel(&q[q.len() - 1]);
            if first.abs() < 1e-12 {
                return 0.0;
            }
            ((last - first) / first).abs()
        };
        (drift(|r| r.1), drift(|r| r.2), drift(|r| r.3))
    }

    /// Text rendering.
    pub fn render(&self) -> String {
        let mut s =
            format!("{:>10} {:>10} {:>10} {:>14}\n", "t [s]", "mean", "median", "distinctmedian");
        for &(t, mean, median, dm) in &self.series {
            s += &format!("{:>10} {:>10.1} {:>10.1} {:>14.1}\n", t, mean, median, dm);
        }
        s
    }
}

/// §2.3 compression table over the window × alphabet grid.
pub fn compression_table(ds: &MeterDataset, scale: Scale) -> Result<String> {
    let mut s = format!(
        "{:<18} {:>10} {:>12} {:>14} {:>16}\n",
        "configuration", "sym bits/d", "ratio", "amortized(30d)", "orders of magn."
    );
    // Lookup-table wire cost measured from a real trained table.
    for window in [900u64, 3600] {
        for k in [2usize, 4, 8, 16] {
            let table = {
                let house = ds.records().first().ok_or(Error::EmptyInput("compression"))?;
                let head = house.series.head_duration(scale.training_prefix_secs());
                LookupTable::learn(
                    SeparatorMethod::Median,
                    Alphabet::with_size(k)?,
                    &head.values(),
                )?
            };
            let table_bits = (table.wire_size_bytes() * 8) as u64;
            let r = day_report(1, window, k, table_bits, 30)?;
            let label = format!("{}m × {k} sym", window / 60);
            s += &format!(
                "{:<18} {:>10} {:>12.0} {:>14.0} {:>16.1}\n",
                label,
                r.symbol_bits(),
                r.ratio(),
                r.amortized_ratio(),
                r.orders_of_magnitude()
            );
        }
    }
    s += "(raw reference: 1 Hz × 64-bit doubles = 5 529 600 bits/day ≈ 675 kB)\n";
    Ok(s)
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::prep::dataset;

    fn small_ds() -> MeterDataset {
        dataset(Scale {
            days: 3,
            interval_secs: 60,
            forest_trees: 4,
            cv_folds: 2,
            seed: 11,
            ..Scale::quick()
        })
        .unwrap()
    }

    #[test]
    fn fig1_renders_the_tree() {
        let s = fig1_symbol_tree(800.0, 3).unwrap();
        assert!(s.contains("resolution 1 bit"));
        assert!(s.contains("resolution 3 bit"));
        assert!(s.contains("000"));
        assert!(s.contains("111"));
        assert!(fig1_symbol_tree(0.0, 3).is_err());
    }

    #[test]
    fn fig2_shows_right_skew_and_fits() {
        let ds = small_ds();
        let f = fig2_distribution(&ds, 1).unwrap();
        assert_eq!(f.bins.len(), 24);
        // Mass concentrates in the low bins (log-normal-ish shape).
        let low: u64 = f.bins[..6].iter().map(|&(_, c)| c).sum();
        let high: u64 = f.bins[18..].iter().map(|&(_, c)| c).sum();
        assert!(low > high * 3, "low bins {low} vs high bins {high}");
        assert!(f.fit.sigma > 0.3, "broad spread: sigma {}", f.fit.sigma);
        assert!(f.ks < 0.35, "roughly log-normal: KS {}", f.ks);
        assert!(f.render().contains("log-normal fit"));
        assert!(fig2_distribution(&ds, 99).is_err());
    }

    #[test]
    fn fig3_reproduces_the_grouping_flip() {
        let f = fig3_normalization().unwrap();
        assert!(f.raw_groups_by_size(), "{:?}", f.raw);
        assert!(f.normalized_groups_by_shape(), "{:?}", f.normalized);
        assert!(f.render().contains("A-B"));
    }

    #[test]
    fn fig4_statistics_converge() {
        // Finer sampling than the other tests: the distinct-value set needs
        // volume to saturate (1 W quantization keeps it finite).
        let ds = dataset(Scale {
            days: 3,
            interval_secs: 20,
            forest_trees: 4,
            cv_folds: 2,
            seed: 11,
            ..Scale::quick()
        })
        .unwrap();
        let f = fig4_statistics(&ds, 1, 3, 2000).unwrap();
        assert!(f.series.len() > 4);
        let (dm, dmed, ddm) = f.final_quarter_drift();
        assert!(dm < 0.2, "mean drift {dm}");
        assert!(dmed < 0.25, "median drift {dmed}");
        // Distinct-median converges more slowly by construction — new rare
        // values keep entering the set — so the bound is looser.
        assert!(ddm < 0.5, "distinct-median drift {ddm}");
        assert!(f.render().contains("distinctmedian"));
    }

    #[test]
    fn compression_table_reports_three_orders() {
        let ds = small_ds();
        let scale = Scale {
            days: 3,
            interval_secs: 60,
            forest_trees: 4,
            cv_folds: 2,
            seed: 11,
            ..Scale::quick()
        };
        let s = compression_table(&ds, scale).unwrap();
        assert!(s.contains("15m × 16 sym"));
        // The paper's flagship configuration compresses by ≥3 orders of magnitude.
        let line = s.lines().find(|l| l.starts_with("15m × 16 sym")).unwrap();
        let last: f64 = line.split_whitespace().last().unwrap().parse().unwrap();
        assert!(last >= 3.0, "orders of magnitude: {last}");
    }
}
