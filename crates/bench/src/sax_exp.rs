//! SAX-vs-paper-symbols classification — making the paper's §2.2/Fig. 3
//! argument executable: "individual normalization per house would not allow
//! us to differentiate big consumers from the small ones". We encode the
//! same day-vectors three ways and run the same classifier:
//!
//! * paper symbols (per-house median table — no normalization);
//! * SAX words (per-day z-normalization + Gaussian breakpoints, the
//!   standard SAX pipeline the paper declined to adopt);
//! * SAX words *without* z-normalization (ablating just the normalization
//!   step while keeping Gaussian breakpoints).

use crate::classification::{
    cell_from_cv, run_symbolic, Cell, ClassifierKind, EncodingSpec, TableMode, CV_RUNS,
};
use crate::prep::{class_indices, PAPER_MIN_COVERAGE};
use crate::scale::Scale;
use meterdata::dataset::MeterDataset;
use sms_core::error::{Error, Result};
use sms_core::sax::{gaussian_breakpoints, z_normalize};
use sms_core::separators::SeparatorMethod;
use sms_core::vertical::{aggregate_by_window, Aggregation};
use sms_ml::data::{Attribute, Instances, Value};
use sms_ml::eval::cross_validate_repeated_parallel;

/// Builds day-vectors of SAX letters: each day is aggregated to
/// `86 400 / window_secs` segments, optionally z-normalized *within the
/// day* (SAX's protocol), then quantized with Gaussian breakpoints into
/// `k` letters.
pub fn sax_day_vectors(
    ds: &MeterDataset,
    window_secs: i64,
    k: usize,
    normalize: bool,
) -> Result<Instances> {
    let classes = class_indices(ds);
    let n_windows = (86_400 / window_secs) as usize;
    let breakpoints = gaussian_breakpoints(k)?;

    let mut attrs: Vec<Attribute> =
        (0..n_windows).map(|w| Attribute::nominal_indexed(format!("w{w}"), k)).collect();
    attrs.push(Attribute::nominal_indexed("house", classes.len()));
    let class_index = attrs.len() - 1;
    let mut inst = Instances::new(attrs, class_index)
        .map_err(|e| Error::InvalidParameter { name: "instances", reason: e.to_string() })?;

    // Global standardization stats for the non-normalized variant (Gaussian
    // breakpoints expect roughly standardized input).
    let mut all = Vec::new();
    if !normalize {
        for day in ds.complete_days(PAPER_MIN_COVERAGE) {
            let agg = aggregate_by_window(&day.series, window_secs, Aggregation::Mean, 1)?;
            all.extend(agg.values());
        }
    }
    let (g_mean, g_std) = if all.is_empty() {
        (0.0, 1.0)
    } else {
        let m = all.iter().sum::<f64>() / all.len() as f64;
        let v = all.iter().map(|x| (x - m) * (x - m)).sum::<f64>() / all.len() as f64;
        (m, v.sqrt().max(1e-9))
    };

    for day in ds.complete_days(PAPER_MIN_COVERAGE) {
        let agg = aggregate_by_window(&day.series, window_secs, Aggregation::Mean, 1)?;
        if agg.is_empty() {
            continue;
        }
        let z: Vec<f64> = if normalize {
            z_normalize(&agg.values())
        } else {
            agg.values().iter().map(|v| (v - g_mean) / g_std).collect()
        };
        let mut row = vec![Value::Missing; n_windows + 1];
        for ((t, _), zv) in agg.iter().zip(&z) {
            let w = (t - day.day_start) / window_secs;
            if (0..n_windows as i64).contains(&w) {
                let rank = breakpoints.partition_point(|&b| b < *zv) as u32;
                row[w as usize] = Value::Nominal(rank);
            }
        }
        row[n_windows] = Value::Nominal(classes[&day.house_id]);
        inst.push_row(row)
            .map_err(|e| Error::InvalidParameter { name: "row", reason: e.to_string() })?;
    }
    if inst.is_empty() {
        return Err(Error::EmptyInput("sax_day_vectors: no complete days"));
    }
    Ok(inst)
}

/// Outcome of the SAX comparison: same classifier, three encodings.
#[derive(Debug, Clone)]
pub struct SaxComparison {
    /// Paper's per-house median symbols.
    pub paper_symbols: Cell,
    /// Standard SAX (per-day z-normalization).
    pub sax_normalized: Cell,
    /// SAX breakpoints without per-day normalization.
    pub sax_unnormalized: Cell,
}

/// Runs the comparison at hourly aggregation, k = 16, Naive Bayes.
/// All three encodings use the same repeated-CV protocol as the grid
/// experiments; `workers` parallelizes the folds (0 = all cores).
pub fn run_sax_comparison(
    ds: &MeterDataset,
    scale: Scale,
    workers: usize,
) -> Result<SaxComparison> {
    let kind = ClassifierKind::NaiveBayes;
    let spec = EncodingSpec { method: SeparatorMethod::Median, window_secs: 3600, bits: 4 };
    let paper_symbols = run_symbolic(ds, scale, spec, TableMode::PerHouse, kind, workers)?;

    let run_sax = |normalize: bool| -> Result<Cell> {
        let inst = sax_day_vectors(ds, 3600, 16, normalize)?;
        let cv = cross_validate_repeated_parallel(
            || kind.build(scale),
            &inst,
            scale.cv_folds,
            scale.seed,
            CV_RUNS,
            workers,
        )
        .map_err(|e| Error::InvalidParameter { name: "cv", reason: e.to_string() })?;
        Ok(cell_from_cv(&cv, inst.len()))
    };
    Ok(SaxComparison {
        paper_symbols,
        sax_normalized: run_sax(true)?,
        sax_unnormalized: run_sax(false)?,
    })
}

/// Text rendering.
pub fn render_sax_comparison(c: &SaxComparison) -> String {
    format!(
        "House re-identification, hourly day-vectors, k = 16, Naive Bayes\n\
         {:<44} {:>10}\n\
         {:<44} {:>10.3}\n\
         {:<44} {:>10.3}\n\
         {:<44} {:>10.3}\n\
         (paper §2.2/Fig. 3: per-day z-normalization erases the consumer-size\n\
          signal, so standard SAX should trail both unnormalized encodings)\n",
        "encoding",
        "F-measure",
        "paper symbols (median, per-house)",
        c.paper_symbols.f_measure,
        "SAX (z-normalized per day)",
        c.sax_normalized.f_measure,
        "SAX breakpoints, no normalization",
        c.sax_unnormalized.f_measure,
    )
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::prep::dataset;

    #[test]
    fn sax_day_vectors_shape() {
        let scale = Scale {
            days: 6,
            interval_secs: 300,
            forest_trees: 4,
            cv_folds: 3,
            seed: 29,
            ..Scale::quick()
        };
        let ds = dataset(scale).unwrap();
        let inst = sax_day_vectors(&ds, 3600, 16, true).unwrap();
        assert_eq!(inst.attributes().len(), 25);
        assert!(inst.len() > 10);
        for row in inst.rows() {
            for v in &row[..24] {
                if let Value::Nominal(r) = v {
                    assert!(*r < 16);
                }
            }
        }
    }

    #[test]
    fn normalization_hurts_reidentification() {
        // The executable version of the paper's Fig. 3 argument.
        let scale = Scale {
            days: 10,
            interval_secs: 300,
            forest_trees: 6,
            cv_folds: 5,
            seed: 29,
            ..Scale::quick()
        };
        let ds = dataset(scale).unwrap();
        let c = run_sax_comparison(&ds, scale, 1).unwrap();
        assert!(
            c.paper_symbols.f_measure > c.sax_normalized.f_measure,
            "paper symbols {} must beat z-normalized SAX {}",
            c.paper_symbols.f_measure,
            c.sax_normalized.f_measure
        );
        assert!(
            c.sax_unnormalized.f_measure > c.sax_normalized.f_measure,
            "removing normalization should recover signal: {} vs {}",
            c.sax_unnormalized.f_measure,
            c.sax_normalized.f_measure
        );
        let txt = render_sax_comparison(&c);
        assert!(txt.contains("SAX"));
    }
}
