//! The forecasting experiment (paper §3.2, Figs. 8–9): next-day hourly load
//! forecasting per house — symbolic forecasting (classifier over 12 lag
//! symbols, decoded via range centers) versus real-value SVR — measured by
//! MAE. House 5 is skipped for lack of data, exactly as in the paper.

use crate::prep::per_house_tables;
use crate::scale::Scale;
use meterdata::dataset::MeterDataset;
use sms_core::error::{Error, Result};
use sms_core::lookup::{LookupTable, SymbolSemantics};
use sms_core::separators::SeparatorMethod;
use sms_core::symbol::Symbol;
use sms_core::timeseries::TimeSeries;
use sms_core::vertical::{aggregate_by_window, Aggregation};
use sms_ml::classifier::{Classifier, Regressor};
use sms_ml::forecast::{real_forecast, symbolic_forecast};
use sms_ml::forest::RandomForest;
use sms_ml::markov::NgramPredictor;
use sms_ml::naive_bayes::NaiveBayes;
use sms_ml::svm::SvrRegressor;

/// Paper protocol constants.
pub mod protocol {
    /// Lag window: "lag attributes of length 12" (§3.2).
    pub const LAGS: usize = 12;
    /// Alphabet size 16 (§3.2: "using alphabet of length 16").
    pub const BITS: u8 = 4;
    /// Training horizon: "1 week hourly consumption data as training".
    pub const TRAIN_HOURS: usize = 7 * 24;
    /// Test horizon: "the next day hourly consumption data for testing".
    pub const TEST_HOURS: usize = 24;
}

/// Finds the first span of `n` hourly aggregates containing no missing-hour
/// run longer than `max_fill` hours, filling the short holes by linear
/// interpolation between their neighbours. The paper's REDD data has short
/// telemetry gaps too; only chronically gappy houses (house 5) fail this.
pub fn hourly_span_with_fill(series: &TimeSeries, n: usize, max_fill: usize) -> Option<Vec<f64>> {
    let hourly = aggregate_by_window(series, 3600, Aggregation::Mean, 1).ok()?;
    if hourly.is_empty() || n == 0 {
        return None;
    }
    let ts = hourly.timestamps();
    let vs = hourly.values();
    let t0 = ts[0];
    let hours = ((ts[ts.len() - 1] - t0) / 3600 + 1) as usize;
    let mut grid: Vec<Option<f64>> = vec![None; hours];
    for (t, v) in ts.iter().zip(vs) {
        grid[((t - t0) / 3600) as usize] = Some(v);
    }
    // Slide a window of n hours; accept the first without a long hole.
    'outer: for start in 0..=hours.saturating_sub(n) {
        let w = &grid[start..start + n];
        if w[0].is_none() || w[n - 1].is_none() {
            continue;
        }
        let mut run = 0usize;
        for cell in w {
            if cell.is_none() {
                run += 1;
                if run > max_fill {
                    continue 'outer;
                }
            } else {
                run = 0;
            }
        }
        // Fill holes by linear interpolation.
        let mut out: Vec<f64> = Vec::with_capacity(n);
        let mut i = 0usize;
        while i < n {
            match w[i] {
                Some(v) => {
                    out.push(v);
                    i += 1;
                }
                None => {
                    let prev = out[out.len() - 1];
                    let mut j = i;
                    while w[j].is_none() {
                        j += 1;
                    }
                    let next = w[j].expect("window ends on a value");
                    let span = (j - i + 1) as f64;
                    for step in 0..(j - i) {
                        out.push(prev + (next - prev) * (step as f64 + 1.0) / span);
                    }
                    i = j;
                }
            }
        }
        return Some(out);
    }
    None
}

/// Finds the first span of `n` *consecutive* hourly aggregates (no gaps) in
/// a series, returning the hourly values.
pub fn consecutive_hourly_span(series: &TimeSeries, n: usize) -> Option<Vec<f64>> {
    let hourly = aggregate_by_window(series, 3600, Aggregation::Mean, 1).ok()?;
    let ts = hourly.timestamps();
    let vs = hourly.values();
    if ts.len() < n {
        return None;
    }
    let mut run_start = 0usize;
    for i in 1..=ts.len() {
        let contiguous = i < ts.len() && ts[i] - ts[i - 1] == 3600;
        if i - run_start >= n {
            return Some(vs[run_start..run_start + n].to_vec());
        }
        if !contiguous {
            run_start = i;
        }
    }
    None
}

/// Which symbolic classifier drives the forecast.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum ForecastModel {
    /// Fig. 8: Naive Bayes over lag symbols.
    NaiveBayes,
    /// Fig. 9: Random Forest over lag symbols.
    RandomForest,
    /// Extension: stupid-backoff n-gram model over lag symbols (the
    /// symbolic-native forecaster the paper's "any classification
    /// algorithm" remark invites).
    Markov,
}

impl ForecastModel {
    fn factory(self, scale: Scale) -> impl Fn() -> Box<dyn Classifier> {
        move || -> Box<dyn Classifier> {
            match self {
                ForecastModel::NaiveBayes => Box::new(NaiveBayes::new()),
                ForecastModel::RandomForest => {
                    Box::new(RandomForest::new(scale.forest_trees, scale.seed))
                }
                ForecastModel::Markov => Box::new(NgramPredictor::new(4)),
            }
        }
    }

    /// Display name.
    pub fn name(self) -> &'static str {
        match self {
            ForecastModel::NaiveBayes => "Naive Bayes",
            ForecastModel::RandomForest => "Random Forest",
            ForecastModel::Markov => "4-gram (stupid backoff)",
        }
    }
}

/// One house's Fig. 8/9 bars: MAE per encoding plus the raw SVR bar.
#[derive(Debug, Clone)]
pub struct HouseForecast {
    /// House id.
    pub house_id: u32,
    /// Raw-value SVR MAE (watts).
    pub raw_mae: f64,
    /// `(method, MAE)` for distinctmedian, median, uniform.
    pub symbolic_mae: Vec<(SeparatorMethod, f64)>,
}

/// A full figure: one [`HouseForecast`] per eligible house.
#[derive(Debug, Clone)]
pub struct ForecastFigure {
    /// Classifier driving the symbolic forecasts.
    pub model: ForecastModel,
    /// Per-house results (houses with insufficient data skipped).
    pub houses: Vec<HouseForecast>,
    /// Houses skipped for lack of contiguous data (paper: house 5).
    pub skipped: Vec<u32>,
}

impl ForecastFigure {
    /// Runs the figure over all houses of the dataset.
    pub fn run(ds: &MeterDataset, scale: Scale, model: ForecastModel) -> Result<ForecastFigure> {
        let needed = protocol::TRAIN_HOURS + protocol::TEST_HOURS;
        let mut houses = Vec::new();
        let mut skipped = Vec::new();

        // Per-house tables at k = 16, trained on the first two days.
        let mut tables = std::collections::BTreeMap::new();
        for method in SeparatorMethod::ALL {
            tables.insert(
                method.name(),
                per_house_tables(ds, method, protocol::BITS, scale.training_prefix_secs())?,
            );
        }

        for r in ds.records() {
            let Some(hours) = hourly_span_with_fill(&r.series, needed, 3) else {
                skipped.push(r.house_id);
                continue;
            };
            let (train_vals, test_vals) = hours.split_at(protocol::TRAIN_HOURS);

            // Raw-value SVR forecast.
            let svr_factory = || -> Box<dyn Regressor> {
                let mut m = SvrRegressor::new();
                m.c = 10.0;
                Box::new(m)
            };
            let raw = real_forecast(svr_factory, train_vals, test_vals, protocol::LAGS)
                .map_err(to_core)?;
            let raw_mae = raw.mae().map_err(to_core)?;

            let mut symbolic_mae = Vec::new();
            for method in SeparatorMethod::ALL {
                let table = &tables[method.name()][&r.house_id];
                let encode = |vals: &[f64]| -> Vec<u16> {
                    vals.iter()
                        .map(|&v| {
                            table.encode_value(v).expect("train/test values are finite").rank()
                        })
                        .collect()
                };
                let train_ranks = encode(train_vals);
                let test_ranks = encode(test_vals);
                let decode = |rank: u16| decode_center(table, rank);
                let result = symbolic_forecast(
                    model.factory(scale),
                    &train_ranks,
                    &test_ranks,
                    test_vals,
                    1usize << protocol::BITS,
                    protocol::LAGS,
                    decode,
                )
                .map_err(to_core)?;
                symbolic_mae.push((method, result.mae().map_err(to_core)?));
            }
            houses.push(HouseForecast { house_id: r.house_id, raw_mae, symbolic_mae });
        }
        if houses.is_empty() {
            return Err(Error::EmptyInput("ForecastFigure: no house had enough contiguous data"));
        }
        Ok(ForecastFigure { model, houses, skipped })
    }

    /// Renders the figure as a text table (columns = paper bar groups).
    pub fn render(&self) -> String {
        let mut s = format!(
            "MAE of symbolic forecasting using {} (watts)\n{:<10} {:>8} {:>16} {:>8} {:>9}\n",
            self.model.name(),
            "house",
            "raw",
            "distinctmedian",
            "median",
            "uniform"
        );
        for h in &self.houses {
            let get = |m: SeparatorMethod| {
                h.symbolic_mae.iter().find(|(mm, _)| *mm == m).map(|(_, v)| *v).unwrap_or(f64::NAN)
            };
            s += &format!(
                "house {:<4} {:>8.1} {:>16.1} {:>8.1} {:>9.1}\n",
                h.house_id,
                h.raw_mae,
                get(SeparatorMethod::DistinctMedian),
                get(SeparatorMethod::Median),
                get(SeparatorMethod::Uniform)
            );
        }
        if !self.skipped.is_empty() {
            s += &format!(
                "skipped (not enough data): {}\n",
                self.skipped.iter().map(|h| format!("house {h}")).collect::<Vec<_>>().join(", ")
            );
        }
        s
    }

    /// How many houses had at least one symbolic encoding beat raw SVR
    /// (the paper observes this for several houses).
    pub fn symbolic_wins(&self) -> usize {
        self.houses.iter().filter(|h| h.symbolic_mae.iter().any(|(_, m)| *m < h.raw_mae)).count()
    }
}

fn decode_center(table: &LookupTable, rank: u16) -> f64 {
    let sym = Symbol::from_rank(rank, table.resolution_bits()).expect("rank within table");
    table.decode_symbol(sym, SymbolSemantics::RangeCenter).expect("same resolution")
}

fn to_core(e: sms_ml::Error) -> Error {
    Error::InvalidParameter { name: "ml", reason: e.to_string() }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::prep::dataset;

    fn scale() -> Scale {
        Scale {
            days: 10,
            interval_secs: 600,
            forest_trees: 8,
            cv_folds: 2,
            seed: 9,
            ..Scale::quick()
        }
    }

    #[test]
    fn consecutive_span_detects_gaps() {
        // 10 hours of data with a hole at hour 4.
        let mut s = TimeSeries::new();
        for h in 0..10i64 {
            if h == 4 {
                continue;
            }
            for m in 0..60 {
                s.push(h * 3600 + m * 60, 100.0).unwrap();
            }
        }
        assert!(consecutive_hourly_span(&s, 5).is_some(), "5 consecutive exist after the gap");
        assert!(consecutive_hourly_span(&s, 6).is_none(), "but not 6");
    }

    #[test]
    fn figure_runs_and_skips_house_5() {
        let ds = dataset(scale()).unwrap();
        let fig = ForecastFigure::run(&ds, scale(), ForecastModel::NaiveBayes).unwrap();
        assert!(fig.skipped.contains(&5), "house 5 lacks contiguous data: {:?}", fig.skipped);
        assert!(fig.houses.len() >= 4, "most houses forecastable: {}", fig.houses.len());
        for h in &fig.houses {
            assert!(h.raw_mae.is_finite() && h.raw_mae >= 0.0);
            assert_eq!(h.symbolic_mae.len(), 3);
            for (_, m) in &h.symbolic_mae {
                assert!(m.is_finite() && *m >= 0.0);
            }
        }
        let txt = fig.render();
        assert!(txt.contains("house 1"));
        assert!(txt.contains("skipped"));
    }

    #[test]
    fn symbolic_is_competitive() {
        let ds = dataset(scale()).unwrap();
        let fig = ForecastFigure::run(&ds, scale(), ForecastModel::NaiveBayes).unwrap();
        // The paper's claim: comparable, sometimes better. Demand that the
        // best symbolic MAE is within 3× of raw for most houses.
        let competitive = fig
            .houses
            .iter()
            .filter(|h| {
                let best = h.symbolic_mae.iter().map(|(_, m)| *m).fold(f64::INFINITY, f64::min);
                best < h.raw_mae * 3.0
            })
            .count();
        assert!(
            competitive * 2 >= fig.houses.len(),
            "symbolic forecasting should be in raw's ballpark: {competitive}/{}",
            fig.houses.len()
        );
    }
}
