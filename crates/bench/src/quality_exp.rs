//! Dirty-data quarantine under fire: the `quality` experiment.
//!
//! The paper assumes every house hands the encoder a clean, gap-free,
//! monotone series; real fleets don't. This experiment generates a synthetic
//! fleet, corrupts a seeded subset of houses at the *sample* level (NaN
//! runs, gaps, duplicated runs, reset spikes via
//! [`FaultInjector`]), arms a seeded
//! panic plan against another subset, and pushes the whole thing through
//! [`FleetEngine`] under [`QuarantinePolicy::Isolate`] with a sanitizing
//! pre-pass and a retry schedule. The run must complete without aborting:
//! repairable defects are repaired and counted, unrepairable houses land in
//! [`FleetEncoding::quarantined`](sms_core::engine::FleetEncoding::quarantined)
//! with reasons, panicking jobs recover through supervised retries, and the
//! merged [`EngineStats`] JSON (pool + quality blocks) is printed by
//! `repro quality [--faults]`.

use std::collections::BTreeSet;

use crate::ingest_exp::FaultInjector;
use crate::scale::Scale;
use meterdata::generator::fleet_series;
use sms_core::engine::{
    EngineConfig, EngineStats, FleetEngine, PanicPlan, QuarantinePolicy, Quarantined,
};
use sms_core::error::Result;
use sms_core::pipeline::CodecBuilder;
use sms_core::pool::RetryPolicy;
use sms_core::quality::{Policy, SanitizerConfig};
use sms_core::separators::SeparatorMethod;
use sms_core::timeseries::{Sample, TimeSeries};

/// How many series faults each corrupted house receives. One each keeps
/// the cycling schedule spreading every defect class across the corrupted
/// set: NaN houses quarantine, gap/duplicate/reset houses get repaired.
const FAULTS_PER_HOUSE: u64 = 1;

/// Outcome of one `quality` experiment run.
#[derive(Debug, Clone)]
pub struct QualityRunReport {
    /// Whether data corruption + panic injection were armed.
    pub faults: bool,
    /// Meters in the fleet.
    pub houses: usize,
    /// Houses whose series were corrupted before encoding (sorted).
    pub corrupted: Vec<usize>,
    /// Houses whose encode jobs were made to panic once (sorted).
    pub panicking: Vec<usize>,
    /// Symbols produced across surviving houses.
    pub symbols_out: u64,
    /// Quarantined houses with reasons, in index order.
    pub quarantined: Vec<Quarantined>,
    /// Engine counters with the `pool` and `quality` blocks set.
    pub stats: EngineStats,
}

/// Runs the generate→corrupt→sanitize→encode pipeline at `scale`.
///
/// With `faults` off this is a clean-fleet baseline (the sanitizer still
/// runs and must report zero defects). With `faults` on, roughly a third of
/// the houses get one series fault each from the cycling schedule, and two
/// of the *clean* houses get a one-shot panic injected into their encode
/// job — recovered by the retry policy, so they still encode. NaN-corrupted
/// houses are quarantined (`non_finite` is the one defect configured to
/// reject); every other defect is repaired in place and counted.
pub fn run_quality(scale: Scale, faults: bool) -> Result<QualityRunReport> {
    let houses = if scale.days >= 30 { 24 } else { 12 };
    let mut fleet =
        fleet_series(scale.seed, houses as u32, scale.days.clamp(1, 7), scale.interval_secs)?;

    let mut injector = FaultInjector::new(scale.seed ^ 0xDEAD_C0DE);
    let mut corrupted: Vec<usize> = Vec::new();
    let mut panicking: Vec<usize> = Vec::new();
    if faults {
        let dirty = injector.pick_houses(houses, houses / 3);
        let mut nth = 0u64;
        for &h in &dirty {
            let mut samples: Vec<Sample> = fleet[h].samples().to_vec();
            for _ in 0..FAULTS_PER_HOUSE {
                injector.corrupt_series_nth(nth, &mut samples);
                nth += 1;
            }
            // The corrupted samples break the clean-series invariants on
            // purpose; the unchecked constructor is the documented way in.
            fleet[h] = TimeSeries::from_samples_unchecked(samples);
        }
        corrupted = dirty.iter().copied().collect();
        // Panic two clean houses once each: the supervised pool must retry
        // them back to health, not quarantine them.
        let clean: Vec<usize> = (0..houses).filter(|h| !dirty.contains(h)).collect();
        let chosen = injector.pick_houses(clean.len(), 2.min(clean.len()));
        panicking = chosen.iter().map(|&i| clean[i]).collect();
    }

    // `non_finite` rejects (NaN runs are unrepairable evidence of a broken
    // sensor); everything else follows the repair-oriented defaults. Gap
    // detection is armed at the sampling interval itself, so deleting even
    // a single sample surfaces as a marked-missing span.
    let sanitizer = SanitizerConfig { non_finite: Policy::Reject, ..SanitizerConfig::default() }
        .gap_tolerance_secs(scale.interval_secs)
        .nominal_interval_secs(scale.interval_secs);
    let mut config = EngineConfig::with_workers(2)
        .quarantine(QuarantinePolicy::Isolate)
        .sanitizer(sanitizer)
        .retry(RetryPolicy::with_max_attempts(3).no_backoff());
    if !panicking.is_empty() {
        config = config
            .chaos(PanicPlan { houses: panicking.iter().copied().collect(), panics_per_job: 1 });
    }

    let builder =
        CodecBuilder::new().method(SeparatorMethod::Median).alphabet_size(16)?.window_secs(3600);
    let engine = FleetEngine::new(builder, config);
    let enc = engine.encode_fleet(&fleet)?;

    let symbols_out = enc.series.iter().map(|s| s.len() as u64).sum();
    Ok(QualityRunReport {
        faults,
        houses,
        corrupted,
        panicking,
        symbols_out,
        quarantined: enc.quarantined,
        stats: enc.stats,
    })
}

/// Human-readable summary printed by `repro quality`.
pub fn render_quality(r: &QualityRunReport) -> String {
    let q = r.stats.quality.as_ref().expect("run_quality always arms the sanitizer");
    let p = r.stats.pool.as_ref().expect("run_quality always encodes through the pool");
    let mut s = format!(
        "quality: {} houses, {} samples -> {} symbols (faults: {})\n\
         corruption: {} houses corrupted {:?}, {} houses panic-seeded {:?}\n\
         sanitizer: {} defects, {} dropped, {} clamped, {} filled, {} spans marked missing \
         ({} of {} samples survived)\n\
         pool: {} panics caught, {} retries, {} gave up, {} timed out, {} respawns\n\
         quarantine: {} of {} houses",
        r.houses,
        q.samples_in,
        r.symbols_out,
        if r.faults { "on" } else { "off" },
        r.corrupted.len(),
        r.corrupted,
        r.panicking.len(),
        r.panicking,
        q.defects.total(),
        q.dropped,
        q.clamped,
        q.filled,
        q.marked_missing,
        q.samples_out,
        q.samples_in,
        p.panics,
        p.retries,
        p.gave_up,
        p.deadline_exceeded,
        p.respawns,
        r.quarantined.len(),
        r.houses,
    );
    for q in &r.quarantined {
        s.push_str(&format!("\n  house {}: {}", q.house, q.reason));
    }
    s
}

/// The houses `run_quality` will corrupt for a given seed — exposed so the
/// determinism tests can predict quarantine membership without re-deriving
/// the injector schedule.
pub fn seeded_dirty_houses(seed: u64, houses: usize) -> BTreeSet<usize> {
    FaultInjector::new(seed ^ 0xDEAD_C0DE).pick_houses(houses, houses / 3)
}

#[cfg(test)]
mod tests {
    use super::*;
    use sms_core::engine::QuarantineReason;

    #[test]
    fn clean_run_has_zero_defects_and_no_quarantine() {
        let mut scale = Scale::quick();
        scale.days = 2;
        let r = run_quality(scale, false).unwrap();
        assert!(r.quarantined.is_empty());
        assert!(r.corrupted.is_empty() && r.panicking.is_empty());
        let q = r.stats.quality.as_ref().unwrap();
        assert_eq!(q.defects.total(), 0);
        assert_eq!(q.samples_in, q.samples_out);
        let p = r.stats.pool.as_ref().unwrap();
        assert_eq!((p.panics, p.retries, p.gave_up), (0, 0, 0));
        assert!(r.symbols_out > 0);
    }

    #[test]
    fn faulted_run_completes_repairs_and_quarantines() {
        let mut scale = Scale::quick();
        scale.days = 2;
        let r = run_quality(scale, true).unwrap();
        assert!(!r.corrupted.is_empty());
        assert_eq!(r.panicking.len(), 2);

        let q = r.stats.quality.as_ref().unwrap();
        assert!(q.defects.total() > 0, "{q:?}");
        assert_eq!(q.quarantined, r.quarantined.len() as u64);
        // The fault schedule cycles NaN first, so at least one house is
        // guaranteed to carry unrepairable non-finite data.
        assert!(!r.quarantined.is_empty());
        // Quarantines only ever come from the corrupted set, and each one is
        // the sanitizer rejecting non-finite data.
        for quarantined in &r.quarantined {
            assert!(r.corrupted.contains(&quarantined.house), "{quarantined:?}");
            assert!(
                matches!(quarantined.reason, QuarantineReason::DirtyData(_)),
                "{quarantined:?}"
            );
        }

        // Both panic-seeded houses recovered via retry: panics were caught,
        // retried, and nobody gave up.
        let p = r.stats.pool.as_ref().unwrap();
        assert_eq!(p.panics, 2, "{p:?}");
        assert_eq!(p.retries, 2, "{p:?}");
        assert_eq!((p.gave_up, p.deadline_exceeded), (0, 0), "{p:?}");

        let json = r.stats.to_json();
        for key in ["\"pool\"", "\"quality\"", "\"panics\"", "\"quarantined\"", "\"defects\""] {
            assert!(json.contains(key), "missing {key} in {json}");
        }
        let rendered = render_quality(&r);
        assert!(rendered.contains("faults: on"));
        assert!(rendered.contains("panics caught"));
    }

    #[test]
    fn faulted_run_is_deterministic() {
        let mut scale = Scale::quick();
        scale.days = 2;
        let a = run_quality(scale, true).unwrap();
        let b = run_quality(scale, true).unwrap();
        assert_eq!(a.corrupted, b.corrupted);
        assert_eq!(a.panicking, b.panicking);
        assert_eq!(a.quarantined, b.quarantined);
        assert_eq!(a.symbols_out, b.symbols_out);
        let expected: BTreeSet<usize> = a.corrupted.iter().copied().collect();
        assert_eq!(seeded_dirty_houses(scale.seed, a.houses), expected);
    }
}
