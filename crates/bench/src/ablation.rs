//! Ablation experiments for DESIGN.md's design-choice list:
//!
//! * **separator method extended**: the paper's three unsupervised methods
//!   versus the §4 utility-driven learners (supervised and
//!   reconstruction-optimal separators);
//! * **exact vs approximate (P²) streaming separator learning** — how much
//!   accuracy does the constant-memory sensor-side sketch give up.

use crate::prep::{dataset, PAPER_MIN_COVERAGE};
use crate::scale::Scale;
use meterdata::dataset::MeterDataset;
use sms_core::alphabet::Alphabet;
use sms_core::error::{Error, Result};
use sms_core::lookup::{LookupTable, SymbolSemantics};
use sms_core::separators::{learn_separators, SeparatorMethod, StreamingLearner};
use sms_core::utility::{reconstruction_separators, supervised_separators};
use sms_core::vertical::{aggregate_by_window, Aggregation};

/// Reconstruction MAE of a table over hourly aggregates of every house.
fn reconstruction_mae(ds: &MeterDataset, table: &LookupTable) -> Result<f64> {
    let mut err = 0.0;
    let mut n = 0u64;
    for r in ds.records() {
        let hourly = aggregate_by_window(&r.series, 3600, Aggregation::Mean, 1)?;
        for (_, v) in hourly.iter() {
            let d = table.decode_symbol(table.encode_value(v)?, SymbolSemantics::RangeMean)?;
            err += (v - d).abs();
            n += 1;
        }
    }
    if n == 0 {
        return Err(Error::EmptyInput("reconstruction_mae"));
    }
    Ok(err / n as f64)
}

/// One separator-strategy row of the ablation.
#[derive(Debug, Clone)]
pub struct SeparatorAblationRow {
    /// Strategy name.
    pub label: String,
    /// Reconstruction MAE over hourly values (W).
    pub reconstruction_mae: f64,
    /// Mutual information between house and symbol (bits) — the
    /// classification-utility proxy.
    pub mi_bits: f64,
}

/// Compares all five separator strategies (three from §2.2, two from §4) on
/// a pooled global table at `k = 16`.
pub fn run_separator_ablation(scale: Scale) -> Result<Vec<SeparatorAblationRow>> {
    let ds = dataset(scale)?;
    let alphabet = Alphabet::with_resolution(4)?;

    // Pooled hourly training data with house labels.
    let head = ds.head_duration(scale.training_prefix_secs());
    let mut values = Vec::new();
    let mut labels = Vec::new();
    for (idx, r) in head.records().iter().enumerate() {
        let hourly = aggregate_by_window(&r.series, 3600, Aggregation::Mean, 1)?;
        for (_, v) in hourly.iter() {
            values.push(v);
            labels.push(idx);
        }
    }
    if values.is_empty() {
        return Err(Error::EmptyInput("run_separator_ablation"));
    }

    let mut rows = Vec::new();
    let mut eval = |label: String, seps: Vec<f64>| -> Result<()> {
        let table = LookupTable::from_parts(SeparatorMethod::Uniform, alphabet, seps, &values)?;
        let mae = reconstruction_mae(&ds, &table)?;
        // MI over the complete-day hourly symbols (house identity signal).
        let mut symbols = Vec::new();
        let mut sym_labels = Vec::new();
        for (idx, r) in ds.records().iter().enumerate() {
            for day in r.series.split_days() {
                if day.1.coverage_seconds(ds.interval_secs()) < PAPER_MIN_COVERAGE {
                    continue;
                }
                let hourly = aggregate_by_window(&day.1, 3600, Aggregation::Mean, 1)?;
                for (_, v) in hourly.iter() {
                    symbols.push(table.encode_value(v)?);
                    sym_labels.push(idx);
                }
            }
        }
        let mi = sms_core::privacy::mutual_information_bits(&sym_labels, &symbols)?;
        rows.push(SeparatorAblationRow { label, reconstruction_mae: mae, mi_bits: mi });
        Ok(())
    };

    for method in SeparatorMethod::ALL {
        eval(method.name().to_string(), learn_separators(method, &values, 16)?)?;
    }
    eval("supervised (§4)".to_string(), supervised_separators(&values, &labels, 16)?)?;
    eval("reconstruction-opt (§4)".to_string(), reconstruction_separators(&values, 16)?)?;
    Ok(rows)
}

/// Renders the separator ablation.
pub fn render_separator_ablation(rows: &[SeparatorAblationRow]) -> String {
    let mut s = format!(
        "Separator-strategy ablation (global table, k = 16, hourly)\n{:<26} {:>18} {:>16}\n",
        "strategy", "reconstruction MAE", "MI(house;sym) bit"
    );
    for r in rows {
        s += &format!("{:<26} {:>18.1} {:>16.3}\n", r.label, r.reconstruction_mae, r.mi_bits);
    }
    s
}

/// Exact vs approximate (P²) streaming separator learning: max relative
/// separator deviation and resulting symbol disagreement rate.
#[derive(Debug, Clone)]
pub struct StreamingAblation {
    /// Largest |approx − exact| / range over the k−1 separators.
    pub max_relative_deviation: f64,
    /// Fraction of training values encoded to a different symbol.
    pub symbol_disagreement: f64,
}

/// Runs the exact-vs-P² comparison on one house's two-day history.
pub fn run_streaming_ablation(scale: Scale) -> Result<StreamingAblation> {
    let ds = dataset(scale)?;
    let head = ds
        .house(1)
        .ok_or(Error::EmptyInput("house 1"))?
        .head_duration(scale.training_prefix_secs());
    let values = head.values();
    if values.is_empty() {
        return Err(Error::EmptyInput("run_streaming_ablation"));
    }
    let alphabet = Alphabet::with_resolution(4)?;

    let exact = learn_separators(SeparatorMethod::Median, &values, 16)?;
    let mut approx_learner = StreamingLearner::approximate(SeparatorMethod::Median, 16)?;
    for &v in &values {
        approx_learner.push(v)?;
    }
    let approx = approx_learner.separators()?;

    let range = values.iter().cloned().fold(f64::NEG_INFINITY, f64::max)
        - values.iter().cloned().fold(f64::INFINITY, f64::min);
    let max_dev =
        exact.iter().zip(&approx).map(|(e, a)| (e - a).abs() / range.max(1e-9)).fold(0.0, f64::max);

    let t_exact = LookupTable::from_parts(SeparatorMethod::Median, alphabet, exact, &values)?;
    let t_approx = LookupTable::from_parts(SeparatorMethod::Median, alphabet, approx, &values)?;
    let disagreements = values
        .iter()
        .filter(|&&v| t_exact.encode_value(v).unwrap() != t_approx.encode_value(v).unwrap())
        .count();
    Ok(StreamingAblation {
        max_relative_deviation: max_dev,
        symbol_disagreement: disagreements as f64 / values.len() as f64,
    })
}

#[cfg(test)]
mod tests {
    use super::*;

    fn scale() -> Scale {
        Scale {
            days: 6,
            interval_secs: 300,
            forest_trees: 4,
            cv_folds: 2,
            seed: 23,
            ..Scale::quick()
        }
    }

    #[test]
    fn separator_ablation_shapes() {
        let rows = run_separator_ablation(scale()).unwrap();
        assert_eq!(rows.len(), 5);
        let get = |label: &str| {
            rows.iter()
                .find(|r| r.label.starts_with(label))
                .unwrap_or_else(|| panic!("{label} missing"))
        };
        // Reconstruction-optimal separators must reconstruct at least as
        // well as uniform on the training distribution.
        assert!(
            get("reconstruction-opt").reconstruction_mae
                <= get("uniform").reconstruction_mae * 1.05,
            "{rows:?}"
        );
        // Supervised separators must carry at least as much house
        // information as uniform.
        assert!(get("supervised").mi_bits >= get("uniform").mi_bits * 0.9, "{rows:?}");
        let txt = render_separator_ablation(&rows);
        assert!(txt.contains("supervised"));
    }

    #[test]
    fn streaming_ablation_small_error() {
        // P² needs volume: feed it a finer-sampled two-day history. Even
        // then, quantized meter data concentrates mass on a few exact watt
        // values, so quantile estimates landing inside a point mass can flip
        // a whole bin — the ablation's finding is that the constant-memory
        // sketch is usable but noticeably lossy on discrete distributions.
        let fine = Scale {
            days: 3,
            interval_secs: 30,
            forest_trees: 4,
            cv_folds: 2,
            seed: 23,
            ..Scale::quick()
        };
        let a = run_streaming_ablation(fine).unwrap();
        assert!(a.max_relative_deviation < 0.25, "P² deviation {}", a.max_relative_deviation);
        assert!(a.symbol_disagreement < 0.5, "disagreement {}", a.symbol_disagreement);
    }
}
