//! `repro scale` — the million-house experiment behind ROADMAP open item 1.
//!
//! Streams a synthetic fleet of [`Scale::houses`] houses (one day of
//! quarter-hour readings each — the paper's §2.3 pricing unit) through the
//! sharded engine ([`sms_core::shard::ShardedFleetEngine`]) into the
//! bit-packed segment store ([`sms_core::segstore::SegmentStore`]), then
//! reports:
//!
//! * end-to-end encode throughput (samples/s into the packed store);
//! * bytes/house — raw `f64` input vs bit-packed vs after the second-stage
//!   RLE + dictionary pass (the arXiv:2006.03208 re-compression question);
//! * query latency (p50/p95) for time-range reads, symbol-prefix counts,
//!   and lookup-table aggregate pushdown;
//! * two correctness witnesses that run *inside* the experiment: packed
//!   reads must decode byte-identical to a serial in-memory encode of the
//!   sampled houses, and a shard/worker sweep ({1,4,16} × {1,2,8}) over a
//!   deterministic subsample must produce byte-identical store images.
//!
//! Houses are generated on the fly from `(seed, house)` alone — a base
//! load, a triangular daily shape, and SplitMix64 noise — so a
//! million-house run streams through in chunks of bounded memory instead
//! of materializing the fleet.

use sms_core::engine::EngineStats;
use sms_core::error::Error;
use sms_core::json::JsonWriter;
use sms_core::pipeline::CodecBuilder;
use sms_core::segstore::SegmentStore;
use sms_core::separators::SeparatorMethod;
use sms_core::shard::{splitmix64, ShardedEngineConfig, ShardedFleetEngine};
use sms_core::symbol::Symbol;
use sms_core::timeseries::TimeSeries;
use std::time::Instant;

use crate::Scale;

/// Readings per house: one day of quarter-hours (§2.3's "only 384 bit"
/// unit at 4-bit symbols).
pub const SAMPLES_PER_HOUSE: usize = 96;
/// Sampling interval: 15 minutes.
pub const INTERVAL_SECS: i64 = 900;
/// Houses per streamed chunk.
const CHUNK: usize = 8192;
/// Houses sampled for the query-latency/identity set.
const QUERY_HOUSES: usize = 512;
/// Houses in the shard/worker byte-identity sweep.
const SWEEP_HOUSES: usize = 4096;

/// Latency percentiles of one query type, microseconds.
#[derive(Debug, Clone, Copy, PartialEq, Default)]
pub struct LatencyUs {
    /// Median.
    pub p50: f64,
    /// 95th percentile.
    pub p95: f64,
}

fn percentiles(mut us: Vec<f64>) -> LatencyUs {
    if us.is_empty() {
        return LatencyUs::default();
    }
    us.sort_by(|a, b| a.partial_cmp(b).expect("latencies are finite"));
    let at = |q: f64| us[((us.len() - 1) as f64 * q).round() as usize];
    LatencyUs { p50: at(0.50), p95: at(0.95) }
}

/// Everything one `repro scale` run measured.
#[derive(Debug, Clone)]
pub struct ScaleReport {
    /// Houses encoded.
    pub houses: usize,
    /// Shards used for the main run.
    pub shards: usize,
    /// Workers per shard pool.
    pub workers: usize,
    /// Raw samples consumed.
    pub samples: u64,
    /// Symbols written into the store.
    pub symbols: u64,
    /// Wall time of the streamed encode (train + encode + append), seconds.
    pub encode_secs: f64,
    /// Raw input bytes per house (`f64` samples).
    pub raw_bytes_per_house: f64,
    /// Bit-packed store bytes per house (payload only).
    pub packed_bytes_per_house: f64,
    /// Bytes per house after the second-stage RLE + dictionary pass.
    pub recompressed_bytes_per_house: f64,
    /// Time-range read latency.
    pub read_latency: LatencyUs,
    /// Symbol-prefix count latency.
    pub prefix_latency: LatencyUs,
    /// Aggregate-pushdown latency.
    pub aggregate_latency: LatencyUs,
    /// Houses whose packed reads were checked byte-identical to a serial
    /// in-memory encode.
    pub identity_houses: usize,
    /// Houses in the shard/worker sweep subsample.
    pub sweep_houses: usize,
    /// `(shards, workers)` combinations whose store images matched.
    pub sweep_combos: usize,
    /// Engine counters (shard + store + pool blocks included).
    pub stats: EngineStats,
}

impl ScaleReport {
    /// Raw samples encoded per wall-clock second, end to end.
    pub fn samples_per_sec(&self) -> f64 {
        self.samples as f64 / self.encode_secs.max(f64::MIN_POSITIVE)
    }

    /// Machine-readable record (the `BENCH_scale.json` payload).
    pub fn to_json(&self) -> String {
        let mut w = JsonWriter::new();
        w.begin_object();
        w.key("houses").u64(self.houses as u64);
        w.key("shards").u64(self.shards as u64);
        w.key("workers").u64(self.workers as u64);
        w.key("samples").u64(self.samples);
        w.key("symbols").u64(self.symbols);
        w.key("encode_secs").f64(self.encode_secs);
        w.key("samples_per_sec").f64(self.samples_per_sec());
        w.key("raw_bytes_per_house").f64(self.raw_bytes_per_house);
        w.key("packed_bytes_per_house").f64(self.packed_bytes_per_house);
        w.key("recompressed_bytes_per_house").f64(self.recompressed_bytes_per_house);
        w.key("read_p50_us").f64(self.read_latency.p50);
        w.key("read_p95_us").f64(self.read_latency.p95);
        w.key("prefix_p50_us").f64(self.prefix_latency.p50);
        w.key("prefix_p95_us").f64(self.prefix_latency.p95);
        w.key("aggregate_p50_us").f64(self.aggregate_latency.p50);
        w.key("aggregate_p95_us").f64(self.aggregate_latency.p95);
        w.key("identity_houses").u64(self.identity_houses as u64);
        w.key("sweep_houses").u64(self.sweep_houses as u64);
        w.key("sweep_combos").u64(self.sweep_combos as u64);
        w.end_object();
        w.finish()
    }
}

/// Renders the human-readable report.
pub fn render_scale(r: &ScaleReport) -> String {
    let mut out = String::new();
    out.push_str(&format!(
        "scale: {} houses x {SAMPLES_PER_HOUSE} quarter-hour samples, \
         {} shards x {} workers\n",
        r.houses, r.shards, r.workers
    ));
    out.push_str(&format!(
        "  encode: {} samples in {:.2}s -> {:.0} samples/s end-to-end (packed store included)\n",
        r.samples,
        r.encode_secs,
        r.samples_per_sec()
    ));
    out.push_str(&format!(
        "  bytes/house: raw {:.0} -> packed {:.1} ({:.1}x) -> re-compressed {:.1} ({:.1}x)\n",
        r.raw_bytes_per_house,
        r.packed_bytes_per_house,
        r.raw_bytes_per_house / r.packed_bytes_per_house.max(f64::MIN_POSITIVE),
        r.recompressed_bytes_per_house,
        r.raw_bytes_per_house / r.recompressed_bytes_per_house.max(f64::MIN_POSITIVE)
    ));
    out.push_str(&format!(
        "  query latency (us): range-read p50 {:.1} p95 {:.1} | prefix-count p50 {:.1} \
         p95 {:.1} | aggregate p50 {:.1} p95 {:.1}\n",
        r.read_latency.p50,
        r.read_latency.p95,
        r.prefix_latency.p50,
        r.prefix_latency.p95,
        r.aggregate_latency.p50,
        r.aggregate_latency.p95
    ));
    out.push_str(&format!(
        "  verified: {} houses read back byte-identical to the serial codec; \
         {} shard/worker combos byte-identical over {} houses\n",
        r.identity_houses, r.sweep_combos, r.sweep_houses
    ));
    out
}

/// One house's synthetic day, derived from `(seed, house)` alone, shaped
/// like a real meter trace: flat standby at night with a fridge duty
/// cycle, a triangular daytime peak with appliance-step noise quantized
/// to 50 W. The plateaus matter — they are what gives the second-stage
/// RLE pass runs to collapse, exactly as standby power does in real
/// traces. Values are exact multiples of 0.1 W, so every value
/// round-trips `f64` exactly and the byte-identity checks compare
/// stable bits.
pub fn house_series(seed: u64, house: u64) -> TimeSeries {
    let mut values = Vec::with_capacity(SAMPLES_PER_HOUSE);
    let base = 50.0 + (splitmix64(seed ^ house) % 2000) as f64 / 10.0;
    let fridge_phase = splitmix64(seed ^ house ^ 0xF00D) % 8;
    for i in 0..SAMPLES_PER_HOUSE {
        // Night: 20:00–06:00 (samples 80.. and ..24 at 15-minute steps).
        let night = !(24..80).contains(&i);
        let v = if night {
            // Standby plus a fridge cycling 80 W on a 2 h period.
            let fridge = if (i as u64 / 4 + fridge_phase).is_multiple_of(2) { 80.0 } else { 0.0 };
            base + fridge
        } else {
            let day_pos = (i as i64 * INTERVAL_SECS % 86_400) as f64 / 86_400.0;
            let tri = 1.0 - (2.0 * day_pos - 1.0).abs();
            let step = (splitmix64(seed ^ house.wrapping_mul(0x9E37_79B9).wrapping_add(i as u64))
                % 8) as f64
                * 50.0;
            base + 400.0 * tri + step
        };
        values.push(v);
    }
    TimeSeries::from_regular(0, INTERVAL_SECS, &values).expect("regular synthetic series")
}

fn codec_builder() -> Result<CodecBuilder, Error> {
    Ok(CodecBuilder::new().method(SeparatorMethod::Median).alphabet_size(16)?.no_aggregation())
}

/// Streams `houses` houses through a sharded engine into a fresh store.
fn encode_into_store(
    seed: u64,
    houses: usize,
    config: ShardedEngineConfig,
) -> Result<(ShardedFleetEngine, SegmentStore, u64), Error> {
    let mut engine = ShardedFleetEngine::new(codec_builder()?, config)?;
    let mut store = SegmentStore::new();
    let mut samples = 0u64;
    let mut chunk: Vec<(u64, TimeSeries)> = Vec::with_capacity(CHUNK);
    let mut next = 0usize;
    while next < houses {
        chunk.clear();
        let end = (next + CHUNK).min(houses);
        for h in next..end {
            let ts = house_series(seed, h as u64);
            samples += ts.len() as u64;
            chunk.push((h as u64, ts));
        }
        let enc = engine.encode_batch(&chunk)?;
        if let Some(q) = enc.quarantined.first() {
            return Err(Error::Engine(format!(
                "scale fleet unexpectedly quarantined house {}: {}",
                q.house, q.reason
            )));
        }
        for (i, s) in enc.series.iter().enumerate() {
            store.append(chunk[i].0, s)?;
        }
        next = end;
    }
    Ok((engine, store, samples))
}

/// Runs the full experiment at `scale.houses` houses. `shards`/`workers`
/// configure the main streamed run; the correctness sweep always covers
/// {1, 4, 16} shards × {1, 2, 8} workers on a subsample.
pub fn run_scale(scale: Scale, shards: usize, workers: usize) -> Result<ScaleReport, Error> {
    let houses = scale.houses;
    let config = ShardedEngineConfig::with_shards(shards.max(1)).workers(workers.max(1));

    let t0 = Instant::now();
    let (engine, mut store, samples) = encode_into_store(scale.seed, houses, config)?;
    let encode_secs = t0.elapsed().as_secs_f64();
    let recompression = store.recompress()?;

    // --- query set: latency + identity against the serial codec ---------
    let q = QUERY_HOUSES.min(houses);
    let step = (houses / q.max(1)).max(1);
    let builder = codec_builder()?;
    let mut read_us = Vec::with_capacity(q);
    let mut prefix_us = Vec::with_capacity(q);
    let mut agg_us = Vec::with_capacity(q);
    let mid = (SAMPLES_PER_HOUSE as i64 / 4) * INTERVAL_SECS;
    let mid_end = (3 * SAMPLES_PER_HOUSE as i64 / 4 - 1) * INTERVAL_SECS;
    for k in 0..q {
        let house = (k * step) as u64;
        let ts = house_series(scale.seed, house);
        let codec = builder.train(&ts)?;
        let serial = codec.encode(&ts)?;

        // Full-range read must be byte-identical to the in-memory encode.
        let t = Instant::now();
        let full = store.read_range(house, i64::MIN, i64::MAX)?;
        read_us.push(t.elapsed().as_secs_f64() * 1e6);
        if full.symbols() != serial.symbols() || full.timestamps() != serial.timestamps() {
            return Err(Error::Engine(format!(
                "house {house}: packed-store read differs from the serial codec"
            )));
        }

        // Prefix predicate over the middle half vs a scan of the serial
        // symbols (prefix = upper half of the value range, rank 1 @ 1 bit).
        let prefix = Symbol::from_rank(1, 1)?;
        let t = Instant::now();
        let count = store.count_prefix(house, mid, mid_end, prefix)?;
        prefix_us.push(t.elapsed().as_secs_f64() * 1e6);
        let expected = serial
            .iter()
            .filter(|(ts, s)| (mid..=mid_end).contains(ts) && prefix.covers(*s))
            .count() as u64;
        if count != expected {
            return Err(Error::Engine(format!(
                "house {house}: prefix count {count} != scan {expected}"
            )));
        }

        // Aggregate pushdown vs a naive decode-and-average.
        let t = Instant::now();
        let agg = store.aggregate_range(house, mid, mid_end, codec.table())?;
        agg_us.push(t.elapsed().as_secs_f64() * 1e6);
        let naive: Vec<f64> = serial
            .iter()
            .filter(|(ts, _)| (mid..=mid_end).contains(ts))
            .map(|(_, s)| {
                codec.table().decode_symbol(s, sms_core::lookup::SymbolSemantics::RangeMean)
            })
            .collect::<Result<_, _>>()?;
        let naive_mean = naive.iter().sum::<f64>() / naive.len().max(1) as f64;
        if agg.count != naive.len() as u64 || (agg.mean - naive_mean).abs() > 1e-9 {
            return Err(Error::Engine(format!(
                "house {house}: aggregate pushdown {:.6} != naive {naive_mean:.6}",
                agg.mean
            )));
        }
    }

    // --- shard/worker sweep: byte-identical store images -----------------
    let sweep_houses = SWEEP_HOUSES.min(houses);
    let mut reference: Option<Vec<u8>> = None;
    let mut sweep_combos = 0usize;
    for sweep_shards in [1usize, 4, 16] {
        for sweep_workers in [1usize, 2, 8] {
            let cfg = ShardedEngineConfig::with_shards(sweep_shards).workers(sweep_workers);
            let (_, sweep_store, _) = encode_into_store(scale.seed, sweep_houses, cfg)?;
            let image = sweep_store.to_bytes();
            match &reference {
                None => reference = Some(image),
                Some(expected) if *expected == image => {}
                Some(_) => {
                    return Err(Error::Engine(format!(
                        "store image differs at {sweep_shards} shards x {sweep_workers} \
                         workers — sharding leaked into the output"
                    )));
                }
            }
            sweep_combos += 1;
        }
    }

    let store_stats = store.stats();
    let mut stats = EngineStats {
        workers,
        houses,
        samples_in: samples,
        symbols_out: store_stats.symbols_written,
        encode_secs,
        shard: Some(engine.stats()),
        store: Some(store_stats),
        pool: Some(engine.pool_stats()),
        ..EngineStats::default()
    };
    for s in store.segments().iter().take(houses) {
        stats.house_symbols.observe(s.count);
    }

    Ok(ScaleReport {
        houses,
        shards: shards.max(1),
        workers: workers.max(1),
        samples,
        symbols: store_stats.symbols_written,
        encode_secs,
        raw_bytes_per_house: (samples as f64 / houses.max(1) as f64) * 8.0,
        packed_bytes_per_house: store.arena_bytes() as f64 / houses.max(1) as f64,
        recompressed_bytes_per_house: recompression.recompressed_bytes as f64
            / houses.max(1) as f64,
        read_latency: percentiles(read_us),
        prefix_latency: percentiles(prefix_us),
        aggregate_latency: percentiles(agg_us),
        identity_houses: q,
        sweep_houses,
        sweep_combos,
        stats,
    })
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn small_scale_run_verifies_end_to_end() {
        let scale = Scale { houses: 300, ..Scale::quick() };
        let report = run_scale(scale, 4, 2).unwrap();
        assert_eq!(report.houses, 300);
        assert_eq!(report.samples, 300 * SAMPLES_PER_HOUSE as u64);
        assert_eq!(report.sweep_combos, 9);
        assert_eq!(report.identity_houses, 300);
        // 4-bit symbols: 96 × 4 bits = 48 bytes/house packed.
        assert!((report.packed_bytes_per_house - 48.0).abs() < 1.0);
        assert!(report.raw_bytes_per_house > report.packed_bytes_per_house);
        let json = report.to_json();
        let doc = sms_core::json::parse(&json).unwrap();
        assert_eq!(doc.get("houses").and_then(|v| v.as_u64()), Some(300));
        assert!(doc.get("samples_per_sec").and_then(|v| v.as_f64()).unwrap() > 0.0);
    }

    #[test]
    fn house_series_is_deterministic() {
        let a = house_series(42, 7);
        let b = house_series(42, 7);
        assert_eq!(a.values(), b.values());
        let c = house_series(42, 8);
        assert_ne!(a.values(), c.values());
    }
}
