//! Experiment scales. `quick` keeps every experiment's code path exercisable
//! in seconds (used by `cargo test` smoke tests); `paper` approximates the
//! paper's data volumes (REDD: 1–2 months at 1 Hz — we default to 36 days at
//! 10 s sampling, which preserves every distributional property the
//! experiments measure while keeping the full Table 1 grid tractable).
//! Arbitrary sizes parse as comma-separated `key=value` overrides on top of
//! a preset — `repro scale --scale paper,houses=1000000` — with a typed
//! [`ScaleParseError`] on junk input.

use std::fmt;

/// Data volume and evaluation effort for one experiment run.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub struct Scale {
    /// Days of simulated data per house.
    pub days: i64,
    /// Sampling interval in seconds (REDD is 1; we trade rate for tractability).
    pub interval_secs: i64,
    /// Random-forest ensemble size.
    pub forest_trees: usize,
    /// Cross-validation folds (the paper uses 10).
    pub cv_folds: usize,
    /// Master seed for the simulator and learners.
    pub seed: u64,
    /// Houses in fleet-wide experiments (`repro scale`, fleet encodes).
    pub houses: usize,
}

/// Why a `--scale` argument failed to parse.
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct ScaleParseError {
    /// The argument as given.
    pub input: String,
    /// What was wrong with it.
    pub reason: String,
}

impl fmt::Display for ScaleParseError {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        write!(
            f,
            "invalid scale {:?}: {} (expected `quick`, `paper`, or comma-separated \
             key=value overrides of days/interval/trees/folds/seed/houses, e.g. \
             `paper,houses=1000000`)",
            self.input, self.reason
        )
    }
}

impl std::error::Error for ScaleParseError {}

impl Scale {
    /// Seconds-fast scale for smoke tests.
    pub fn quick() -> Self {
        Scale { days: 8, interval_secs: 120, forest_trees: 10, cv_folds: 5, seed: 42, houses: 50 }
    }

    /// Paper-comparable scale.
    pub fn paper() -> Self {
        Scale { days: 36, interval_secs: 10, forest_trees: 30, cv_folds: 10, seed: 42, houses: 200 }
    }

    /// Parses a scale spec: a preset name (`"quick"`, `"paper"`), a bare
    /// override list applied to `quick` (`"houses=5000"`), or a preset
    /// followed by overrides (`"paper,days=10,houses=100000"`). Keys:
    /// `days`, `interval`, `trees`, `folds`, `seed`, `houses`.
    pub fn parse(s: &str) -> Result<Self, ScaleParseError> {
        let err = |reason: String| ScaleParseError { input: s.to_string(), reason };
        if s.is_empty() {
            return Err(err("empty spec".to_string()));
        }
        let mut parts = s.split(',');
        let first = parts.next().expect("split yields at least one part");
        let mut scale = match first {
            "quick" => Self::quick(),
            "paper" => Self::paper(),
            _ if first.contains('=') => {
                // No preset named: overrides apply to `quick`.
                parts = s.split(',');
                Self::quick()
            }
            other => return Err(err(format!("unknown preset `{other}`"))),
        };
        for part in parts {
            let (key, value) = part
                .split_once('=')
                .ok_or_else(|| err(format!("expected key=value, got `{part}`")))?;
            let parse_pos = |what: &str| -> Result<u64, ScaleParseError> {
                let v: u64 = value.parse().map_err(|_| {
                    err(format!("`{key}` needs a non-negative integer, got `{value}`"))
                })?;
                if v == 0 {
                    return Err(err(format!("`{what}` must be at least 1")));
                }
                Ok(v)
            };
            match key {
                "days" => scale.days = parse_pos("days")? as i64,
                "interval" | "interval_secs" => scale.interval_secs = parse_pos("interval")? as i64,
                "trees" | "forest_trees" => scale.forest_trees = parse_pos("trees")? as usize,
                "folds" | "cv_folds" => scale.cv_folds = parse_pos("folds")? as usize,
                "seed" => {
                    scale.seed = value
                        .parse()
                        .map_err(|_| err(format!("`seed` needs an integer, got `{value}`")))?
                }
                "houses" => scale.houses = parse_pos("houses")? as usize,
                other => return Err(err(format!("unknown key `{other}`"))),
            }
        }
        Ok(scale)
    }

    /// Training prefix the paper uses for separator learning: the first two
    /// days of each house (§3).
    pub fn training_prefix_secs(&self) -> i64 {
        2 * 86_400
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn parse_known_scales() {
        assert_eq!(Scale::parse("quick"), Ok(Scale::quick()));
        assert_eq!(Scale::parse("paper"), Ok(Scale::paper()));
        assert!(Scale::parse("huge").is_err());
    }

    #[test]
    fn parse_overrides() {
        let s = Scale::parse("paper,houses=1000000,days=1").unwrap();
        assert_eq!(s.houses, 1_000_000);
        assert_eq!(s.days, 1);
        assert_eq!(s.interval_secs, Scale::paper().interval_secs);
        // Bare overrides apply to quick.
        let s = Scale::parse("houses=5000").unwrap();
        assert_eq!(s.houses, 5000);
        assert_eq!(s.days, Scale::quick().days);
    }

    #[test]
    fn parse_junk_is_a_typed_error() {
        for junk in [
            "",
            "mega",
            "paper,houses=",
            "paper,houses=abc",
            "paper,houses=0",
            "paper,wat=3",
            "paper,houses",
        ] {
            let e = Scale::parse(junk).unwrap_err();
            assert_eq!(e.input, junk);
            assert!(e.to_string().contains("invalid scale"), "{e}");
        }
    }

    #[test]
    fn paper_scale_is_larger() {
        let q = Scale::quick();
        let p = Scale::paper();
        assert!(p.days > q.days);
        assert!(p.interval_secs < q.interval_secs);
        assert!(p.houses > q.houses);
        assert_eq!(p.cv_folds, 10, "the paper's protocol");
    }
}
