//! Experiment scales. `quick` keeps every experiment's code path exercisable
//! in seconds (used by `cargo test` smoke tests); `paper` approximates the
//! paper's data volumes (REDD: 1–2 months at 1 Hz — we default to 36 days at
//! 10 s sampling, which preserves every distributional property the
//! experiments measure while keeping the full Table 1 grid tractable).

/// Data volume and evaluation effort for one experiment run.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub struct Scale {
    /// Days of simulated data per house.
    pub days: i64,
    /// Sampling interval in seconds (REDD is 1; we trade rate for tractability).
    pub interval_secs: i64,
    /// Random-forest ensemble size.
    pub forest_trees: usize,
    /// Cross-validation folds (the paper uses 10).
    pub cv_folds: usize,
    /// Master seed for the simulator and learners.
    pub seed: u64,
}

impl Scale {
    /// Seconds-fast scale for smoke tests.
    pub fn quick() -> Self {
        Scale { days: 8, interval_secs: 120, forest_trees: 10, cv_folds: 5, seed: 42 }
    }

    /// Paper-comparable scale.
    pub fn paper() -> Self {
        Scale { days: 36, interval_secs: 10, forest_trees: 30, cv_folds: 10, seed: 42 }
    }

    /// Parses `"quick"` / `"paper"`.
    pub fn parse(s: &str) -> Option<Self> {
        match s {
            "quick" => Some(Self::quick()),
            "paper" => Some(Self::paper()),
            _ => None,
        }
    }

    /// Training prefix the paper uses for separator learning: the first two
    /// days of each house (§3).
    pub fn training_prefix_secs(&self) -> i64 {
        2 * 86_400
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn parse_known_scales() {
        assert_eq!(Scale::parse("quick"), Some(Scale::quick()));
        assert_eq!(Scale::parse("paper"), Some(Scale::paper()));
        assert_eq!(Scale::parse("huge"), None);
    }

    #[test]
    fn paper_scale_is_larger() {
        let q = Scale::quick();
        let p = Scale::paper();
        assert!(p.days > q.days);
        assert!(p.interval_secs < q.interval_secs);
        assert_eq!(p.cv_folds, 10, "the paper's protocol");
    }
}
