//! ARFF export of the experiment datasets — regenerates the files the paper
//! fed to Weka ("The so generated files were used as input for Weka's
//! implementation of various classifiers", §3.1), so the whole evaluation
//! can be cross-checked against a real Weka installation.

use crate::classification::EncodingSpec;
use crate::prep::{per_house_tables, raw_day_vectors, symbolic_day_vectors, PAPER_MIN_COVERAGE};
use crate::scale::Scale;
use meterdata::dataset::MeterDataset;
use sms_core::error::{Error, Result};
use sms_ml::arff::to_arff;
use std::path::Path;

fn write(path: &Path, content: &str) -> Result<()> {
    std::fs::write(path, content)
        .map_err(|e| Error::WireFormat(format!("write {}: {e}", path.display())))
}

/// Writes one ARFF per grid encoding plus the raw baselines into `dir`.
/// Returns the file names written.
pub fn export_arff(ds: &MeterDataset, scale: Scale, dir: &Path) -> Result<Vec<String>> {
    std::fs::create_dir_all(dir)
        .map_err(|e| Error::WireFormat(format!("mkdir {}: {e}", dir.display())))?;
    let mut written = Vec::new();
    for spec in EncodingSpec::paper_grid() {
        let tables = per_house_tables(ds, spec.method, spec.bits, scale.training_prefix_secs())?;
        let inst = symbolic_day_vectors(ds, spec.window_secs, &tables, PAPER_MIN_COVERAGE)?;
        let name = format!(
            "{}_{}_{}s.arff",
            spec.method.name(),
            if spec.window_secs == 3600 { "1h" } else { "15m" },
            1u32 << spec.bits
        );
        let text = to_arff(&inst, &spec.label()).map_err(|e| Error::WireFormat(e.to_string()))?;
        write(&dir.join(&name), &text)?;
        written.push(name);
    }
    for (label, window) in [("raw_1h", 3600i64), ("raw_15m", 900)] {
        let inst = raw_day_vectors(ds, window, PAPER_MIN_COVERAGE)?;
        let name = format!("{label}.arff");
        let text = to_arff(&inst, label).map_err(|e| Error::WireFormat(e.to_string()))?;
        write(&dir.join(&name), &text)?;
        written.push(name);
    }
    Ok(written)
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::prep::dataset;
    use sms_ml::arff::from_arff;

    #[test]
    fn export_writes_parseable_arff() {
        let scale = Scale {
            days: 5,
            interval_secs: 600,
            forest_trees: 4,
            cv_folds: 2,
            seed: 3,
            ..Scale::quick()
        };
        let ds = dataset(scale).unwrap();
        let dir = std::env::temp_dir().join(format!("sms_arff_{}", std::process::id()));
        let _ = std::fs::remove_dir_all(&dir);
        let files = export_arff(&ds, scale, &dir).unwrap();
        assert_eq!(files.len(), 26, "24 encodings + 2 raw baselines");
        // Spot check: round-trip one symbolic and one raw file.
        for name in ["median_1h_16s.arff", "raw_15m.arff"] {
            let text = std::fs::read_to_string(dir.join(name)).unwrap();
            let inst = from_arff(&text).unwrap();
            assert!(inst.len() > 10, "{name}: {}", inst.len());
            assert_eq!(inst.num_classes().unwrap(), 6);
        }
        let _ = std::fs::remove_dir_all(&dir);
    }
}
