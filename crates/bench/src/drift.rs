//! §4 extension experiment: on-the-fly lookup-table adaptation under
//! seasonal drift ("to study the effect of seasonal change, one can consider
//! to use Irish CER dataset which has more than one year measurement").
//!
//! We run a CER-like multi-season stream through a static encoder and
//! through [`sms_core::adaptive::AdaptiveEncoder`], and compare
//! reconstruction error and table-rebuild counts.

use meterdata::generator::cer_like;
use sms_core::adaptive::AdaptiveEncoder;
use sms_core::alphabet::Alphabet;
use sms_core::encoder::{OnlineEncoder, SensorMessage};
use sms_core::error::{Error, Result};
use sms_core::lookup::{LookupTable, SymbolSemantics};
use sms_core::separators::SeparatorMethod;
use sms_core::timeseries::{TimeSeries, Timestamp};
use sms_core::vertical::Aggregation;

/// Outcome of the drift experiment.
#[derive(Debug, Clone)]
pub struct DriftReport {
    /// Reconstruction MAE (watts) with the static day-one table.
    pub static_mae: f64,
    /// Reconstruction MAE with the adaptive encoder.
    pub adaptive_mae: f64,
    /// Table rebuilds the adaptive encoder performed.
    pub rebuilds: u64,
    /// Windows compared.
    pub symbols: u64,
}

/// Unifying view over the two sensor-side encoders.
trait StreamEncoder {
    fn push(&mut self, t: Timestamp, v: f64) -> Result<Vec<SensorMessage>>;
    fn finish(&mut self) -> Vec<SensorMessage>;
}

/// Static encoder that announces its fixed table once up front.
struct StaticEncoder {
    encoder: OnlineEncoder,
    pending_table: Option<LookupTable>,
}

impl StreamEncoder for StaticEncoder {
    fn push(&mut self, t: Timestamp, v: f64) -> Result<Vec<SensorMessage>> {
        let mut msgs = Vec::new();
        if let Some(table) = self.pending_table.take() {
            msgs.push(SensorMessage::Table(table));
        }
        if let Some(w) = self.encoder.push(t, v)? {
            msgs.push(SensorMessage::Window(w));
        }
        Ok(msgs)
    }

    fn finish(&mut self) -> Vec<SensorMessage> {
        self.encoder.finish().map(SensorMessage::Window).into_iter().collect()
    }
}

/// Adaptive encoder that announces its initial table once up front.
struct AdaptiveStream {
    encoder: AdaptiveEncoder,
    pending_table: Option<LookupTable>,
}

impl StreamEncoder for AdaptiveStream {
    fn push(&mut self, t: Timestamp, v: f64) -> Result<Vec<SensorMessage>> {
        let mut msgs = Vec::new();
        if let Some(table) = self.pending_table.take() {
            msgs.push(SensorMessage::Table(table));
        }
        msgs.extend(self.encoder.push(t, v)?);
        Ok(msgs)
    }

    fn finish(&mut self) -> Vec<SensorMessage> {
        self.encoder.finish()
    }
}

/// Streams a series through an encoder, decodes every window with the table
/// in force at that time, and reports MAE against the batch aggregates.
fn reconstruction_mae(
    series: &TimeSeries,
    window_secs: i64,
    enc: &mut dyn StreamEncoder,
) -> Result<(f64, u64)> {
    let truth_series =
        sms_core::vertical::aggregate_by_window(series, window_secs, Aggregation::Mean, 1)?;
    let mut truth: std::collections::BTreeMap<Timestamp, f64> = truth_series.iter().collect();

    let mut current_table: Option<LookupTable> = None;
    let mut err = 0.0;
    let mut n = 0u64;
    let mut consume = |msgs: Vec<SensorMessage>,
                       current_table: &mut Option<LookupTable>|
     -> Result<()> {
        for m in msgs {
            match m {
                SensorMessage::Table(t) => *current_table = Some(t),
                SensorMessage::Window(w) => {
                    let table =
                        current_table.as_ref().ok_or(Error::EmptyInput("window before table"))?;
                    let d = table.decode_symbol(w.symbol, SymbolSemantics::RangeCenter)?;
                    if let Some(actual) = truth.remove(&w.window_start) {
                        err += (actual - d).abs();
                        n += 1;
                    }
                }
            }
        }
        Ok(())
    };
    for (t, v) in series.iter() {
        let msgs = enc.push(t, v)?;
        consume(msgs, &mut current_table)?;
    }
    let tail = enc.finish();
    consume(tail, &mut current_table)?;
    if n == 0 {
        return Err(Error::EmptyInput("reconstruction_mae: no overlapping windows"));
    }
    Ok((err / n as f64, n))
}

/// Runs the drift experiment: `days` of half-hourly CER-like data spanning
/// seasons, k = 16 symbols, aggregation windows of `window_secs`.
pub fn run_drift(seed: u64, days: i64, window_secs: i64) -> Result<DriftReport> {
    let ds = cer_like(seed, 1, days).generate()?;
    let series = &ds.records()[0].series;
    let train = series.head_duration(2 * 86_400);
    if train.is_empty() {
        return Err(Error::EmptyInput("run_drift: no training data"));
    }
    let alphabet = Alphabet::with_size(16)?;
    let table = LookupTable::learn(SeparatorMethod::Median, alphabet, &train.values())?;

    let mut static_enc = StaticEncoder {
        encoder: OnlineEncoder::new(table.clone(), window_secs, Aggregation::Mean)?,
        pending_table: Some(table.clone()),
    };
    let (static_mae, symbols) = reconstruction_mae(series, window_secs, &mut static_enc)?;

    let mut adaptive = AdaptiveStream {
        encoder: AdaptiveEncoder::new(
            table.clone(),
            train.values(),
            SeparatorMethod::Median,
            window_secs,
            Aggregation::Mean,
            0.2,
            14 * 48, // two weeks of half-hourly samples
        )?,
        pending_table: Some(table),
    };
    let (adaptive_mae, _) = reconstruction_mae(series, window_secs, &mut adaptive)?;

    Ok(DriftReport {
        static_mae,
        adaptive_mae,
        rebuilds: adaptive.encoder.stats().rebuilds,
        symbols,
    })
}

impl DriftReport {
    /// Text rendering.
    pub fn render(&self) -> String {
        format!(
            "Seasonal drift (CER-like stream)\n\
             static table    MAE: {:>8.1} W\n\
             adaptive tables MAE: {:>8.1} W  ({} rebuilds over {} windows)\n",
            self.static_mae, self.adaptive_mae, self.rebuilds, self.symbols
        )
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn drift_experiment_runs() {
        // Half a year spanning winter→summer, daily windows.
        let r = run_drift(5, 180, 86_400).unwrap();
        assert!(r.symbols > 100);
        assert!(r.static_mae.is_finite() && r.static_mae > 0.0);
        assert!(r.adaptive_mae.is_finite() && r.adaptive_mae > 0.0);
        assert!(r.render().contains("rebuilds"));
    }

    #[test]
    fn adaptation_rebuilds_under_seasonal_change() {
        let r = run_drift(5, 240, 86_400).unwrap();
        assert!(r.rebuilds >= 1, "seasonal shift should trigger at least one rebuild");
    }
}
