//! `repro drift` — injected-drift adaptation experiment.
//!
//! [`meterdata::generator::cer_drifted`] materializes a CER-like fleet whose
//! houses change character at a known day (new always-on equipment, a
//! seasonal heating uptick, a seasonally shifted daily rhythm). The
//! run measures reconstruction accuracy **before / during / after** the
//! drift, once with the static day-one lookup table and once with
//! [`sms_core::adaptive::AdaptiveEncoder`] re-learning separators from its
//! drift-window sketch and shipping each rebuilt table under a new epoch.
//!
//! Two further legs exercise the fleet path: the drifted fleet runs through
//! the sharded engine with its drift gate enabled (pre-drift batch, then
//! post-drift batch — every house must cut to epoch 1), and a topology
//! sweep re-runs both batches at {1,4,16} shards × {1,2,8} workers proving
//! the symbols *and* epochs byte-identical across the cutover.

use meterdata::generator::cer_drifted;
use sms_core::adaptive::{AdaptiveEncoder, AdaptiveStats};
use sms_core::alphabet::Alphabet;
use sms_core::encoder::{OnlineEncoder, SensorMessage};
use sms_core::engine::EngineStats;
use sms_core::error::{Error, Result};
use sms_core::json::JsonWriter;
use sms_core::lookup::{LookupTable, SymbolSemantics};
use sms_core::pipeline::CodecBuilder;
use sms_core::separators::SeparatorMethod;
use sms_core::shard::{DriftConfig, ShardedEngineConfig, ShardedFleetEngine};
use sms_core::timeseries::{Sample, TimeSeries, Timestamp, SECONDS_PER_DAY};
use sms_core::vertical::Aggregation;

/// Symbols per table (k = 16, the paper's default resolution).
const ALPHABET: usize = 16;
/// Aggregation window for encoded symbols (hourly over half-hourly data).
const WINDOW_SECS: i64 = 3600;
/// Days of pre-drift data the day-one table is trained on.
const TRAIN_DAYS: i64 = 4;
/// Drift-detector window in samples (4 days of half-hourly readings). The
/// detector compares its reference sketch against the last `window..2×window`
/// samples, so the adaptation lag is bounded by twice this count.
const DETECT_WINDOW: usize = 4 * 48;
/// KS-distance threshold that triggers a rebuild.
const THRESHOLD: f64 = 0.2;

/// Reconstruction MAE (watts) split at the drift cut: `pre` covers windows
/// before the cut, `during` the adaptation-lag span right after it (twice
/// the detector window), `post` everything later.
#[derive(Debug, Clone, Copy, Default)]
pub struct PhaseMae {
    /// MAE over windows that end before the drift cut.
    pub pre: f64,
    /// MAE over the adaptation-lag span right after the cut.
    pub during: f64,
    /// MAE after the adaptation-lag span.
    pub post: f64,
}

/// Outcome of the drift experiment.
#[derive(Debug, Clone)]
pub struct DriftReport {
    /// Houses in the fleet.
    pub houses: usize,
    /// Days generated.
    pub days: i64,
    /// Day every house cut to its post-drift configuration.
    pub drift_day: i64,
    /// Per-phase MAE with the frozen day-one table.
    pub static_mae: PhaseMae,
    /// Per-phase MAE with the adaptive encoder.
    pub adaptive_mae: PhaseMae,
    /// Table rebuilds across the adaptive streams.
    pub rebuilds: u64,
    /// Epoch tables shipped over the wire (one per rebuild).
    pub epochs_shipped: u64,
    /// Windows compared per encoder.
    pub symbols: u64,
    /// Houses the sharded engine's drift gate cut to a new epoch.
    pub fleet_cutovers: u64,
    /// Shard × worker combinations whose output matched byte-for-byte
    /// across the cutover.
    pub sweep_combos: usize,
    /// Whether post-drift adaptive MAE recovered to within 5% of the
    /// pre-drift baseline.
    pub recovered: bool,
    /// Engine counters with the `adaptive` block aggregated over every leg.
    pub stats: EngineStats,
}

impl DriftReport {
    /// Machine-readable record (the `drift_bench:` payload).
    pub fn to_json(&self) -> String {
        let a = self.stats.adaptive.as_ref().expect("run_drift always sets the adaptive block");
        let mut w = JsonWriter::new();
        w.begin_object();
        w.key("houses").u64(self.houses as u64);
        w.key("days").u64(self.days as u64);
        w.key("drift_day").u64(self.drift_day as u64);
        w.key("static_mae_pre").f64(self.static_mae.pre);
        w.key("static_mae_during").f64(self.static_mae.during);
        w.key("static_mae_post").f64(self.static_mae.post);
        w.key("adaptive_mae_pre").f64(self.adaptive_mae.pre);
        w.key("adaptive_mae_during").f64(self.adaptive_mae.during);
        w.key("adaptive_mae_post").f64(self.adaptive_mae.post);
        w.key("rebuilds").u64(self.rebuilds);
        w.key("epochs_shipped").u64(self.epochs_shipped);
        w.key("symbols").u64(self.symbols);
        w.key("fleet_cutovers").u64(self.fleet_cutovers);
        w.key("sweep_combos").u64(self.sweep_combos as u64);
        w.key("recovered").u64(self.recovered as u64);
        w.key("sketch_bytes").u64(a.sketch_bytes);
        w.key("suppressed_hysteresis").u64(a.suppressed_hysteresis);
        w.key("suppressed_min_interval").u64(a.suppressed_min_interval);
        w.end_object();
        w.finish()
    }
}

/// Text rendering of a [`DriftReport`].
pub fn render_drift(r: &DriftReport) -> String {
    format!(
        "Injected drift ({} houses, {} days, cut at day {})\n\
         phase MAE (W)        pre      during    post\n\
         static table    {:>8.1}  {:>8.1}  {:>8.1}\n\
         adaptive tables {:>8.1}  {:>8.1}  {:>8.1}\n\
         rebuilds: {} ({} epoch tables shipped) over {} windows/encoder\n\
         fleet drift gate: {} houses cut over; {} topology combos byte-identical\n\
         post-drift recovery to within 5% of baseline: {}\n\
         note: the `during` column is the adaptation lag — the detector needs\n\
         a window of post-drift samples before it can fire, so the adaptive\n\
         path degrades exactly like the static one until the first cutover.\n",
        r.houses,
        r.days,
        r.drift_day,
        r.static_mae.pre,
        r.static_mae.during,
        r.static_mae.post,
        r.adaptive_mae.pre,
        r.adaptive_mae.during,
        r.adaptive_mae.post,
        r.rebuilds,
        r.epochs_shipped,
        r.symbols,
        r.fleet_cutovers,
        r.sweep_combos,
        if r.recovered { "yes" } else { "NO" },
    )
}

/// Unifying view over the two sensor-side encoders.
trait StreamEncoder {
    fn push(&mut self, t: Timestamp, v: f64) -> Result<Vec<SensorMessage>>;
    fn finish(&mut self) -> Vec<SensorMessage>;
}

/// Static encoder that announces its fixed table once up front.
struct StaticEncoder {
    encoder: OnlineEncoder,
    pending_table: Option<LookupTable>,
}

impl StreamEncoder for StaticEncoder {
    fn push(&mut self, t: Timestamp, v: f64) -> Result<Vec<SensorMessage>> {
        let mut msgs = Vec::new();
        if let Some(table) = self.pending_table.take() {
            msgs.push(SensorMessage::Table(table));
        }
        if let Some(w) = self.encoder.push(t, v)? {
            msgs.push(SensorMessage::Window(w));
        }
        Ok(msgs)
    }

    fn finish(&mut self) -> Vec<SensorMessage> {
        self.encoder.finish().map(SensorMessage::Window).into_iter().collect()
    }
}

/// Adaptive encoder that announces its initial table once up front.
struct AdaptiveStream {
    encoder: AdaptiveEncoder,
    pending_table: Option<LookupTable>,
}

impl StreamEncoder for AdaptiveStream {
    fn push(&mut self, t: Timestamp, v: f64) -> Result<Vec<SensorMessage>> {
        let mut msgs = Vec::new();
        if let Some(table) = self.pending_table.take() {
            msgs.push(SensorMessage::Table(table));
        }
        msgs.extend(self.encoder.push(t, v)?);
        Ok(msgs)
    }

    fn finish(&mut self) -> Vec<SensorMessage> {
        self.encoder.finish()
    }
}

/// Error/count accumulator for one phase.
#[derive(Default, Clone, Copy)]
struct PhaseAcc {
    err: f64,
    n: u64,
}

impl PhaseAcc {
    fn mae(&self) -> f64 {
        if self.n == 0 {
            0.0
        } else {
            self.err / self.n as f64
        }
    }
}

/// Streams a series through an encoder, decodes every window with the table
/// in force at that time (epoch cutovers included), and accumulates absolute
/// error against the batch aggregates, bucketed by phase boundary.
fn reconstruction_phases(
    series: &TimeSeries,
    enc: &mut dyn StreamEncoder,
    cut: Timestamp,
    settle: Timestamp,
) -> Result<([PhaseAcc; 3], u64)> {
    let truth_series =
        sms_core::vertical::aggregate_by_window(series, WINDOW_SECS, Aggregation::Mean, 1)?;
    let mut truth: std::collections::BTreeMap<Timestamp, f64> = truth_series.iter().collect();

    let mut current_table: Option<LookupTable> = None;
    let mut phases = [PhaseAcc::default(); 3];
    let mut symbols = 0u64;
    let mut consume = |msgs: Vec<SensorMessage>,
                       current_table: &mut Option<LookupTable>|
     -> Result<()> {
        for m in msgs {
            match m {
                SensorMessage::Table(t) => *current_table = Some(t),
                SensorMessage::EpochTable { table, .. } => *current_table = Some(table),
                SensorMessage::Window(w) => {
                    let table =
                        current_table.as_ref().ok_or(Error::EmptyInput("window before table"))?;
                    let d = table.decode_symbol(w.symbol, SymbolSemantics::RangeCenter)?;
                    if let Some(actual) = truth.remove(&w.window_start) {
                        let phase = if w.window_start < cut {
                            0
                        } else if w.window_start < settle {
                            1
                        } else {
                            2
                        };
                        phases[phase].err += (actual - d).abs();
                        phases[phase].n += 1;
                        symbols += 1;
                    }
                }
            }
        }
        Ok(())
    };
    for (t, v) in series.iter() {
        let msgs = enc.push(t, v)?;
        consume(msgs, &mut current_table)?;
    }
    let tail = enc.finish();
    consume(tail, &mut current_table)?;
    if symbols == 0 {
        return Err(Error::EmptyInput("reconstruction_phases: no overlapping windows"));
    }
    Ok((phases, symbols))
}

/// Splits a series at timestamp `cut` into (before, from-cut-on) halves.
fn split_at(series: &TimeSeries, cut: Timestamp) -> Result<(TimeSeries, TimeSeries)> {
    let before: Vec<Sample> =
        series.iter().filter(|(t, _)| *t < cut).map(|(t, v)| Sample::new(t, v)).collect();
    let after: Vec<Sample> =
        series.iter().filter(|(t, _)| *t >= cut).map(|(t, v)| Sample::new(t, v)).collect();
    Ok((TimeSeries::from_samples(before)?, TimeSeries::from_samples(after)?))
}

/// Fleet leg: run the drifted fleet through the sharded engine with its
/// drift gate on — a pre-drift batch, then a post-drift batch — and return
/// `(cutover houses, engine, samples_in, symbols_out)`.
fn run_fleet_leg(
    fleet_pre: &[(u64, TimeSeries)],
    fleet_post: &[(u64, TimeSeries)],
    shards: usize,
    workers: usize,
) -> Result<(u64, ShardedFleetEngine, u64, u64)> {
    let builder = CodecBuilder::new()
        .method(SeparatorMethod::Median)
        .alphabet_size(ALPHABET)?
        .window_secs(WINDOW_SECS);
    let config = ShardedEngineConfig::with_shards(shards)
        .workers(workers)
        .drift(DriftConfig { threshold: THRESHOLD, window: DETECT_WINDOW });
    let mut engine = ShardedFleetEngine::new(builder, config)?;
    let enc_pre = engine.encode_batch(fleet_pre)?;
    let enc_post = engine.encode_batch(fleet_post)?;
    if enc_pre.epochs.iter().any(|&e| e != 0) {
        return Err(Error::Engine("drift gate fired on pre-drift data".into()));
    }
    let cutovers = enc_post.epochs.iter().filter(|&&e| e > 0).count() as u64;
    let samples: u64 = fleet_pre.iter().chain(fleet_post).map(|(_, ts)| ts.len() as u64).sum();
    let symbols: u64 = enc_pre.series.iter().chain(&enc_post.series).map(|s| s.len() as u64).sum();
    Ok((cutovers, engine, samples, symbols))
}

/// Topology sweep: both batches re-run at {1,4,16} shards × {1,2,8} workers
/// must yield identical symbols and identical epoch vectors.
fn sweep_topologies(
    fleet_pre: &[(u64, TimeSeries)],
    fleet_post: &[(u64, TimeSeries)],
) -> Result<usize> {
    let mut reference: Option<(Vec<_>, Vec<u32>, Vec<_>, Vec<u32>)> = None;
    let mut combos = 0usize;
    for shards in [1usize, 4, 16] {
        for workers in [1usize, 2, 8] {
            let builder = CodecBuilder::new()
                .method(SeparatorMethod::Median)
                .alphabet_size(ALPHABET)?
                .window_secs(WINDOW_SECS);
            let config = ShardedEngineConfig::with_shards(shards)
                .workers(workers)
                .drift(DriftConfig { threshold: THRESHOLD, window: DETECT_WINDOW });
            let mut engine = ShardedFleetEngine::new(builder, config)?;
            let pre = engine.encode_batch(fleet_pre)?;
            let post = engine.encode_batch(fleet_post)?;
            let image = (pre.series, pre.epochs, post.series, post.epochs);
            match &reference {
                None => reference = Some(image),
                Some(expected) if *expected == image => {}
                Some(_) => {
                    return Err(Error::Engine(format!(
                        "drift output differs at {shards} shards x {workers} workers — \
                         the cutover leaked topology into the symbols"
                    )));
                }
            }
            combos += 1;
        }
    }
    Ok(combos)
}

/// Runs the drift experiment at `scale` (fleet size and duration derive from
/// it; `shards`/`workers` size the fleet leg's main run).
pub fn run_drift(scale: crate::Scale, shards: usize, workers: usize) -> Result<DriftReport> {
    let days = if scale.days >= 30 { 60 } else { 40 };
    let drift_day = days / 2;
    let houses = scale.houses.clamp(2, 6) as u32;
    let cut = drift_day * SECONDS_PER_DAY;
    // Adaptation-lag span: detection takes up to 2× the detector window of
    // post-drift samples (the effective window must fill with them), and the
    // first rebuild can land on a window straddling the cut — the corrective
    // rebuild is then gated by the min-interval (one more window). "during"
    // covers that whole lag; "post" is steady state.
    let settle = cut + 3 * DETECT_WINDOW as i64 * 1800;

    let ds = cer_drifted(scale.seed, houses, days, drift_day).generate()?;

    let alphabet = Alphabet::with_size(ALPHABET)?;
    let mut static_acc = [PhaseAcc::default(); 3];
    let mut adaptive_acc = [PhaseAcc::default(); 3];
    let mut symbols = 0u64;
    let mut adaptive_stats = AdaptiveStats::default();
    for r in ds.records() {
        let train = r.series.head_duration(TRAIN_DAYS * SECONDS_PER_DAY);
        if train.is_empty() {
            return Err(Error::EmptyInput("run_drift: no training data"));
        }
        let table = LookupTable::learn(SeparatorMethod::Median, alphabet, &train.values())?;

        let mut static_enc = StaticEncoder {
            encoder: OnlineEncoder::new(table.clone(), WINDOW_SECS, Aggregation::Mean)?,
            pending_table: Some(table.clone()),
        };
        let (sp, n) = reconstruction_phases(&r.series, &mut static_enc, cut, settle)?;
        symbols += n;

        let mut adaptive = AdaptiveStream {
            encoder: AdaptiveEncoder::new(
                table.clone(),
                train.values(),
                SeparatorMethod::Median,
                WINDOW_SECS,
                Aggregation::Mean,
                THRESHOLD,
                DETECT_WINDOW,
            )?,
            pending_table: Some(table),
        };
        let (ap, _) = reconstruction_phases(&r.series, &mut adaptive, cut, settle)?;
        adaptive_stats.merge(&adaptive.encoder.stats());

        for i in 0..3 {
            static_acc[i].err += sp[i].err;
            static_acc[i].n += sp[i].n;
            adaptive_acc[i].err += ap[i].err;
            adaptive_acc[i].n += ap[i].n;
        }
    }

    // Fleet legs: drift gate through the sharded engine + topology sweep.
    let mut fleet_pre = Vec::with_capacity(ds.records().len());
    let mut fleet_post = Vec::with_capacity(ds.records().len());
    for r in ds.records() {
        let (before, after) = split_at(&r.series, cut)?;
        fleet_pre.push((r.house_id as u64, before));
        fleet_post.push((r.house_id as u64, after));
    }
    let (fleet_cutovers, engine, samples_in, symbols_out) =
        run_fleet_leg(&fleet_pre, &fleet_post, shards.max(1), workers.max(1))?;
    let sweep_combos = sweep_topologies(&fleet_pre, &fleet_post)?;

    adaptive_stats.merge(&engine.adaptive_stats());
    let static_mae = PhaseMae {
        pre: static_acc[0].mae(),
        during: static_acc[1].mae(),
        post: static_acc[2].mae(),
    };
    let adaptive_mae = PhaseMae {
        pre: adaptive_acc[0].mae(),
        during: adaptive_acc[1].mae(),
        post: adaptive_acc[2].mae(),
    };
    let recovered = adaptive_mae.post <= adaptive_mae.pre * 1.05;
    let rebuilds = adaptive_stats.rebuilds;
    let epochs_shipped = adaptive_stats.epochs_shipped;

    let stats = EngineStats {
        workers: workers.max(1),
        houses: houses as usize,
        samples_in,
        symbols_out,
        shard: Some(engine.stats()),
        pool: Some(engine.pool_stats()),
        adaptive: Some(adaptive_stats),
        ..EngineStats::default()
    };

    Ok(DriftReport {
        houses: houses as usize,
        days,
        drift_day,
        static_mae,
        adaptive_mae,
        rebuilds,
        epochs_shipped,
        symbols,
        fleet_cutovers,
        sweep_combos,
        recovered,
        stats,
    })
}

#[cfg(test)]
mod tests {
    use super::*;

    fn quick_report() -> DriftReport {
        run_drift(crate::Scale::quick(), 2, 2).unwrap()
    }

    #[test]
    fn adaptation_recovers_where_the_static_table_degrades() {
        let r = quick_report();
        assert!(r.symbols > 100);
        assert!(
            r.static_mae.post > r.static_mae.pre * 1.3,
            "static table should degrade measurably: pre {} post {}",
            r.static_mae.pre,
            r.static_mae.post
        );
        assert!(
            r.recovered,
            "adaptive post-drift MAE {} should be within 5% of pre-drift {}",
            r.adaptive_mae.post, r.adaptive_mae.pre
        );
        assert!(
            r.adaptive_mae.post < r.static_mae.post,
            "adaptation should beat the static table post-drift: {} vs {}",
            r.adaptive_mae.post,
            r.static_mae.post
        );
        assert!(r.rebuilds >= r.houses as u64, "every house should rebuild at least once");
        assert_eq!(r.rebuilds, r.epochs_shipped);
    }

    #[test]
    fn fleet_drift_gate_cuts_every_house_across_all_topologies() {
        let r = quick_report();
        assert_eq!(r.fleet_cutovers, r.houses as u64, "every house cuts to a new epoch");
        assert_eq!(r.sweep_combos, 9, "{{1,4,16}} shards x {{1,2,8}} workers");
        let a = r.stats.adaptive.as_ref().unwrap();
        assert!(a.sketch_bytes > 0, "sketch memory is reported");
        // O(log n) witness: sketches stay far below the raw sample footprint.
        assert!(
            a.sketch_bytes < 64 * 1024 * (2 * r.houses as u64),
            "bounded sketch memory, got {}",
            a.sketch_bytes
        );
        let json = r.to_json();
        assert!(json.contains("\"recovered\":1"), "json: {json}");
        assert!(render_drift(&r).contains("adaptation lag"));
    }
}
