//! Table 1 reproduction: weighted F-measure for every classifier × every
//! encoding, with per-house and global (`+`) table variants, plus the raw
//! 1 h / 15 m / full-rate rows.

use crate::classification::{run_raw, run_symbolic, Cell, ClassifierKind, EncodingSpec, TableMode};
use crate::scale::Scale;
use meterdata::dataset::MeterDataset;
use sms_core::error::Result;
use sms_core::vertical::windows::{FIFTEEN_MINUTES, ONE_HOUR};

/// One Table 1 row: an encoding plus the per-column F-measures.
#[derive(Debug, Clone)]
pub struct Table1Row {
    /// Row label (encoding or raw configuration).
    pub label: String,
    /// Per-house columns (RF, J48, NB, Logistic) F-measures.
    pub per_house: Vec<f64>,
    /// Global-table columns (Logistic+, RF+, J48+, NB+) F-measures.
    pub global: Vec<f64>,
}

/// The full Table 1.
#[derive(Debug, Clone)]
pub struct Table1 {
    /// Symbolic encoding rows (24 of them).
    pub rows: Vec<Table1Row>,
    /// Raw rows: 1 h, 15 m, and full native rate.
    pub raw_rows: Vec<Table1Row>,
}

/// Column order for the per-house block, matching the paper.
pub const PER_HOUSE_COLUMNS: [ClassifierKind; 4] = ClassifierKind::TABLE1;
/// Column order for the global (`+`) block, matching the paper
/// (Logistic+, Random Forest+, J48+, Naive Bayes+).
pub const GLOBAL_COLUMNS: [ClassifierKind; 4] = [
    ClassifierKind::Logistic,
    ClassifierKind::RandomForest,
    ClassifierKind::J48,
    ClassifierKind::NaiveBayes,
];

impl Table1 {
    /// Runs the whole table. This is the most expensive experiment:
    /// 24 encodings × 8 classifier columns + 3 raw rows × 8.
    pub fn run(ds: &MeterDataset, scale: Scale) -> Result<Table1> {
        let mut rows = Vec::new();
        for spec in EncodingSpec::paper_grid() {
            rows.push(Table1Row {
                label: spec.label(),
                per_house: PER_HOUSE_COLUMNS
                    .iter()
                    .map(|&k| {
                        run_symbolic(ds, scale, spec, TableMode::PerHouse, k).map(|c| c.f_measure)
                    })
                    .collect::<Result<_>>()?,
                global: GLOBAL_COLUMNS
                    .iter()
                    .map(|&k| {
                        run_symbolic(ds, scale, spec, TableMode::Global, k).map(|c| c.f_measure)
                    })
                    .collect::<Result<_>>()?,
            });
        }
        let mut raw_rows = Vec::new();
        for (label, window) in [
            ("raw 1h", Some(ONE_HOUR)),
            ("raw 15m", Some(FIFTEEN_MINUTES)),
            ("raw full-rate", None),
        ] {
            let cells: Vec<Cell> = PER_HOUSE_COLUMNS
                .iter()
                .map(|&k| run_raw(ds, scale, window, k))
                .collect::<Result<_>>()?;
            // Raw rows have no lookup table, so the `+` columns equal the
            // plain ones (the paper prints them duplicated too).
            let per_house: Vec<f64> = cells.iter().map(|c| c.f_measure).collect();
            let global = vec![per_house[3], per_house[0], per_house[1], per_house[2]];
            raw_rows.push(Table1Row { label: label.to_string(), per_house, global });
        }
        Ok(Table1 { rows, raw_rows })
    }

    /// Renders the aligned text table in the paper's column order.
    pub fn render(&self) -> String {
        let mut s = format!(
            "{:<24} {:>7} {:>7} {:>7} {:>9} {:>10} {:>8} {:>7} {:>7}\n",
            "encoding", "RF", "J48", "NB", "Logistic", "Logistic+", "RF+", "J48+", "NB+"
        );
        for row in self.rows.iter().chain(&self.raw_rows) {
            s += &format!(
                "{:<24} {:>7.2} {:>7.2} {:>7.2} {:>9.2} {:>10.2} {:>8.2} {:>7.2} {:>7.2}\n",
                row.label,
                row.per_house[0],
                row.per_house[1],
                row.per_house[2],
                row.per_house[3],
                row.global[0],
                row.global[1],
                row.global[2],
                row.global[3],
            );
        }
        s
    }

    /// Mean per-house F-measure for a method prefix (shape checks).
    pub fn mean_per_house(&self, method_prefix: &str) -> f64 {
        let rows: Vec<&Table1Row> =
            self.rows.iter().filter(|r| r.label.starts_with(method_prefix)).collect();
        if rows.is_empty() {
            return 0.0;
        }
        let total: f64 = rows.iter().flat_map(|r| r.per_house.iter()).sum();
        total / (rows.len() * 4) as f64
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::prep::dataset;

    #[test]
    fn runs_at_tiny_scale_with_expected_shape() {
        // Deliberately tiny: this exercises the full code path, not accuracy.
        let scale = Scale { days: 5, interval_secs: 900, forest_trees: 4, cv_folds: 2, seed: 5 };
        let ds = dataset(scale).unwrap();
        let t = Table1::run(&ds, scale).unwrap();
        assert_eq!(t.rows.len(), 24);
        assert_eq!(t.raw_rows.len(), 3);
        for row in &t.rows {
            assert_eq!(row.per_house.len(), 4);
            assert_eq!(row.global.len(), 4);
            for &f in row.per_house.iter().chain(&row.global) {
                assert!((0.0..=1.0).contains(&f), "{}: {f}", row.label);
            }
        }
        let rendered = t.render();
        assert!(rendered.contains("median 1h 16s"));
        assert!(rendered.contains("raw full-rate"));
        assert!(t.mean_per_house("median") > 0.0);
    }
}
