//! Table 1 reproduction: weighted F-measure for every classifier × every
//! encoding, with per-house and global (`+`) table variants, plus the raw
//! 1 h / 15 m / full-rate rows.

use crate::classification::{
    run_raw, run_symbolic_cached, Cell, ClassifierKind, EncodingSpec, TableMode,
};
use crate::prep::TableCache;
use crate::scale::Scale;
use meterdata::dataset::MeterDataset;
use sms_core::error::Result;
use sms_core::pool::{run_indexed, PoolConfig};
use sms_core::vertical::windows::{FIFTEEN_MINUTES, ONE_HOUR};

/// One Table 1 row: an encoding plus the per-column F-measures.
#[derive(Debug, Clone)]
pub struct Table1Row {
    /// Row label (encoding or raw configuration).
    pub label: String,
    /// Per-house columns (RF, J48, NB, Logistic) F-measures.
    pub per_house: Vec<f64>,
    /// Global-table columns (Logistic+, RF+, J48+, NB+) F-measures.
    pub global: Vec<f64>,
}

/// The full Table 1.
#[derive(Debug, Clone)]
pub struct Table1 {
    /// Symbolic encoding rows (24 of them).
    pub rows: Vec<Table1Row>,
    /// Raw rows: 1 h, 15 m, and full native rate.
    pub raw_rows: Vec<Table1Row>,
}

/// Column order for the per-house block, matching the paper.
pub const PER_HOUSE_COLUMNS: [ClassifierKind; 4] = ClassifierKind::TABLE1;
/// Column order for the global (`+`) block, matching the paper
/// (Logistic+, Random Forest+, J48+, Naive Bayes+).
pub const GLOBAL_COLUMNS: [ClassifierKind; 4] = [
    ClassifierKind::Logistic,
    ClassifierKind::RandomForest,
    ClassifierKind::J48,
    ClassifierKind::NaiveBayes,
];

/// One cell's coordinates in the flattened Table 1 job list.
#[derive(Clone, Copy)]
enum Table1Job {
    Symbolic(EncodingSpec, TableMode, ClassifierKind),
    Raw(Option<i64>, ClassifierKind),
}

impl Table1 {
    /// Runs the whole table. This is the most expensive experiment:
    /// 24 encodings × 8 classifier columns + 3 raw rows × 4 distinct cells,
    /// all independent, so they run on a cell-level worker pool (`workers`:
    /// 0 = all cores, 1 = serial). Cross-validation inside each cell stays
    /// serial to avoid oversubscription; results are merged in row-major
    /// order and are bit-identical at any worker count.
    pub fn run(ds: &MeterDataset, scale: Scale, workers: usize) -> Result<Table1> {
        let cache = TableCache::new(ds, scale.training_prefix_secs())?;
        let grid = EncodingSpec::paper_grid();
        let raw_configs = [
            ("raw 1h", Some(ONE_HOUR)),
            ("raw 15m", Some(FIFTEEN_MINUTES)),
            ("raw full-rate", None),
        ];
        let mut jobs = Vec::with_capacity(grid.len() * 8 + raw_configs.len() * 4);
        for &spec in &grid {
            for &k in &PER_HOUSE_COLUMNS {
                jobs.push(Table1Job::Symbolic(spec, TableMode::PerHouse, k));
            }
            for &k in &GLOBAL_COLUMNS {
                jobs.push(Table1Job::Symbolic(spec, TableMode::Global, k));
            }
        }
        for &(_, window) in &raw_configs {
            for &k in &PER_HOUSE_COLUMNS {
                jobs.push(Table1Job::Raw(window, k));
            }
        }
        let (results, _stats) =
            run_indexed(jobs.len(), &PoolConfig::with_workers(workers), |i| match jobs[i] {
                Table1Job::Symbolic(spec, mode, k) => {
                    run_symbolic_cached(ds, scale, &cache, spec, mode, k, 1)
                }
                Table1Job::Raw(window, k) => run_raw(ds, scale, window, k, 1),
            })?;
        // Index order keeps which error surfaces deterministic.
        let cells = results.into_iter().collect::<Result<Vec<Cell>>>()?;
        let rows = grid
            .iter()
            .enumerate()
            .map(|(r, spec)| Table1Row {
                label: spec.label(),
                per_house: cells[r * 8..r * 8 + 4].iter().map(|c| c.f_measure).collect(),
                global: cells[r * 8 + 4..r * 8 + 8].iter().map(|c| c.f_measure).collect(),
            })
            .collect();
        let raw_rows = raw_configs
            .iter()
            .enumerate()
            .map(|(r, &(label, _))| {
                let base = grid.len() * 8 + r * 4;
                let per_house: Vec<f64> =
                    cells[base..base + 4].iter().map(|c| c.f_measure).collect();
                // Raw rows have no lookup table, so the `+` columns equal the
                // plain ones (the paper prints them duplicated too).
                let global = vec![per_house[3], per_house[0], per_house[1], per_house[2]];
                Table1Row { label: label.to_string(), per_house, global }
            })
            .collect();
        Ok(Table1 { rows, raw_rows })
    }

    /// Renders the aligned text table in the paper's column order.
    pub fn render(&self) -> String {
        let mut s = format!(
            "{:<24} {:>7} {:>7} {:>7} {:>9} {:>10} {:>8} {:>7} {:>7}\n",
            "encoding", "RF", "J48", "NB", "Logistic", "Logistic+", "RF+", "J48+", "NB+"
        );
        for row in self.rows.iter().chain(&self.raw_rows) {
            s += &format!(
                "{:<24} {:>7.2} {:>7.2} {:>7.2} {:>9.2} {:>10.2} {:>8.2} {:>7.2} {:>7.2}\n",
                row.label,
                row.per_house[0],
                row.per_house[1],
                row.per_house[2],
                row.per_house[3],
                row.global[0],
                row.global[1],
                row.global[2],
                row.global[3],
            );
        }
        s
    }

    /// Mean per-house F-measure for a method prefix (shape checks).
    pub fn mean_per_house(&self, method_prefix: &str) -> f64 {
        let rows: Vec<&Table1Row> =
            self.rows.iter().filter(|r| r.label.starts_with(method_prefix)).collect();
        if rows.is_empty() {
            return 0.0;
        }
        let total: f64 = rows.iter().flat_map(|r| r.per_house.iter()).sum();
        total / (rows.len() * 4) as f64
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::prep::dataset;

    #[test]
    fn runs_at_tiny_scale_with_expected_shape() {
        // Deliberately tiny: this exercises the full code path, not accuracy.
        let scale = Scale {
            days: 5,
            interval_secs: 900,
            forest_trees: 4,
            cv_folds: 2,
            seed: 5,
            ..Scale::quick()
        };
        let ds = dataset(scale).unwrap();
        let t = Table1::run(&ds, scale, 2).unwrap();
        assert_eq!(t.rows.len(), 24);
        assert_eq!(t.raw_rows.len(), 3);
        for row in &t.rows {
            assert_eq!(row.per_house.len(), 4);
            assert_eq!(row.global.len(), 4);
            for &f in row.per_house.iter().chain(&row.global) {
                assert!((0.0..=1.0).contains(&f), "{}: {f}", row.label);
            }
        }
        let rendered = t.render();
        assert!(rendered.contains("median 1h 16s"));
        assert!(rendered.contains("raw full-rate"));
        assert!(t.mean_per_house("median") > 0.0);
    }
}
