//! Customer segmentation as *clustering* — the analytics task the paper's
//! §3.1 motivates before substituting classification ("as we only have 6
//! houses in our dataset, we consider each house having its own cluster").
//! We run that original task: cluster day-vectors without labels and score
//! the recovered segments against the true houses with the adjusted Rand
//! index — k-modes on symbolic vectors versus k-means on raw vectors.

use crate::prep::{per_house_tables, raw_day_vectors, symbolic_day_vectors, PAPER_MIN_COVERAGE};
use crate::scale::Scale;
use meterdata::dataset::MeterDataset;
use sms_core::error::{Error, Result};
use sms_core::separators::SeparatorMethod;
use sms_ml::cluster::{adjusted_rand_index, kmeans, kmodes};

/// One clustering configuration's outcome.
#[derive(Debug, Clone)]
pub struct ClusteringResult {
    /// Configuration label.
    pub label: String,
    /// Adjusted Rand index against the true houses.
    pub ari: f64,
    /// Iterations to converge.
    pub iterations: usize,
    /// Day-vectors clustered.
    pub instances: usize,
}

/// Runs the segmentation comparison: k-modes over symbol day-vectors for
/// each separator method (hourly, k = 16) versus k-means over raw hourly
/// day-vectors. Clusters = number of houses.
pub fn run_clustering(ds: &MeterDataset, scale: Scale) -> Result<Vec<ClusteringResult>> {
    let mut out = Vec::new();
    let n_clusters = ds.house_count();

    let labels_of = |inst: &sms_ml::Instances| -> Result<Vec<usize>> {
        (0..inst.len())
            .map(|i| {
                inst.class_of(i)
                    .map_err(|e| Error::InvalidParameter { name: "class", reason: e.to_string() })
            })
            .collect()
    };

    for method in SeparatorMethod::ALL {
        let tables = per_house_tables(ds, method, 4, scale.training_prefix_secs())?;
        let inst = symbolic_day_vectors(ds, 3600, &tables, PAPER_MIN_COVERAGE)?;
        let labels = labels_of(&inst)?;
        let clustering = kmodes(&inst, n_clusters, scale.seed, 100)
            .map_err(|e| Error::InvalidParameter { name: "kmodes", reason: e.to_string() })?;
        let ari = adjusted_rand_index(&clustering.assignments, &labels)
            .map_err(|e| Error::InvalidParameter { name: "ari", reason: e.to_string() })?;
        out.push(ClusteringResult {
            label: format!("k-modes {method} 1h 16s"),
            ari,
            iterations: clustering.iterations,
            instances: inst.len(),
        });
    }

    let raw = raw_day_vectors(ds, 3600, PAPER_MIN_COVERAGE)?;
    let labels = labels_of(&raw)?;
    let clustering = kmeans(&raw, n_clusters, scale.seed, 100)
        .map_err(|e| Error::InvalidParameter { name: "kmeans", reason: e.to_string() })?;
    let ari = adjusted_rand_index(&clustering.assignments, &labels)
        .map_err(|e| Error::InvalidParameter { name: "ari", reason: e.to_string() })?;
    out.push(ClusteringResult {
        label: "k-means raw 1h".to_string(),
        ari,
        iterations: clustering.iterations,
        instances: raw.len(),
    });
    Ok(out)
}

/// Text rendering.
pub fn render_clustering(results: &[ClusteringResult]) -> String {
    let mut s = format!(
        "Customer segmentation by clustering (ARI vs true houses)\n{:<32} {:>8} {:>8} {:>6}\n",
        "configuration", "ARI", "iters", "n"
    );
    for r in results {
        s += &format!("{:<32} {:>8.3} {:>8} {:>6}\n", r.label, r.ari, r.iterations, r.instances);
    }
    s
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::prep::dataset;

    #[test]
    fn clustering_recovers_house_structure() {
        let scale = Scale {
            days: 10,
            interval_secs: 300,
            forest_trees: 4,
            cv_folds: 2,
            seed: 19,
            ..Scale::quick()
        };
        let ds = dataset(scale).unwrap();
        let results = run_clustering(&ds, scale).unwrap();
        assert_eq!(results.len(), 4, "three symbolic + one raw configuration");
        for r in &results {
            assert!(r.ari.is_finite());
            assert!(r.instances > 20);
        }
        // At least one configuration should clearly beat chance.
        let best = results.iter().map(|r| r.ari).fold(f64::NEG_INFINITY, f64::max);
        assert!(best > 0.2, "segmentation should recover structure: best ARI {best}");
        let txt = render_clustering(&results);
        assert!(txt.contains("k-modes"));
        assert!(txt.contains("k-means raw"));
    }
}
