//! Encode hot-path benchmark: the columnar fast path (branchless flat
//! separator scan + batched symbol construction) vs the legacy per-value
//! binary-search encode, across alphabet sizes. The sweep body lives in
//! [`sms_bench::encode_bench`] (also reachable as `repro encode-bench`);
//! this harness adds the machine-readable record and the CI gate:
//!
//! * `BENCH_ENCODE_SMOKE=1` — down-scaled CI pass;
//! * `BENCH_ENCODE_OUT=PATH` — write the `BENCH_encode.json` record;
//! * `BENCH_ENCODE_BASELINE=PATH` — regression gate: fail if any batched
//!   per-core throughput drops more than 20% below the committed baseline
//!   (more than 50% in smoke mode, whose short passes carry more scheduler
//!   noise — there the gate is a halved-throughput tripwire, not a tight
//!   perf contract).

use sms_bench::encode_bench::{render_encode_bench, run_encode_bench_with};
use sms_core::json::parse;
use sms_core::telemetry::Registry;

fn main() {
    let smoke = std::env::var("BENCH_ENCODE_SMOKE").is_ok();
    let (n, samples) = if smoke { (200_000, 5) } else { (2_000_000, 9) };
    let reg = Registry::new();
    let report = run_encode_bench_with(n, samples, &reg).expect("encode bench runs");
    print!("{}", render_encode_bench(&report));

    if let Ok(path) = std::env::var("BENCH_ENCODE_OUT") {
        std::fs::write(&path, format!("{}\n", report.to_json())).unwrap();
        println!("wrote {path}");
    }

    // Regression gate: each batched per-core throughput must stay within
    // 20% of the committed baseline — 50% for the smoke pass, whose 10×
    // shorter timed region is dominated by run-to-run scheduler noise.
    let floor = if smoke { 0.5 } else { 0.8 };
    if let Ok(path) = std::env::var("BENCH_ENCODE_BASELINE") {
        let doc = parse(&std::fs::read_to_string(&path).expect("baseline file readable"))
            .expect("baseline file parses");
        let mut failed = false;
        for row in &report.rows {
            let Some(baseline) = doc
                .get(&row.label)
                .and_then(|e| e.get("batched_samples_per_sec"))
                .and_then(|v| v.as_f64())
            else {
                println!("gate: no baseline for {}, skipping", row.label);
                continue;
            };
            let ratio = row.batched_samples_per_sec / baseline.max(f64::MIN_POSITIVE);
            if ratio < floor {
                println!(
                    "gate: {} REGRESSED {:.1}% ({:.1} -> {:.1} Msamples/s)",
                    row.label,
                    (1.0 - ratio) * 100.0,
                    baseline / 1e6,
                    row.batched_samples_per_sec / 1e6
                );
                failed = true;
            } else {
                println!("gate: {} ok ({:.2}x baseline)", row.label, ratio);
            }
        }
        if failed {
            eprintln!(
                "encode bench: per-core throughput regressed >{:.0}% vs {path}",
                (1.0 - floor) * 100.0
            );
            std::process::exit(1);
        }
    }
}
