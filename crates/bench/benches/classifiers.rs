//! Classifier benchmarks on symbolic vs raw day-vectors — the "processing
//! time" axis of the paper's Figs. 5–6 ("the raw dataset always took
//! slightly longer to process, mostly because it was composed of numerical
//! values instead of symbols"; the full-rate raw vectors were "much slower
//! by two orders of magnitude").

use criterion::{black_box, criterion_group, criterion_main, Criterion};
use sms_bench::prep::{
    dataset, per_house_tables, raw_day_vectors, raw_fullrate_day_vectors, symbolic_day_vectors,
    PAPER_MIN_COVERAGE,
};
use sms_bench::Scale;
use sms_core::separators::SeparatorMethod;
use sms_ml::classifier::Classifier;
use sms_ml::forest::RandomForest;
use sms_ml::naive_bayes::NaiveBayes;

fn bench_scale() -> Scale {
    Scale { days: 8, interval_secs: 300, forest_trees: 10, cv_folds: 5, seed: 21, ..Scale::quick() }
}

fn bench_fit_predict(c: &mut Criterion) {
    let scale = bench_scale();
    let ds = dataset(scale).unwrap();
    let tables =
        per_house_tables(&ds, SeparatorMethod::Median, 4, scale.training_prefix_secs()).unwrap();
    let symbolic = symbolic_day_vectors(&ds, 900, &tables, PAPER_MIN_COVERAGE).unwrap();
    let raw = raw_day_vectors(&ds, 900, PAPER_MIN_COVERAGE).unwrap();
    let raw_full = raw_fullrate_day_vectors(&ds, PAPER_MIN_COVERAGE).unwrap();

    let mut group = c.benchmark_group("classifier_fit_predict");
    group.sample_size(10);
    for (label, inst) in
        [("symbolic_15m_16s", &symbolic), ("raw_15m", &raw), ("raw_fullrate", &raw_full)]
    {
        group.bench_function(format!("naive_bayes/{label}"), |b| {
            b.iter(|| {
                let mut m = NaiveBayes::new();
                m.fit(black_box(inst)).unwrap();
                let mut hits = 0usize;
                for i in 0..inst.len() {
                    if m.predict(&inst.row(i)).unwrap() == inst.class_of(i).unwrap() {
                        hits += 1;
                    }
                }
                black_box(hits)
            });
        });
        group.bench_function(format!("random_forest/{label}"), |b| {
            b.iter(|| {
                let mut m = RandomForest::new(10, 3);
                m.fit(black_box(inst)).unwrap();
                black_box(m.predict(&inst.row(0)).unwrap())
            });
        });
    }
    group.finish();
}

criterion_group!(benches, bench_fit_predict);
criterion_main!(benches);
