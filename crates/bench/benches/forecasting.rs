//! Forecasting benchmarks: symbolic (Naive Bayes over lag symbols) versus
//! real-valued SVR, at the paper's protocol sizes (1 week train, 12 lags).

use criterion::{black_box, criterion_group, criterion_main, Criterion};
use sms_ml::classifier::{Classifier, Regressor};
use sms_ml::forecast::{
    lag_dataset_nominal, lag_dataset_numeric, real_forecast, symbolic_forecast,
};
use sms_ml::naive_bayes::NaiveBayes;
use sms_ml::svm::SvrRegressor;

fn hourly_week() -> Vec<f64> {
    (0..8 * 24)
        .map(|h| {
            let hour = h % 24;
            let base = 80.0 + 40.0 * ((hour as f64 - 6.0) / 4.0).tanh();
            base + ((h * 131) % 97) as f64 * 3.0
        })
        .collect()
}

fn bench_forecasting(c: &mut Criterion) {
    let values = hourly_week();
    let (train, test) = values.split_at(7 * 24);
    let ranks: Vec<u16> = values.iter().map(|v| ((v / 40.0) as u16).min(15)).collect();
    let (train_r, test_r) = ranks.split_at(7 * 24);

    let mut group = c.benchmark_group("forecasting_next_day");
    group.bench_function("symbolic_naive_bayes", |b| {
        b.iter(|| {
            let r = symbolic_forecast(
                || Box::new(NaiveBayes::new()) as Box<dyn Classifier>,
                black_box(train_r),
                test_r,
                test,
                16,
                12,
                |rank| rank as f64 * 40.0 + 20.0,
            )
            .unwrap();
            black_box(r.mae().unwrap())
        });
    });
    group.bench_function("raw_svr", |b| {
        b.iter(|| {
            let r = real_forecast(
                || {
                    let mut m = SvrRegressor::new();
                    m.c = 10.0;
                    Box::new(m) as Box<dyn Regressor>
                },
                black_box(train),
                test,
                12,
            )
            .unwrap();
            black_box(r.mae().unwrap())
        });
    });
    group.bench_function("lag_dataset_nominal", |b| {
        b.iter(|| black_box(lag_dataset_nominal(train_r, 16, 12).unwrap().len()));
    });
    group.bench_function("lag_dataset_numeric", |b| {
        b.iter(|| black_box(lag_dataset_numeric(train, 12).unwrap().len()));
    });
    group.finish();
}

criterion_group!(benches, bench_forecasting);
criterion_main!(benches);
