//! Fleet-encoding engine benchmarks: serial codec vs the parallel engine at
//! several worker counts, over a 200-house synthetic fleet. Besides the
//! criterion timings, prints one `EngineStats` JSON line per worker count so
//! throughput trajectories can be tracked across runs.

use std::time::Instant;

use criterion::{black_box, criterion_group, criterion_main, BenchmarkId, Criterion, Throughput};
use meterdata::generator::fleet_series;
use sms_core::engine::{EngineConfig, FleetEngine, TableMode};
use sms_core::pipeline::CodecBuilder;
use sms_core::separators::SeparatorMethod;
use sms_core::timeseries::TimeSeries;

const WORKER_COUNTS: [usize; 4] = [1, 2, 4, 8];

fn fleet() -> Vec<TimeSeries> {
    // 200 houses × 2 days at 10-minute readings = 57 600 samples.
    fleet_series(42, 200, 2, 600).expect("generator is valid")
}

fn builder() -> CodecBuilder {
    CodecBuilder::new()
        .method(SeparatorMethod::Median)
        .alphabet_size(16)
        .expect("16 symbols")
        .window_secs(3600)
}

fn bench_fleet_encode(c: &mut Criterion) {
    let fleet = fleet();
    let samples: u64 = fleet.iter().map(|h| h.len() as u64).sum();
    let b = builder();

    let mut group = c.benchmark_group("fleet_encode");
    group.throughput(Throughput::Elements(samples));

    group.bench_function("serial_codec", |bch| {
        bch.iter(|| {
            let out: Vec<_> =
                fleet.iter().map(|h| b.train(h).unwrap().encode(h).unwrap()).collect();
            black_box(out)
        })
    });

    for workers in WORKER_COUNTS {
        let engine = FleetEngine::new(b.clone(), EngineConfig::with_workers(workers));
        group.bench_with_input(
            BenchmarkId::new("engine", format!("{workers}w")),
            &engine,
            |bch, engine| bch.iter(|| black_box(engine.encode_fleet(&fleet).unwrap())),
        );
    }

    for mode in [TableMode::PerHouse, TableMode::Shared] {
        let engine = FleetEngine::new(b.clone(), EngineConfig::with_workers(2).table_mode(mode));
        group.bench_with_input(
            BenchmarkId::new("table_mode", format!("{mode:?}")),
            &engine,
            |bch, engine| bch.iter(|| black_box(engine.encode_fleet(&fleet).unwrap())),
        );
    }
    group.finish();

    // Throughput trajectory: one stats JSON per worker count, plus the
    // speedup of each configuration over 1 worker.
    let serial_start = Instant::now();
    for h in &fleet {
        black_box(b.train(h).unwrap().encode(h).unwrap());
    }
    let serial_secs = serial_start.elapsed().as_secs_f64();
    println!("engine_stats: {{\"serial_secs\":{serial_secs:.6}}}");
    for workers in WORKER_COUNTS {
        let engine = FleetEngine::new(b.clone(), EngineConfig::with_workers(workers));
        let enc = engine.encode_fleet(&fleet).unwrap();
        let wall = enc.stats.train_secs + enc.stats.encode_secs;
        let speedup = serial_secs / wall.max(f64::MIN_POSITIVE);
        println!("engine_stats: {} speedup_vs_serial={speedup:.2}", enc.stats.to_json());
    }
}

criterion_group!(benches, bench_fleet_encode);
criterion_main!(benches);
