//! Symbol-algebra benchmarks: resolution down-conversion via truncation
//! versus re-encoding through a coarsened table (a DESIGN.md ablation), and
//! prefix-order operations.

use criterion::{black_box, criterion_group, criterion_main, Criterion, Throughput};
use sms_core::alphabet::Alphabet;
use sms_core::horizontal::horizontal_segmentation;
use sms_core::lookup::LookupTable;
use sms_core::separators::SeparatorMethod;
use sms_core::symbol::Symbol;
use sms_core::timeseries::TimeSeries;

fn setup() -> (TimeSeries, LookupTable) {
    let values: Vec<f64> = (0..86_400 / 10).map(|i| ((i * 7919) % 3000) as f64).collect();
    let series = TimeSeries::from_regular(0, 10, &values).unwrap();
    let table =
        LookupTable::learn(SeparatorMethod::Median, Alphabet::with_resolution(4).unwrap(), &values)
            .unwrap();
    (series, table)
}

fn bench_downconversion(c: &mut Criterion) {
    let (series, table) = setup();
    let fine = horizontal_segmentation(&series, &table).unwrap();
    let coarse_table = table.coarsen(2).unwrap();
    let mut group = c.benchmark_group("resolution_downconversion");
    group.throughput(Throughput::Elements(fine.len() as u64));
    group.bench_function("truncate_symbols", |b| {
        b.iter(|| black_box(fine.truncate_resolution(2).unwrap()));
    });
    group.bench_function("reencode_with_coarse_table", |b| {
        b.iter(|| black_box(horizontal_segmentation(&series, &coarse_table).unwrap()));
    });
    group.finish();
}

fn bench_prefix_ops(c: &mut Criterion) {
    let symbols: Vec<Symbol> =
        (0..4096u16).map(|i| Symbol::from_rank(i % 16, 4).unwrap()).collect();
    let probe = Symbol::from_rank(2, 2).unwrap();
    let mut group = c.benchmark_group("symbol_ops");
    group.throughput(Throughput::Elements(symbols.len() as u64));
    group.bench_function("covers", |b| {
        b.iter(|| symbols.iter().filter(|s| probe.covers(**s)).count());
    });
    group.bench_function("partial_cmp_prefix", |b| {
        b.iter(|| {
            symbols
                .iter()
                .filter(|s| probe.partial_cmp_prefix(**s) == Some(std::cmp::Ordering::Less))
                .count()
        });
    });
    group.finish();
}

criterion_group!(benches, bench_downconversion, bench_prefix_ops);
criterion_main!(benches);
