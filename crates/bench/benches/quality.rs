//! Quality-path overhead benchmark: sanitizer throughput on clean vs
//! corrupted series, and the supervised pool's bookkeeping cost relative to
//! the legacy fail-fast pool on panic-free workloads.
//!
//! Like the `ml` bench this computes its medians directly so it can emit a
//! machine-readable summary: set `BENCH_QUALITY_OUT` to a path to write a
//! JSON record, and `BENCH_QUALITY_SMOKE=1` to run a down-scaled smoke pass
//! (used by `scripts/ci.sh`).

use sms_bench::ingest_exp::{FaultInjector, ALL_SERIES_FAULTS};
use sms_core::pool::{
    run_indexed, run_indexed_supervised, PoolConfig, RetryPolicy, SupervisorPolicy,
};
use sms_core::quality::{Sanitizer, SanitizerConfig};
use sms_core::timeseries::{Sample, TimeSeries};
use std::time::Instant;

/// A regular 60 s series with a mild daily shape, `n` samples long.
fn clean_series(n: usize) -> TimeSeries {
    let values: Vec<f64> =
        (0..n).map(|i| 200.0 + 150.0 * (((i * 7) % 1440) as f64 / 1440.0)).collect();
    TimeSeries::from_regular(0, 60, &values).expect("regular series")
}

/// The same series with one of each series fault applied per ~2k samples.
fn dirty_series(n: usize) -> TimeSeries {
    let mut samples: Vec<Sample> = clean_series(n).samples().to_vec();
    let mut inj = FaultInjector::new(0xD1E7);
    let faults = (n / 2000).max(ALL_SERIES_FAULTS.len()) as u64;
    for k in 0..faults {
        inj.corrupt_series_nth(k, &mut samples);
    }
    TimeSeries::from_samples_unchecked(samples)
}

/// Median seconds per run over `samples` runs.
fn median_secs(samples: usize, mut run: impl FnMut()) -> f64 {
    let mut times: Vec<f64> = (0..samples)
        .map(|_| {
            let t0 = Instant::now();
            run();
            t0.elapsed().as_secs_f64()
        })
        .collect();
    times.sort_by(|a, b| a.total_cmp(b));
    times[times.len() / 2]
}

fn main() {
    let smoke = std::env::var("BENCH_QUALITY_SMOKE").is_ok();
    let (n, samples, jobs) = if smoke { (20_000, 2, 64) } else { (200_000, 5, 512) };

    let clean = clean_series(n);
    let dirty = dirty_series(n);
    let sanitizer = Sanitizer::new(SanitizerConfig::default().gap_tolerance_secs(120));

    let clean_secs = median_secs(samples, || {
        sanitizer.sanitize(&clean).expect("clean sanitize");
    });
    let dirty_secs = median_secs(samples, || {
        sanitizer.sanitize(&dirty).expect("repair-policy sanitize");
    });

    // Pool overhead: the same cheap panic-free jobs through both paths.
    let config = PoolConfig::with_workers(2);
    let policy = SupervisorPolicy::with_retry(RetryPolicy::with_max_attempts(2));
    let work = |i: usize| -> u64 { (0..400u64).fold(i as u64, |a, x| a.wrapping_mul(31) ^ x) };
    let legacy_secs = median_secs(samples, || {
        run_indexed(jobs, &config, work).expect("legacy pool");
    });
    let supervised_secs = median_secs(samples, || {
        let report = run_indexed_supervised(jobs, &config, &policy, |i, _attempt| work(i));
        assert!(report.errors.is_empty());
    });

    let clean_msps = n as f64 / clean_secs.max(f64::MIN_POSITIVE) / 1e6;
    let dirty_msps = dirty.len() as f64 / dirty_secs.max(f64::MIN_POSITIVE) / 1e6;
    let overhead = supervised_secs / legacy_secs.max(f64::MIN_POSITIVE);
    println!("quality bench: {n} samples/series, {jobs} pool jobs, median of {samples} runs");
    println!("sanitize clean:      {:>9.3} ms  ({clean_msps:.1} Msamples/s)", clean_secs * 1e3);
    println!("sanitize dirty:      {:>9.3} ms  ({dirty_msps:.1} Msamples/s)", dirty_secs * 1e3);
    println!("pool legacy:         {:>9.3} ms", legacy_secs * 1e3);
    println!("pool supervised:     {:>9.3} ms  ({overhead:.2}x legacy)", supervised_secs * 1e3);

    if let Ok(path) = std::env::var("BENCH_QUALITY_OUT") {
        let json = format!(
            "{{\"bench\":\"quality\",\"samples_per_series\":{n},\"jobs\":{jobs},\
             \"sanitize_clean_ms\":{:.4},\"sanitize_dirty_ms\":{:.4},\
             \"clean_msamples_per_sec\":{clean_msps:.2},\
             \"dirty_msamples_per_sec\":{dirty_msps:.2},\
             \"pool_legacy_ms\":{:.4},\"pool_supervised_ms\":{:.4},\
             \"supervised_overhead\":{overhead:.3}}}\n",
            clean_secs * 1e3,
            dirty_secs * 1e3,
            legacy_secs * 1e3,
            supervised_secs * 1e3,
        );
        std::fs::write(&path, json).unwrap();
        println!("wrote {path}");
    }
}
