//! ML training benchmark: J48 and Random Forest fit time with the presorted
//! split search vs the legacy per-node sort, on numeric (raw day-vector
//! style) and nominal (symbolic day-vector style) datasets.
//!
//! Unlike the criterion-based benches, this harness computes its medians
//! directly so it can emit a machine-readable summary: set `BENCH_ML_OUT`
//! to a path to write a `BENCH_ml.json` record, and `BENCH_ML_SMOKE=1` to
//! run a down-scaled smoke pass (used by `scripts/ci.sh`).

use sms_ml::classifier::Classifier;
use sms_ml::data::{Attribute, Instances, Value};
use sms_ml::forest::RandomForest;
use sms_ml::tree::{SplitSearch, C45};
use std::time::Instant;

const CLASSES: usize = 6;

fn xorshift(state: &mut u64) -> u64 {
    *state ^= *state >> 12;
    *state ^= *state << 25;
    *state ^= *state >> 27;
    state.wrapping_mul(0x2545_F491_4F6C_DD1D)
}

/// Numeric dataset shaped like raw hourly day-vectors: 24 numeric readings
/// per row, classes separated by a noisy per-class level.
fn numeric_dataset(rows: usize) -> Instances {
    let mut attrs: Vec<Attribute> = (0..24).map(|h| Attribute::numeric(format!("h{h}"))).collect();
    attrs.push(Attribute::nominal_indexed("house", CLASSES));
    let class_index = attrs.len() - 1;
    let mut inst = Instances::new(attrs, class_index).unwrap();
    let mut state = 0x9E37_79B9_7F4A_7C15u64;
    for i in 0..rows {
        let class = i % CLASSES;
        let mut row: Vec<Value> = (0..24)
            .map(|h| {
                let noise = (xorshift(&mut state) & 0xFFFF) as f64 / 65536.0;
                Value::Numeric(class as f64 + 0.5 * ((h % 5) as f64) + noise)
            })
            .collect();
        row.push(Value::Nominal(class as u32));
        inst.push_row(row).unwrap();
    }
    inst
}

/// Nominal dataset shaped like symbolic day-vectors: 24 slots over a
/// 16-symbol alphabet.
fn nominal_dataset(rows: usize) -> Instances {
    let mut attrs: Vec<Attribute> =
        (0..24).map(|h| Attribute::nominal_indexed(format!("h{h}"), 16)).collect();
    attrs.push(Attribute::nominal_indexed("house", CLASSES));
    let class_index = attrs.len() - 1;
    let mut inst = Instances::new(attrs, class_index).unwrap();
    let mut state = 0xD1B5_4A32_D192_ED03u64;
    for i in 0..rows {
        let class = i % CLASSES;
        let mut row: Vec<Value> = (0..24)
            .map(|_| {
                let sym = (xorshift(&mut state) % 8) as u32 + (class as u32 % 8);
                Value::Nominal(sym.min(15))
            })
            .collect();
        row.push(Value::Nominal(class as u32));
        inst.push_row(row).unwrap();
    }
    inst
}

/// Median fit time in seconds over `samples` runs.
fn time_fit(
    samples: usize,
    mut build: impl FnMut() -> Box<dyn Classifier>,
    data: &Instances,
) -> f64 {
    let mut times: Vec<f64> = (0..samples)
        .map(|_| {
            let mut model = build();
            let t0 = Instant::now();
            model.fit(data).unwrap();
            t0.elapsed().as_secs_f64()
        })
        .collect();
    times.sort_by(|a, b| a.total_cmp(b));
    times[times.len() / 2]
}

fn j48(search: SplitSearch) -> Box<dyn Classifier> {
    let mut t = C45::new();
    t.split_search = search;
    Box::new(t)
}

fn forest(search: SplitSearch) -> Box<dyn Classifier> {
    let mut f = RandomForest::new(10, 21);
    f.split_search = search;
    Box::new(f)
}

fn main() {
    let smoke = std::env::var("BENCH_ML_SMOKE").is_ok();
    let (rows, samples) = if smoke { (120, 2) } else { (600, 5) };
    let numeric = numeric_dataset(rows);
    let nominal = nominal_dataset(rows);

    let mut json = String::from("{\"bench\":\"ml\",");
    json += &format!("\"rows\":{rows},\"samples\":{samples},");
    println!("ml bench: {rows} rows, median of {samples} fits [ms]");
    println!("{:<28} {:>10} {:>14} {:>8}", "model/data", "presorted", "per_node_sort", "speedup");
    for (label, build, data) in [
        ("j48/numeric", j48 as fn(SplitSearch) -> Box<dyn Classifier>, &numeric),
        ("j48/nominal", j48, &nominal),
        ("random_forest/numeric", forest, &numeric),
        ("random_forest/nominal", forest, &nominal),
    ] {
        let fast = time_fit(samples, || build(SplitSearch::Presorted), data);
        let slow = time_fit(samples, || build(SplitSearch::PerNodeSort), data);
        let speedup = slow / fast.max(f64::MIN_POSITIVE);
        println!("{:<28} {:>10.3} {:>14.3} {:>7.2}x", label, fast * 1e3, slow * 1e3, speedup);
        json += &format!(
            "\"{}\":{{\"presorted_ms\":{:.4},\"per_node_sort_ms\":{:.4},\"speedup\":{:.3}}},",
            label.replace('/', "_"),
            fast * 1e3,
            slow * 1e3,
            speedup
        );
    }
    json.pop();
    json += "}";
    if let Ok(path) = std::env::var("BENCH_ML_OUT") {
        std::fs::write(&path, format!("{json}\n")).unwrap();
        println!("wrote {path}");
    }
}
