//! Fleet-scale benchmark: the sharded engine + bit-packed segment store
//! pipeline behind `repro scale`. The experiment body lives in
//! [`sms_bench::scale_exp`]; this harness adds the machine-readable record
//! and the CI gate, mirroring `benches/encode.rs`:
//!
//! * `BENCH_SCALE_SMOKE=1` — down-scaled CI pass (20k houses);
//! * `BENCH_SCALE_OUT=PATH` — write the `BENCH_scale.json` record;
//! * `BENCH_SCALE_BASELINE=PATH` — regression gate: fail if end-to-end
//!   encode throughput drops more than 20% below the committed baseline
//!   (more than 50% in smoke mode), or if packed bytes/house grows — the
//!   packing format is deterministic, so any growth is a format
//!   regression, not noise.

use sms_bench::scale_exp::{render_scale, run_scale};
use sms_bench::Scale;
use sms_core::json::parse;

fn main() {
    let smoke = std::env::var("BENCH_SCALE_SMOKE").is_ok();
    let houses = if smoke { 20_000 } else { 200_000 };
    let scale = Scale { houses, ..Scale::quick() };
    let report = run_scale(scale, 4, 2).expect("scale bench runs");
    print!("{}", render_scale(&report));

    if let Ok(path) = std::env::var("BENCH_SCALE_OUT") {
        std::fs::write(&path, format!("{}\n", report.to_json())).unwrap();
        println!("wrote {path}");
    }

    let floor = if smoke { 0.5 } else { 0.8 };
    if let Ok(path) = std::env::var("BENCH_SCALE_BASELINE") {
        let doc = parse(&std::fs::read_to_string(&path).expect("baseline file readable"))
            .expect("baseline file parses");
        let mut failed = false;
        if let Some(baseline) = doc.get("samples_per_sec").and_then(|v| v.as_f64()) {
            let ratio = report.samples_per_sec() / baseline.max(f64::MIN_POSITIVE);
            if ratio < floor {
                println!(
                    "gate: encode throughput REGRESSED {:.1}% ({:.0} -> {:.0} samples/s)",
                    (1.0 - ratio) * 100.0,
                    baseline,
                    report.samples_per_sec()
                );
                failed = true;
            } else {
                println!("gate: encode throughput ok ({ratio:.2}x baseline)");
            }
        } else {
            println!("gate: no samples_per_sec baseline, skipping");
        }
        if let Some(baseline) = doc.get("packed_bytes_per_house").and_then(|v| v.as_f64()) {
            // Deterministic format: any growth at all is a regression.
            if report.packed_bytes_per_house > baseline + 0.5 {
                println!(
                    "gate: packed bytes/house REGRESSED ({baseline:.1} -> {:.1})",
                    report.packed_bytes_per_house
                );
                failed = true;
            } else {
                println!(
                    "gate: packed bytes/house ok ({:.1} vs baseline {baseline:.1})",
                    report.packed_bytes_per_house
                );
            }
        } else {
            println!("gate: no packed_bytes_per_house baseline, skipping");
        }
        if failed {
            eprintln!("scale bench: regressed >{:.0}% vs {path}", (1.0 - floor) * 100.0);
            std::process::exit(1);
        }
    }
}
