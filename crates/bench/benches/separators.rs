//! Separator-learning ablation: exact order-statistics learning versus the
//! constant-memory P² streaming sketch, across alphabet sizes — the design
//! choice DESIGN.md calls out for the sensor-side training phase.

use criterion::{black_box, criterion_group, criterion_main, BenchmarkId, Criterion, Throughput};
use sms_core::separators::{learn_separators, SeparatorMethod, StreamingLearner};

fn training_values(n: usize) -> Vec<f64> {
    (0..n).map(|i| (((i * 7919) % 100_000) as f64 / 100.0).powf(1.3)).collect()
}

fn bench_batch_learning(c: &mut Criterion) {
    let values = training_values(172_800 / 10); // two days at 10 s
    let mut group = c.benchmark_group("separator_learning_batch");
    group.throughput(Throughput::Elements(values.len() as u64));
    for method in SeparatorMethod::ALL {
        for k in [4usize, 16] {
            group.bench_with_input(BenchmarkId::new(method.name(), k), &k, |b, &k| {
                b.iter(|| learn_separators(method, black_box(&values), k).unwrap());
            });
        }
    }
    group.finish();
}

fn bench_streaming_learners(c: &mut Criterion) {
    let values = training_values(172_800 / 10);
    let mut group = c.benchmark_group("separator_learning_streaming");
    group.throughput(Throughput::Elements(values.len() as u64));
    group.bench_function("exact_median_16", |b| {
        b.iter(|| {
            let mut l = StreamingLearner::exact(SeparatorMethod::Median, 16).unwrap();
            for &v in &values {
                l.push(v).unwrap();
            }
            black_box(l.separators().unwrap())
        });
    });
    group.bench_function("p2_median_16", |b| {
        b.iter(|| {
            let mut l = StreamingLearner::approximate(SeparatorMethod::Median, 16).unwrap();
            for &v in &values {
                l.push(v).unwrap();
            }
            black_box(l.separators().unwrap())
        });
    });
    group.finish();
}

criterion_group!(benches, bench_batch_learning, bench_streaming_learners);
criterion_main!(benches);
