//! Wire-format benchmarks: JSON versus binary framing for the sensor→server
//! protocol (§2.3's protocol-overhead concern), encode and decode sides.

use criterion::{black_box, criterion_group, criterion_main, Criterion, Throughput};
use sms_core::alphabet::Alphabet;
use sms_core::encoder::{EncodedWindow, SensorMessage};
use sms_core::lookup::LookupTable;
use sms_core::separators::SeparatorMethod;
use sms_core::symbol::Symbol;
use sms_core::wire::{encode_message, FrameDecoder};

fn day_of_messages() -> Vec<SensorMessage> {
    let values: Vec<f64> = (0..5000).map(|i| ((i * 37) % 3000) as f64).collect();
    let table =
        LookupTable::learn(SeparatorMethod::Median, Alphabet::with_size(16).unwrap(), &values)
            .unwrap();
    let mut msgs = vec![SensorMessage::Table(table)];
    for i in 0..96i64 {
        msgs.push(SensorMessage::Window(EncodedWindow {
            window_start: i * 900,
            symbol: Symbol::from_rank((i % 16) as u16, 4).unwrap(),
            samples: 900,
        }));
    }
    msgs
}

fn bench_wire(c: &mut Criterion) {
    let msgs = day_of_messages();
    let mut group = c.benchmark_group("wire_format");
    group.throughput(Throughput::Elements(msgs.len() as u64));

    group.bench_function("json_encode", |b| {
        b.iter(|| {
            let mut total = 0usize;
            for m in &msgs {
                total += m.to_json().unwrap().len();
            }
            black_box(total)
        });
    });
    group.bench_function("binary_encode", |b| {
        b.iter(|| {
            let mut total = 0usize;
            for m in &msgs {
                total += encode_message(m).unwrap().len();
            }
            black_box(total)
        });
    });

    let json_lines: Vec<String> = msgs.iter().map(|m| m.to_json().unwrap()).collect();
    group.bench_function("json_decode", |b| {
        b.iter(|| {
            let mut n = 0usize;
            for l in &json_lines {
                let _ = black_box(SensorMessage::from_json(l).unwrap());
                n += 1;
            }
            black_box(n)
        });
    });
    let binary: Vec<u8> = msgs.iter().flat_map(|m| encode_message(m).unwrap()).collect();
    group.bench_function("binary_decode", |b| {
        b.iter(|| {
            let mut dec = FrameDecoder::new();
            dec.feed(black_box(&binary));
            black_box(dec.drain().unwrap().len())
        });
    });

    // Regression guard for the cursor-based decoder: draining a large
    // backlog fed in one shot used to re-copy the whole remaining buffer for
    // every frame (quadratic in the backlog); it must scale linearly, so
    // this reports bytes/s over a 16k-frame backlog.
    let backlog: Vec<u8> = (0..16_384i64)
        .flat_map(|i| {
            encode_message(&SensorMessage::Window(EncodedWindow {
                window_start: i * 900,
                symbol: Symbol::from_rank((i % 16) as u16, 4).unwrap(),
                samples: 900,
            }))
            .unwrap()
        })
        .collect();
    group.throughput(Throughput::Bytes(backlog.len() as u64));
    group.bench_function("binary_decode_backlog_16k", |b| {
        b.iter(|| {
            let mut dec = FrameDecoder::new();
            dec.feed(black_box(&backlog));
            black_box(dec.drain().unwrap().len())
        });
    });
    group.finish();
}

criterion_group!(benches, bench_wire);
criterion_main!(benches);
