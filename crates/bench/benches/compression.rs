//! §2.3 compression benchmarks: bit-packing a day of symbols, lookup-table
//! wire (de)serialization, and end-to-end encode+pack throughput.

use criterion::{black_box, criterion_group, criterion_main, BenchmarkId, Criterion, Throughput};
use sms_core::alphabet::Alphabet;
use sms_core::lookup::LookupTable;
use sms_core::separators::SeparatorMethod;
use sms_core::symbol::{Symbol, SymbolReader, SymbolWriter};

fn symbols(n: usize, bits: u8) -> Vec<Symbol> {
    let k = 1u16 << bits;
    (0..n).map(|i| Symbol::from_rank((i as u16 * 31) % k, bits).unwrap()).collect()
}

fn bench_bit_packing(c: &mut Criterion) {
    let mut group = c.benchmark_group("symbol_packing");
    for bits in [1u8, 4, 8] {
        let syms = symbols(86_400, bits);
        group.throughput(Throughput::Elements(syms.len() as u64));
        group.bench_with_input(BenchmarkId::new("pack", bits), &syms, |b, syms| {
            b.iter(|| {
                let mut w = SymbolWriter::new();
                for &s in syms {
                    w.write(s);
                }
                black_box(w.into_bytes())
            });
        });
        let packed = {
            let mut w = SymbolWriter::new();
            for &s in &syms {
                w.write(s);
            }
            w.into_bytes()
        };
        group.bench_with_input(BenchmarkId::new("unpack", bits), &packed, |b, packed| {
            b.iter(|| {
                let mut r = SymbolReader::new(packed, bits).unwrap();
                black_box(r.read_all().len())
            });
        });
    }
    group.finish();
}

fn bench_table_wire(c: &mut Criterion) {
    let values: Vec<f64> = (0..20_000).map(|i| ((i * 7919) % 3000) as f64).collect();
    let table =
        LookupTable::learn(SeparatorMethod::Median, Alphabet::with_size(16).unwrap(), &values)
            .unwrap();
    let json = table.to_json().unwrap();
    let mut group = c.benchmark_group("lookup_table_wire");
    group.bench_function("serialize", |b| b.iter(|| black_box(table.to_json().unwrap())));
    group.bench_function("deserialize", |b| {
        b.iter(|| black_box(LookupTable::from_json(&json).unwrap()))
    });
    group.finish();
}

criterion_group!(benches, bench_bit_packing, bench_table_wire);
criterion_main!(benches);
