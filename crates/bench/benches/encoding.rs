//! Encoding-path microbenchmarks: horizontal segmentation throughput per
//! separator method and alphabet size, online vs batch encoding, and the
//! full vertical∘horizontal codec.

use criterion::{black_box, criterion_group, criterion_main, BenchmarkId, Criterion, Throughput};
use sms_core::alphabet::Alphabet;
use sms_core::encoder::OnlineEncoder;
use sms_core::horizontal::horizontal_segmentation;
use sms_core::lookup::LookupTable;
use sms_core::pipeline::CodecBuilder;
use sms_core::separators::SeparatorMethod;
use sms_core::timeseries::TimeSeries;
use sms_core::vertical::Aggregation;

fn day_series(interval: i64) -> TimeSeries {
    let n = (86_400 / interval) as usize;
    let values: Vec<f64> = (0..n)
        .map(|i| 60.0 + ((i * 7919) % 2400) as f64 * 0.5 + ((i / 360) % 8) as f64 * 120.0)
        .collect();
    TimeSeries::from_regular(0, interval, &values).unwrap()
}

fn bench_horizontal(c: &mut Criterion) {
    let series = day_series(10);
    let values = series.values();
    let mut group = c.benchmark_group("horizontal_segmentation");
    group.throughput(Throughput::Elements(series.len() as u64));
    for method in SeparatorMethod::ALL {
        for bits in [1u8, 4] {
            let table =
                LookupTable::learn(method, Alphabet::with_resolution(bits).unwrap(), &values)
                    .unwrap();
            group.bench_with_input(
                BenchmarkId::new(method.name(), format!("{}sym", 1 << bits)),
                &table,
                |b, table| {
                    b.iter(|| horizontal_segmentation(black_box(&series), table).unwrap());
                },
            );
        }
    }
    group.finish();
}

fn bench_online_vs_batch(c: &mut Criterion) {
    let series = day_series(10);
    let table = LookupTable::learn(
        SeparatorMethod::Median,
        Alphabet::with_size(16).unwrap(),
        &series.values(),
    )
    .unwrap();
    let mut group = c.benchmark_group("codec");
    group.throughput(Throughput::Elements(series.len() as u64));
    group.bench_function("batch_15m", |b| {
        let codec = CodecBuilder::new().window_secs(900).with_table(table.clone());
        b.iter(|| codec.encode(black_box(&series)).unwrap());
    });
    group.bench_function("online_15m", |b| {
        b.iter(|| {
            let mut enc = OnlineEncoder::new(table.clone(), 900, Aggregation::Mean).unwrap();
            let mut n = 0usize;
            for (t, v) in series.iter() {
                if enc.push(t, v).unwrap().is_some() {
                    n += 1;
                }
            }
            if enc.finish().is_some() {
                n += 1;
            }
            black_box(n)
        });
    });
    group.finish();
}

criterion_group!(benches, bench_horizontal, bench_online_vs_batch);
criterion_main!(benches);
