//! End-to-end figure benchmarks at reduced scale: how long each paper
//! experiment takes to regenerate. These are coarse (sample_size 10) —
//! they exist to catch pathological regressions in the experiment paths.

use criterion::{black_box, criterion_group, criterion_main, Criterion};
use sms_bench::classification::{run_symbolic, ClassifierKind, EncodingSpec, TableMode};
use sms_bench::figures::{fig2_distribution, fig4_statistics};
use sms_bench::forecasting::{ForecastFigure, ForecastModel};
use sms_bench::prep::dataset;
use sms_bench::Scale;
use sms_core::separators::SeparatorMethod;

fn bench_scale() -> Scale {
    Scale { days: 8, interval_secs: 300, forest_trees: 8, cv_folds: 3, seed: 17, ..Scale::quick() }
}

fn bench_figures(c: &mut Criterion) {
    let scale = bench_scale();
    let ds = dataset(scale).unwrap();
    let mut group = c.benchmark_group("paper_figures");
    group.sample_size(10);

    group.bench_function("fig2_distribution", |b| {
        b.iter(|| black_box(fig2_distribution(&ds, 1).unwrap().ks));
    });
    group.bench_function("fig4_statistics", |b| {
        b.iter(|| black_box(fig4_statistics(&ds, 1, 3, 100).unwrap().series.len()));
    });
    group.bench_function("fig5_one_cell_nb", |b| {
        let spec = EncodingSpec { method: SeparatorMethod::Median, window_secs: 3600, bits: 4 };
        b.iter(|| {
            black_box(
                run_symbolic(&ds, scale, spec, TableMode::PerHouse, ClassifierKind::NaiveBayes, 1)
                    .unwrap()
                    .f_measure,
            )
        });
    });
    group.bench_function("fig8_forecast_nb", |b| {
        b.iter(|| {
            black_box(
                ForecastFigure::run(&ds, scale, ForecastModel::NaiveBayes).unwrap().houses.len(),
            )
        });
    });
    group.finish();
}

criterion_group!(benches, bench_figures);
criterion_main!(benches);
