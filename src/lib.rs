//! # smart-meter-symbolics
//!
//! Umbrella crate for the reproduction of *Wijaya, Eberle, Aberer —
//! "Symbolic Representation of Smart Meter Data" (EDBT 2013)*: re-exports
//! the three library crates and hosts the runnable examples and the
//! cross-crate integration tests.
//!
//! * [`core`] (`sms-core`) — the paper's contribution: vertical/horizontal
//!   segmentation, variable-length binary symbols, lookup tables with
//!   uniform / median / distinctmedian separators, online encoding,
//!   SAX/iSAX baselines, adaptive tables, privacy measures.
//! * [`meterdata`] — the REDD-stand-in synthetic smart-meter substrate.
//! * [`ml`] (`sms-ml`) — the Weka-equivalent learners and evaluation
//!   machinery the paper's experiments need.
//!
//! ```
//! use smart_meter_symbolics::prelude::*;
//!
//! // Simulate one day of one house, learn a table, encode it.
//! let ds = smart_meter_symbolics::meterdata::generator::redd_like(1, 1, 60)
//!     .generate()
//!     .unwrap();
//! let house = ds.house(1).unwrap();
//! let codec = CodecBuilder::new()
//!     .method(SeparatorMethod::Median)
//!     .alphabet_size(16).unwrap()
//!     .window_secs(900)
//!     .train(house)
//!     .unwrap();
//! let symbols = codec.encode(house).unwrap();
//! assert!(symbols.len() > 0);
//! ```

#![warn(missing_docs)]

pub use meterdata;
pub use sms_core as core;
pub use sms_ml as ml;

/// One-stop import of the most-used types from all three crates.
pub mod prelude {
    pub use meterdata::{GapConfig, HouseConfig, MeterDataset};
    pub use sms_core::prelude::*;
    pub use sms_ml::{Classifier, Instances, Regressor, Value};
}
