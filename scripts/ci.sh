#!/usr/bin/env bash
# Local CI gate (GitHub Actions is unavailable in this environment).
#
#   scripts/ci.sh          # everything: fmt, clippy, tier-1, full suite
#   scripts/ci.sh --quick  # skip the full --workspace test pass
#
# Tier-1 (the must-stay-green contract, see README "Tests and benches"):
#   cargo build --release && cargo test -q
set -euo pipefail
cd "$(dirname "$0")/.."

quick=0
[[ "${1:-}" == "--quick" ]] && quick=1

echo "==> cargo fmt --check"
cargo fmt --all -- --check

echo "==> cargo clippy --all-targets -- -D warnings"
cargo clippy --workspace --all-targets -- -D warnings

echo "==> tier-1: cargo build --release"
cargo build --release

echo "==> tier-1: cargo test -q"
cargo test -q

echo "==> rustdoc: cargo doc --no-deps (missing_docs is deny in sms-core)"
RUSTDOCFLAGS="-D warnings" cargo doc --workspace --no-deps -q

echo "==> doctests: cargo test --doc"
cargo test -q --doc --workspace

if [[ $quick -eq 0 ]]; then
    echo "==> full suite: cargo test -q --workspace"
    cargo test -q --workspace

    echo "==> wire hardening: mutation fuzz (release)"
    cargo test -q --release --test failure_injection mutation_fuzz

    echo "==> wire hardening: repro ingest --faults smoke"
    cargo run -q --release -p sms-bench --bin repro -- ingest --faults

    echo "==> ml split-search bench smoke (down-scaled)"
    BENCH_ML_SMOKE=1 cargo bench -q -p sms-bench --bench ml

    echo "==> encode fast path: old-vs-new equivalence proptest (release)"
    cargo test -q --release --test encode_equivalence

    echo "==> encode bench smoke + per-core regression gate (down-scaled)"
    BENCH_ENCODE_SMOKE=1 BENCH_ENCODE_BASELINE="$PWD/BENCH_encode.json" \
        cargo bench -q -p sms-bench --bench encode

    echo "==> sharded fleet + segment store: scale bench smoke + regression gate"
    BENCH_SCALE_SMOKE=1 BENCH_SCALE_BASELINE="$PWD/BENCH_scale.json" \
        cargo bench -q -p sms-bench --bench scale

    echo "==> parallel evaluation determinism"
    cargo test -q -p sms-ml --test eval_determinism

    echo "==> supervised pool: panic-injection fuzz at workers {1,2,8} (release)"
    PANIC_FUZZ_ITERS=250 cargo test -q --release --test panic_injection

    echo "==> dirty-data quarantine: repro quality --faults smoke"
    cargo run -q --release -p sms-bench --bin repro -- quality --faults

    echo "==> quality sanitizer + supervised pool bench smoke (down-scaled)"
    BENCH_QUALITY_SMOKE=1 cargo bench -q -p sms-bench --bench quality

    echo "==> telemetry: --metrics exporter smoke (JSON shape via sms_core::json)"
    metrics_tmp=$(mktemp -d)
    trap 'rm -rf "$metrics_tmp"' EXIT
    cargo run -q --release -p sms-bench --bin repro -- \
        fleet --parallel --workers 2 "--metrics=$metrics_tmp/fleet.prom" \
        > "$metrics_tmp/fleet.out"
    grep -q '^metrics_json: ' "$metrics_tmp/fleet.out"
    grep -q '^# TYPE sms_engine_samples_in counter$' "$metrics_tmp/fleet.prom"
    cargo run -q --release -p sms-bench --bin repro -- \
        validate-metrics "$metrics_tmp/fleet.out"

    echo "==> gateway: loopback TCP e2e at workers {1,2,8} (release)"
    cargo test -q --release --test gateway_e2e

    echo "==> gateway: repro gateway --meters 64 --metrics round-trip"
    cargo run -q --release -p sms-bench --bin repro -- \
        gateway --meters 64 "--metrics=$metrics_tmp/gateway.prom" \
        > "$metrics_tmp/gateway.out"
    grep -q '^metrics_json: ' "$metrics_tmp/gateway.out"
    grep -q '^# TYPE sms_gateway_frames_acked counter$' "$metrics_tmp/gateway.prom"
    grep -q 'byte-identical to in-process FleetIngest' "$metrics_tmp/gateway.out"
    cargo run -q --release -p sms-bench --bin repro -- \
        validate-metrics "$metrics_tmp/gateway.out"

    echo "==> durability: crash-point sweep + torn-tail proptests (release)"
    cargo test -q --release -p sms-core --test durable_recovery

    echo "==> durability: repro crash --metrics smoke"
    cargo run -q --release -p sms-bench --bin repro -- \
        crash --houses 30 "--metrics=$metrics_tmp/crash.prom" \
        > "$metrics_tmp/crash.out"
    grep -q '^metrics_json: ' "$metrics_tmp/crash.out"
    grep -q '^# TYPE sms_durable_wal_appends counter$' "$metrics_tmp/crash.prom"
    grep -q '^# TYPE sms_durable_shard_failovers counter$' "$metrics_tmp/crash.prom"
    grep -q 'byte-for-byte' "$metrics_tmp/crash.out"
    cargo run -q --release -p sms-bench --bin repro -- \
        validate-metrics "$metrics_tmp/crash.out"

    echo "==> drift path: sketch bounds + epoch determinism suite (release)"
    cargo test -q --release -p sms-core --test drift_determinism

    echo "==> drift path: repro drift --metrics smoke"
    cargo run -q --release -p sms-bench --bin repro -- \
        drift "--metrics=$metrics_tmp/drift.prom" \
        > "$metrics_tmp/drift.out"
    grep -q '^metrics_json: ' "$metrics_tmp/drift.out"
    grep -q '^# TYPE sms_adaptive_rebuilds counter$' "$metrics_tmp/drift.prom"
    grep -q '^# TYPE sms_adaptive_epochs_shipped counter$' "$metrics_tmp/drift.prom"
    grep -q '^# TYPE sms_adaptive_sketch_bytes gauge$' "$metrics_tmp/drift.prom"
    grep -q '"recovered":1' "$metrics_tmp/drift.out"
    grep -q 'post-drift recovery to within 5% of baseline: yes' "$metrics_tmp/drift.out"
    grep -q 'topology combos byte-identical' "$metrics_tmp/drift.out"
    cargo run -q --release -p sms-bench --bin repro -- \
        validate-metrics "$metrics_tmp/drift.out"

    echo "==> telemetry: OBSERVABILITY.md vs live registry"
    scripts/check_metrics_docs.sh
fi

echo "==> docs freshness: README/DESIGN.md vs sms_core public modules"
scripts/check_module_docs.sh

echo "==> CI green"
