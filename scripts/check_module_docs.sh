#!/usr/bin/env bash
# Docs-freshness gate: every public module of `sms_core` must be mentioned
# in both README.md and DESIGN.md. New subsystems keep landing (engine,
# ingest, gateway, shard, segstore, durable, adaptive, …) and the docs have
# drifted before — this makes "document the module map" a CI property
# instead of a review hope.
set -euo pipefail
cd "$(dirname "$0")/.."

lib=crates/core/src/lib.rs
modules=$(sed -n 's/^pub mod \([a-z_]*\);$/\1/p' "$lib")
[[ -n "$modules" ]] || { echo "error: no public modules found in $lib" >&2; exit 1; }

# `error` and `prelude` are structural (the error type and the re-export
# surface), not subsystems a reader looks up by name.
skip="error prelude"

fail=0
for m in $modules; do
    [[ " $skip " == *" $m "* ]] && continue
    for doc in README.md DESIGN.md; do
        # Match the module as a word: `adaptive`, `sms_core::adaptive`,
        # a table row, or a tree listing all count. Case-insensitive so
        # prose spellings like "iSAX" satisfy `isax`.
        if ! grep -qiw "$m" "$doc"; then
            echo "MISSING: module \`$m\` is not mentioned in $doc" >&2
            fail=1
        fi
    done
done

if [[ $fail -ne 0 ]]; then
    echo "==> docs are stale: add the missing modules to the README module" >&2
    echo "    map and the DESIGN.md §3 inventory (see existing entries)." >&2
    exit 1
fi

count=$(echo "$modules" | wc -w)
echo "==> README.md and DESIGN.md mention all $count public sms_core modules"
