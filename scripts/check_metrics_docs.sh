#!/usr/bin/env bash
# Diffs the metric names the telemetry registry actually exposes against the
# names documented in OBSERVABILITY.md.
#
# Runs `repro quality --faults --metrics=FILE` (the experiment that touches
# the most blocks), collects every `# TYPE <name> <kind>` line from the
# Prometheus exposition — with `Registry::with_catalog` that is the complete
# catalog plus the two span series — and requires each name to appear in
# backticks in OBSERVABILITY.md, and every documented `sms_` name to exist
# in the exposition. Fails on drift in either direction.
set -euo pipefail
cd "$(dirname "$0")/.."

doc=OBSERVABILITY.md
[[ -f "$doc" ]] || { echo "missing $doc" >&2; exit 1; }

tmpdir=$(mktemp -d)
trap 'rm -rf "$tmpdir"' EXIT

echo "==> running repro quality --faults --metrics to enumerate live metrics"
cargo run -q --release -p sms-bench --bin repro -- \
    quality --faults "--metrics=$tmpdir/metrics.prom" > /dev/null

awk '$1 == "#" && $2 == "TYPE" { print $3 }' "$tmpdir/metrics.prom" \
    | sort -u > "$tmpdir/live.txt"
grep -o '`sms_[a-z0-9_]*`' "$doc" | tr -d '`' | sort -u > "$tmpdir/doc.txt"

[[ -s "$tmpdir/live.txt" ]] || { echo "no metrics in the exposition?" >&2; exit 1; }

status=0
undocumented=$(comm -23 "$tmpdir/live.txt" "$tmpdir/doc.txt")
if [[ -n "$undocumented" ]]; then
    echo "registered metrics missing from $doc:" >&2
    echo "$undocumented" | sed 's/^/  /' >&2
    status=1
fi
stale=$(comm -13 "$tmpdir/live.txt" "$tmpdir/doc.txt")
if [[ -n "$stale" ]]; then
    echo "metrics documented in $doc but not registered:" >&2
    echo "$stale" | sed 's/^/  /' >&2
    status=1
fi

if [[ $status -eq 0 ]]; then
    echo "==> OBSERVABILITY.md matches the live registry ($(wc -l < "$tmpdir/live.txt") series)"
fi
exit $status
