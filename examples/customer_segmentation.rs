//! Customer segmentation (paper §3.1): classify day-vectors of symbols by
//! house with Naive Bayes and Random Forest, comparing a symbolic encoding
//! against raw aggregates — a scaled-down Fig. 5/6.
//!
//! ```sh
//! cargo run --release --example customer_segmentation
//! ```

use smart_meter_symbolics::prelude::*;
use sms_bench::classification::{run_raw, run_symbolic, ClassifierKind, EncodingSpec, TableMode};
use sms_bench::prep::dataset;
use sms_bench::Scale;

fn main() -> Result<()> {
    let scale = Scale {
        days: 10,
        interval_secs: 120,
        forest_trees: 20,
        cv_folds: 10,
        seed: 7,
        ..Scale::quick()
    };
    println!("generating {} days × 6 houses at {}s sampling…", scale.days, scale.interval_secs);
    let ds = dataset(scale)?;

    println!(
        "\n{:<28} {:>12} {:>12} {:>10}",
        "configuration", "NaiveBayes F", "Forest F", "NB time[s]"
    );
    for method in SeparatorMethod::ALL {
        for bits in [2u8, 4] {
            let spec = EncodingSpec { method, window_secs: 3600, bits };
            let nb =
                run_symbolic(&ds, scale, spec, TableMode::PerHouse, ClassifierKind::NaiveBayes, 1)?;
            let rf = run_symbolic(
                &ds,
                scale,
                spec,
                TableMode::PerHouse,
                ClassifierKind::RandomForest,
                1,
            )?;
            println!(
                "{:<28} {:>12.3} {:>12.3} {:>10.4}",
                spec.label(),
                nb.f_measure,
                rf.f_measure,
                nb.seconds
            );
        }
    }
    let nb_raw = run_raw(&ds, scale, Some(3600), ClassifierKind::NaiveBayes, 1)?;
    let rf_raw = run_raw(&ds, scale, Some(3600), ClassifierKind::RandomForest, 1)?;
    println!(
        "{:<28} {:>12.3} {:>12.3} {:>10.4}",
        "raw 1h", nb_raw.f_measure, rf_raw.f_measure, nb_raw.seconds
    );

    println!(
        "\nNote (paper §3.1): this classification doubles as a re-identification\n\
         attack — a high F-measure means day-long symbol sequences identify the\n\
         household even after encoding."
    );
    Ok(())
}
