//! Quickstart: simulate a house, learn a lookup table from two days of
//! history, encode a day at 15-minute resolution, inspect the symbols,
//! reconstruct, and measure the information loss — the paper's whole
//! pipeline in ~60 lines.
//!
//! ```sh
//! cargo run --example quickstart
//! ```

use smart_meter_symbolics::meterdata::generator::redd_like;
use smart_meter_symbolics::prelude::*;

fn main() -> Result<()> {
    // Three days of one synthetic house at 10-second sampling.
    let dataset = redd_like(2024, 3, 10).generate()?;
    let house = dataset.house(1).expect("house 1 exists");
    println!("house 1: {} samples, mean {:.0} W", house.len(), house.mean().unwrap());

    // The paper's protocol: learn separators from the first two days.
    let history = house.head_duration(2 * 86_400);
    let codec = CodecBuilder::new()
        .method(SeparatorMethod::Median)
        .alphabet_size(16)?
        .window_secs(900) // 15 minutes
        .train(&history)?;

    println!("\nlookup table (median, 16 symbols):");
    for (i, sep) in codec.table().separators().iter().enumerate() {
        print!("β{}={:.0}W ", i + 1, sep);
    }
    println!();

    // Encode the third day.
    let day3 = house.skip_duration(2 * 86_400);
    let symbols = codec.encode(&day3)?;
    println!(
        "\nday 3 encoded: {} symbols × {} bits = {} bits (raw: {} samples × 64 bits = {} bits)",
        symbols.len(),
        symbols.resolution_bits(),
        symbols.payload_bits(),
        day3.len(),
        day3.len() * 64
    );
    println!(
        "first 24 symbols: {}",
        symbols.to_string_joined(" ").chars().take(24 * 5).collect::<String>()
    );

    // Reconstruct and measure error against the 15-minute aggregates.
    let mae = codec.reconstruction_mae(&day3, SymbolSemantics::RangeMean)?;
    println!("\nreconstruction MAE vs 15-min means: {mae:.1} W");

    // The §4 flexibility: truncate to a 4-symbol view without re-encoding.
    let coarse = symbols.truncate_resolution(2)?;
    println!("same day at 4 symbols: {}", coarse.to_string_joined(""));

    // The §3.2 expert example: a custom low/high table at 500 W.
    let expert = LookupTable::custom(&[500.0], 0.0, 5000.0)?;
    let low_high =
        sms_core::horizontal::horizontal_segmentation(&codec.aggregate(&day3)?, &expert)?;
    println!("expert low/high view:  {}", low_high.to_string_joined(""));
    Ok(())
}
