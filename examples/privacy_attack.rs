//! Privacy analysis (paper §1, §3.1 remark, §4): the paper notes that its
//! classification experiment "could also be seen as an attack against
//! changing ID's privacy protection mechanisms". This example quantifies
//! that trade-off: as the alphabet grows, symbols carry more utility *and*
//! leak more identity (mutual information up, anonymity sets down).
//!
//! ```sh
//! cargo run --release --example privacy_attack
//! ```

use smart_meter_symbolics::prelude::*;
use sms_bench::classification::{run_symbolic, ClassifierKind, EncodingSpec, TableMode};
use sms_bench::prep::dataset;
use sms_bench::privacy_exp::{render_privacy, run_privacy};
use sms_bench::Scale;

fn main() -> Result<()> {
    let scale = Scale {
        days: 10,
        interval_secs: 120,
        forest_trees: 15,
        cv_folds: 5,
        seed: 31,
        ..Scale::quick()
    };
    println!("generating {} days × 6 houses…", scale.days);
    let ds = dataset(scale)?;

    println!("\ninformation-theoretic measures (global median table, hourly symbols):\n");
    let reports = run_privacy(&ds, scale)?;
    println!("{}", render_privacy(&reports));

    println!("re-identification attack success (Random Forest, global table):\n");
    println!("{:<10} {:>22}", "alphabet", "attack F-measure");
    for bits in 1..=4u8 {
        let spec = EncodingSpec { method: SeparatorMethod::Median, window_secs: 3600, bits };
        let cell =
            run_symbolic(&ds, scale, spec, TableMode::Global, ClassifierKind::RandomForest, 1)
                .map_err(|e| Error::InvalidParameter { name: "attack", reason: e.to_string() })?;
        println!("{:<10} {:>22.3}", format!("{} sym", 1 << bits), cell.f_measure);
    }

    println!(
        "\nReading: a 2-symbol encoding hides households best (largest anonymity\n\
         sets, lowest attack F) at the cost of analytic detail; 16 symbols keep\n\
         analytics sharp but let an attacker re-identify the household from a\n\
         day of symbols — the paper's privacy/utility tension made concrete."
    );
    Ok(())
}
