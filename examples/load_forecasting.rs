//! Short-term load forecasting (paper §3.2): predict the next day's hourly
//! consumption from a week of history — symbolic forecasting (Naive Bayes
//! over 12 lag symbols, decoded via range centers) versus raw-value SVR.
//!
//! ```sh
//! cargo run --release --example load_forecasting
//! ```

use sms_bench::forecasting::{ForecastFigure, ForecastModel};
use sms_bench::prep::dataset;
use sms_bench::Scale;

fn main() -> Result<(), Box<dyn std::error::Error>> {
    let scale = Scale {
        days: 10,
        interval_secs: 120,
        forest_trees: 20,
        cv_folds: 10,
        seed: 7,
        ..Scale::quick()
    };
    println!("generating {} days × 6 houses…", scale.days);
    let ds = dataset(scale)?;

    for model in [ForecastModel::NaiveBayes, ForecastModel::RandomForest] {
        let fig = ForecastFigure::run(&ds, scale, model)?;
        println!("\n{}", fig.render());
        println!("symbolic beats raw SVR on {}/{} houses", fig.symbolic_wins(), fig.houses.len());
    }
    println!(
        "\nAs in the paper, the chronically gappy house is skipped and symbolic\n\
         forecasts — despite only knowing range centers — stay in the same MAE\n\
         ballpark as the real-valued SVR, sometimes beating it."
    );
    Ok(())
}
