//! The sensor→server wire protocol (paper §2): a sensor trains its lookup
//! table on the first two days, ships the table once, then streams one
//! symbol per 15-minute window; the server reconstructs approximate
//! consumption from the symbols alone. Demonstrates the online conversion
//! and the §2.3 compression accounting on live data, with the sensor and
//! server on separate threads connected by a channel.
//!
//! ```sh
//! cargo run --release --example streaming_sensor
//! ```

use crossbeam::channel;
use smart_meter_symbolics::core::encoder::{SensorMessage, SensorPipeline};
use smart_meter_symbolics::core::lookup::SymbolSemantics;
use smart_meter_symbolics::meterdata::generator::redd_like;
use smart_meter_symbolics::prelude::*;
use std::thread;

fn main() -> Result<()> {
    let dataset = redd_like(99, 4, 10).generate()?;
    let house = dataset.house(1).expect("house 1 exists").clone();
    let total_samples = house.len();

    let (tx, rx) = channel::bounded::<String>(1024);

    // Sensor thread: trains for 2 days, then streams 15-minute symbols as JSON.
    let sensor = thread::spawn(move || -> Result<(usize, usize)> {
        let mut pipeline = SensorPipeline::new(
            SeparatorMethod::Median,
            Alphabet::with_size(16)?,
            900,
            Aggregation::Mean,
            2 * 86_400,
        )?;
        let mut wire_bytes = 0usize;
        let mut messages = 0usize;
        for (t, v) in house.iter() {
            for msg in pipeline.push(t, v)? {
                let json = msg.to_json()?;
                wire_bytes += json.len();
                messages += 1;
                tx.send(json).expect("server alive");
            }
        }
        for msg in pipeline.finish() {
            let json = msg.to_json()?;
            wire_bytes += json.len();
            messages += 1;
            tx.send(json).expect("server alive");
        }
        Ok((wire_bytes, messages))
    });

    // Server thread: receives the table, decodes subsequent symbols.
    let server = thread::spawn(move || -> Result<(usize, f64)> {
        let mut table = None;
        let mut windows = 0usize;
        let mut watt_sum = 0.0;
        for json in rx.iter() {
            match SensorMessage::from_json(&json)? {
                SensorMessage::Table(t) => {
                    println!(
                        "server: received lookup table ({} symbols, {} bytes on the wire)",
                        t.size(),
                        json.len()
                    );
                    table = Some(t);
                }
                SensorMessage::EpochTable { epoch, table: t } => {
                    println!("server: received epoch-{epoch} lookup table ({} symbols)", t.size());
                    table = Some(t);
                }
                SensorMessage::Window(w) => {
                    let t = table.as_ref().expect("table precedes symbols");
                    watt_sum += t.decode_symbol(w.symbol, SymbolSemantics::RangeMean)?;
                    windows += 1;
                }
            }
        }
        Ok((windows, watt_sum))
    });

    let (wire_bytes, messages) = sensor.join().expect("sensor thread")?;
    let (windows, watt_sum) = server.join().expect("server thread")?;

    println!("sensor:  {total_samples} raw samples → {messages} wire messages ({wire_bytes} bytes total)");
    println!(
        "server:  {} windows decoded, mean reconstructed power {:.0} W",
        windows,
        watt_sum / windows as f64
    );
    let raw_bytes = total_samples * 8;
    println!(
        "wire vs raw f64 stream: {wire_bytes} B vs {raw_bytes} B ({:.0}× smaller; JSON framing included —\n\
         bit-packed symbols alone would be {} B, the §2.3 three-orders-of-magnitude figure)",
        raw_bytes as f64 / wire_bytes as f64,
        windows.div_ceil(2)
    );
    Ok(())
}
