//! The §4 flexibility story, end to end: a fleet of sensors encodes at
//! *different* resolutions (and one re-negotiates its resolution mid-stream),
//! yet the server still compares and searches across all of them — because
//! truncating symbol bits coarsens losslessly and prefix-compatible symbols
//! compare as equal.
//!
//! ```sh
//! cargo run --release --example mixed_resolution
//! ```

use smart_meter_symbolics::core::distance::{nearest_prefix, prefix_distance, table_distance};
use smart_meter_symbolics::core::encoder::SensorMessage;
use smart_meter_symbolics::core::wire::{encode_message, FrameDecoder};
use smart_meter_symbolics::meterdata::generator::redd_like;
use smart_meter_symbolics::prelude::*;

fn main() -> Result<()> {
    let dataset = redd_like(7, 4, 30).generate()?;

    // Each house trains a 16-symbol median table; encode day 3 hourly.
    println!("encoding day 3 of each house at its own resolution…");
    let mut encoded = Vec::new();
    for record in dataset.records() {
        let history = record.series.head_duration(2 * 86_400);
        if history.is_empty() {
            continue;
        }
        let codec = CodecBuilder::new()
            .method(SeparatorMethod::Median)
            .alphabet_size(16)?
            .window_secs(3600)
            .train(&history)?;
        let day3 = record.series.window(2 * 86_400, 3 * 86_400);
        let symbols = codec.encode(&day3)?;
        if symbols.is_empty() {
            continue;
        }
        encoded.push((record.house_id, codec.table().clone(), symbols));
    }

    // Sensors 2 and 4 run constrained firmware: they down-convert to 4
    // symbols before transmitting. No re-encoding — just bit truncation.
    let mut fleet = Vec::new();
    for (id, table, symbols) in &encoded {
        let (bits, series) = if *id == 2 || *id == 4 {
            (2u8, symbols.truncate_resolution(2)?)
        } else {
            (4u8, symbols.clone())
        };
        println!(
            "house {id}: {} symbols at {} bits → first 12: {}",
            series.len(),
            bits,
            series.symbols().iter().take(12).map(|s| s.to_string()).collect::<Vec<_>>().join(" ")
        );
        fleet.push((*id, table.clone(), series));
    }

    // Mixed-resolution retrieval: which archived day looks most like house
    // 1's day, even though archives hold different resolutions?
    let (query_id, _, query) = &fleet[0];
    let candidates: Vec<_> = fleet[1..].iter().map(|(_, _, s)| s.clone()).collect();
    let best = nearest_prefix(query, &candidates)?;
    println!(
        "\nnearest day-profile to house {query_id} under prefix distance: house {}",
        fleet[1 + best].0
    );
    for (id, _, s) in &fleet[1..] {
        println!(
            "  prefix distance to house {id} ({} bits): {:.2}",
            s.resolution_bits(),
            prefix_distance(query, s)?
        );
    }

    // Prefix distance deliberately ignores per-house scale; watt-space
    // distance through each house's own table restores it.
    println!("\nwatt-space distances (through each house's own table):");
    let (qid, qtable, qseries) = &fleet[0];
    for (id, table, s) in &fleet[1..] {
        // Watt-space comparison needs the full-resolution symbols the coarse
        // sensors didn't send — use their 2-bit view against our own table's
        // coarsened counterpart (tables coarsen exactly like symbols do).
        let q = if s.resolution_bits() < qseries.resolution_bits() {
            qseries.truncate_resolution(s.resolution_bits())?
        } else {
            qseries.clone()
        };
        let qt = qtable.coarsen(q.resolution_bits())?;
        let ct = table.coarsen(s.resolution_bits())?;
        println!("  house {qid} vs house {id}: {:.0} W", table_distance(&q, &qt, s, &ct)?);
    }

    // Ship one house's stream over the binary wire and decode it back.
    let (_, table, series) = &fleet[0];
    let mut wire = Vec::new();
    wire.extend(encode_message(&SensorMessage::Table(table.clone()))?);
    for (t, sym) in series.iter() {
        wire.extend(encode_message(&SensorMessage::Window(
            smart_meter_symbolics::core::encoder::EncodedWindow {
                window_start: t,
                symbol: sym,
                samples: 120,
            },
        ))?);
    }
    let mut decoder = FrameDecoder::new();
    decoder.feed(&wire);
    let messages = decoder.drain()?;
    println!(
        "\nbinary wire: {} messages in {} bytes ({} bytes/message incl. the table)",
        messages.len(),
        wire.len(),
        wire.len() / messages.len()
    );

    // Reconstruct watts from wire messages alone.
    let mut current_table = None;
    let mut watts = Vec::new();
    for m in messages {
        match m {
            SensorMessage::Table(t) | SensorMessage::EpochTable { table: t, .. } => {
                current_table = Some(t)
            }
            SensorMessage::Window(w) => {
                let t: &LookupTable = current_table.as_ref().expect("table first");
                watts.push(t.decode_symbol(w.symbol, SymbolSemantics::RangeCenter)?);
            }
        }
    }
    println!(
        "server reconstructed {} hourly values; mean {:.0} W",
        watts.len(),
        watts.iter().sum::<f64>() / watts.len() as f64
    );
    Ok(())
}
