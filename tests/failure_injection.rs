//! Failure-injection tests: corrupted wire streams, fuzzed ARFF, malformed
//! CSV, and hostile numeric inputs must produce *errors*, never panics or
//! silent corruption.

use proptest::prelude::*;
use smart_meter_symbolics::core::encoder::{EncodedWindow, SensorMessage};
use smart_meter_symbolics::core::ingest::{IngestConfig, MeterIngest};
use smart_meter_symbolics::core::wire::{encode_message, FrameDecoder};
use smart_meter_symbolics::prelude::*;
use sms_bench::ingest_exp::{Fault, FaultInjector};
use sms_ml::arff::from_arff;
use std::collections::HashSet;

fn valid_stream() -> Vec<u8> {
    let values: Vec<f64> = (0..200).map(|i| ((i * 13) % 500) as f64).collect();
    let table =
        LookupTable::learn(SeparatorMethod::Median, Alphabet::with_size(8).unwrap(), &values)
            .unwrap();
    let mut wire = encode_message(&SensorMessage::Table(table)).unwrap();
    for i in 0..10i64 {
        wire.extend(
            encode_message(&SensorMessage::Window(EncodedWindow {
                window_start: i * 900,
                symbol: Symbol::from_rank((i % 8) as u16, 3).unwrap(),
                samples: 900,
            }))
            .unwrap(),
        );
    }
    wire
}

proptest! {
    #![proptest_config(ProptestConfig::with_cases(64))]

    #[test]
    fn corrupted_wire_never_panics(flip_at in 0usize..400, flip_mask in 1u8..=255) {
        let mut wire = valid_stream();
        let idx = flip_at % wire.len();
        wire[idx] ^= flip_mask;
        let mut dec = FrameDecoder::new();
        dec.feed(&wire);
        // Drain until error or exhaustion — must terminate without panicking.
        let mut steps = 0;
        loop {
            match dec.next_message() {
                Ok(Some(_)) => {
                    steps += 1;
                    prop_assert!(steps <= 1000, "decoder must not loop forever");
                }
                Ok(None) => break,
                Err(_) => break, // graceful error is the acceptable outcome
            }
        }
    }

    #[test]
    fn truncated_wire_waits_or_errors(cut in 1usize..100) {
        let wire = valid_stream();
        let cut = cut.min(wire.len() - 1);
        let mut dec = FrameDecoder::new();
        dec.feed(&wire[..cut]);
        // Must not panic; may yield some complete messages then wait.
        while let Ok(Some(_)) = dec.next_message() {}
    }

    #[test]
    fn arff_fuzz_never_panics(text in "[ -~\n]{0,400}") {
        let _ = from_arff(&text); // any outcome but a panic
    }

    #[test]
    fn arff_structured_fuzz(
        n_attrs in 1usize..5,
        rows in prop::collection::vec("[ -~]{0,30}", 0..10),
    ) {
        let mut text = String::from("@relation fuzz\n");
        for i in 0..n_attrs {
            text.push_str(&format!("@attribute a{i} numeric\n"));
        }
        text.push_str("@data\n");
        for r in &rows {
            text.push_str(r);
            text.push('\n');
        }
        let _ = from_arff(&text);
    }

    #[test]
    fn csv_fuzz_never_panics(text in "[ -~\n]{0,300}") {
        let dir = std::env::temp_dir()
            .join(format!("sms_fuzz_{}_{}", std::process::id(), text.len()));
        std::fs::create_dir_all(&dir).unwrap();
        let p = dir.join("fuzz.csv");
        std::fs::write(&p, &text).unwrap();
        let _ = smart_meter_symbolics::meterdata::io::read_series_csv(&p);
        let _ = std::fs::remove_dir_all(&dir);
    }

    #[test]
    fn hostile_values_rejected_not_propagated(bad in prop::sample::select(vec![f64::NAN, f64::INFINITY, f64::NEG_INFINITY])) {
        // Time series accept (storage is dumb), but every consumer rejects.
        prop_assert!(LookupTable::learn(
            SeparatorMethod::Median,
            Alphabet::with_size(4).unwrap(),
            &[1.0, bad, 3.0]
        )
        .is_err());
        let mut enc = OnlineEncoder::new(
            LookupTable::custom(&[1.0], 0.0, 2.0).unwrap(),
            60,
            Aggregation::Mean,
        )
        .unwrap();
        prop_assert!(enc.push(0, bad).is_err());
        prop_assert!(sms_core::stats::FiniteF64::new(bad).is_err());
    }

    #[test]
    fn symbol_parse_fuzz(text in "[01ab]{0,20}") {
        match text.parse::<Symbol>() {
            Ok(sym) => {
                prop_assert!(text.chars().all(|c| c == '0' || c == '1'));
                prop_assert_eq!(sym.to_string(), text);
            }
            Err(_) => {
                prop_assert!(
                    text.is_empty()
                        || text.len() > 16
                        || text.chars().any(|c| c != '0' && c != '1')
                );
            }
        }
    }
}

/// Byte range of one encoded frame, tagged (for windows) with its unique
/// `window_start` identity.
struct FrameSpan {
    start: usize,
    end: usize,
    id: Option<i64>,
}

/// A stream of `windows` frames after a table frame, plus each frame's span.
fn framed_stream(windows: i64) -> (Vec<u8>, Vec<FrameSpan>) {
    let values: Vec<f64> = (0..200).map(|i| ((i * 13) % 500) as f64).collect();
    let table =
        LookupTable::learn(SeparatorMethod::Median, Alphabet::with_size(8).unwrap(), &values)
            .unwrap();
    let mut msgs = vec![(SensorMessage::Table(table), None)];
    for i in 0..windows {
        let w = EncodedWindow {
            window_start: i * 900,
            symbol: Symbol::from_rank((i % 8) as u16, 3).unwrap(),
            samples: 900,
        };
        msgs.push((SensorMessage::Window(w), Some(i * 900)));
    }
    let mut wire = Vec::new();
    let mut frames = Vec::new();
    for (m, id) in &msgs {
        let start = wire.len();
        wire.extend(encode_message(m).unwrap());
        frames.push(FrameSpan { start, end: wire.len(), id: *id });
    }
    (wire, frames)
}

/// The ISSUE's headline guarantee: 10k seeded mutations of a 500-frame
/// stream (bit flips, truncations, duplications, delivered in random
/// mid-frame chunks) produce zero panics and zero hangs, and the gateway
/// resynchronizes well enough that ≥95% of the frames a mutation did *not*
/// touch still decode.
///
/// Override the iteration count with `MUTATION_FUZZ_ITERS` (e.g. a quick
/// smoke value while debugging, or a larger soak).
#[test]
fn mutation_fuzz_recovers_the_uncorrupted_stream() {
    let iters: u64 =
        std::env::var("MUTATION_FUZZ_ITERS").ok().and_then(|s| s.parse().ok()).unwrap_or(10_000);
    let (base, frames) = framed_stream(499);
    let mut inj = FaultInjector::new(0xFA57_F00D);
    let (mut expected_total, mut recovered_total) = (0u64, 0u64);

    for n in 0..iters {
        let mut wire = base.clone();
        let (fault, at) = inj.apply_nth(n, &mut wire);
        // Original-byte range this mutation touched: half-open for in-place
        // damage, zero-width at the insertion point for duplication (the
        // original bytes all survive, only the frame containing the
        // insertion point is interrupted).
        let (a, b) = match fault {
            Fault::BitFlip => (at, at + 1),
            Fault::Truncate => (at, at + (base.len() - wire.len())),
            Fault::Duplicate => {
                let ins = at + (wire.len() - base.len());
                (ins, ins)
            }
        };
        let untouched: Vec<i64> =
            frames
                .iter()
                .filter(|f| {
                    if a == b {
                        !(f.start < a && a < f.end)
                    } else {
                        !(f.start < b && a < f.end)
                    }
                })
                .filter_map(|f| f.id)
                .collect();

        let mut gw = MeterIngest::new(IngestConfig::default().max_frame_len(4096));
        let mut decoded: HashSet<i64> = HashSet::new();
        let mut offset = 0usize;
        for len in inj.chunk_lens(wire.len(), 97) {
            for msg in gw.ingest(&wire[offset..offset + len]).unwrap() {
                if let SensorMessage::Window(w) = msg {
                    decoded.insert(w.window_start);
                }
            }
            offset += len;
        }

        // Byte-accounting invariant: every byte fed to the gateway is
        // consumed by a decoded frame, discarded by a resync, or still
        // buffered awaiting frame completion — nothing leaks, on every one
        // of the seeded mutations.
        let s = gw.stats();
        assert_eq!(
            s.bytes_decoded + s.bytes_discarded + gw.buffered() as u64,
            s.bytes_in,
            "byte accounting drifted on mutation {n} ({fault:?} at {at}): {s:?}"
        );

        expected_total += untouched.len() as u64;
        recovered_total += untouched.iter().filter(|id| decoded.contains(id)).count() as u64;
    }

    let ratio = recovered_total as f64 / expected_total.max(1) as f64;
    assert!(
        ratio >= 0.95,
        "recovered {recovered_total}/{expected_total} untouched frames ({ratio:.4}) over \
         {iters} mutations — below the 95% resync floor"
    );
}

/// Every possible mid-frame split point must decode identically to a
/// single-shot delivery: no spurious corruption, no leftover bytes.
#[test]
fn every_chunk_split_boundary_decodes_identically() {
    let (wire, frames) = framed_stream(20);
    for split in 1..wire.len() {
        let mut gw = MeterIngest::new(IngestConfig::default());
        let mut n = 0usize;
        n += gw.ingest(&wire[..split]).unwrap().len();
        n += gw.ingest(&wire[split..]).unwrap().len();
        assert_eq!(n, frames.len(), "split at byte {split}");
        let s = gw.stats();
        assert_eq!(s.frames_corrupt + s.frames_oversized + s.resyncs, 0, "split at byte {split}");
        assert_eq!(gw.buffered(), 0, "split at byte {split}");
    }
}
