//! Failure-injection tests: corrupted wire streams, fuzzed ARFF, malformed
//! CSV, and hostile numeric inputs must produce *errors*, never panics or
//! silent corruption.

use proptest::prelude::*;
use smart_meter_symbolics::core::encoder::{EncodedWindow, SensorMessage};
use smart_meter_symbolics::core::wire::{encode_message, FrameDecoder};
use smart_meter_symbolics::prelude::*;
use sms_ml::arff::from_arff;

fn valid_stream() -> Vec<u8> {
    let values: Vec<f64> = (0..200).map(|i| ((i * 13) % 500) as f64).collect();
    let table =
        LookupTable::learn(SeparatorMethod::Median, Alphabet::with_size(8).unwrap(), &values)
            .unwrap();
    let mut wire = encode_message(&SensorMessage::Table(table)).unwrap();
    for i in 0..10i64 {
        wire.extend(
            encode_message(&SensorMessage::Window(EncodedWindow {
                window_start: i * 900,
                symbol: Symbol::from_rank((i % 8) as u16, 3).unwrap(),
                samples: 900,
            }))
            .unwrap(),
        );
    }
    wire
}

proptest! {
    #![proptest_config(ProptestConfig::with_cases(64))]

    #[test]
    fn corrupted_wire_never_panics(flip_at in 0usize..400, flip_mask in 1u8..=255) {
        let mut wire = valid_stream();
        let idx = flip_at % wire.len();
        wire[idx] ^= flip_mask;
        let mut dec = FrameDecoder::new();
        dec.feed(&wire);
        // Drain until error or exhaustion — must terminate without panicking.
        let mut steps = 0;
        loop {
            match dec.next_message() {
                Ok(Some(_)) => {
                    steps += 1;
                    prop_assert!(steps <= 1000, "decoder must not loop forever");
                }
                Ok(None) => break,
                Err(_) => break, // graceful error is the acceptable outcome
            }
        }
    }

    #[test]
    fn truncated_wire_waits_or_errors(cut in 1usize..100) {
        let wire = valid_stream();
        let cut = cut.min(wire.len() - 1);
        let mut dec = FrameDecoder::new();
        dec.feed(&wire[..cut]);
        // Must not panic; may yield some complete messages then wait.
        while let Ok(Some(_)) = dec.next_message() {}
    }

    #[test]
    fn arff_fuzz_never_panics(text in "[ -~\n]{0,400}") {
        let _ = from_arff(&text); // any outcome but a panic
    }

    #[test]
    fn arff_structured_fuzz(
        n_attrs in 1usize..5,
        rows in prop::collection::vec("[ -~]{0,30}", 0..10),
    ) {
        let mut text = String::from("@relation fuzz\n");
        for i in 0..n_attrs {
            text.push_str(&format!("@attribute a{i} numeric\n"));
        }
        text.push_str("@data\n");
        for r in &rows {
            text.push_str(r);
            text.push('\n');
        }
        let _ = from_arff(&text);
    }

    #[test]
    fn csv_fuzz_never_panics(text in "[ -~\n]{0,300}") {
        let dir = std::env::temp_dir()
            .join(format!("sms_fuzz_{}_{}", std::process::id(), text.len()));
        std::fs::create_dir_all(&dir).unwrap();
        let p = dir.join("fuzz.csv");
        std::fs::write(&p, &text).unwrap();
        let _ = smart_meter_symbolics::meterdata::io::read_series_csv(&p);
        let _ = std::fs::remove_dir_all(&dir);
    }

    #[test]
    fn hostile_values_rejected_not_propagated(bad in prop::sample::select(vec![f64::NAN, f64::INFINITY, f64::NEG_INFINITY])) {
        // Time series accept (storage is dumb), but every consumer rejects.
        prop_assert!(LookupTable::learn(
            SeparatorMethod::Median,
            Alphabet::with_size(4).unwrap(),
            &[1.0, bad, 3.0]
        )
        .is_err());
        let mut enc = OnlineEncoder::new(
            LookupTable::custom(&[1.0], 0.0, 2.0).unwrap(),
            60,
            Aggregation::Mean,
        )
        .unwrap();
        prop_assert!(enc.push(0, bad).is_err());
        prop_assert!(sms_core::stats::FiniteF64::new(bad).is_err());
    }

    #[test]
    fn symbol_parse_fuzz(text in "[01ab]{0,20}") {
        match text.parse::<Symbol>() {
            Ok(sym) => {
                prop_assert!(text.chars().all(|c| c == '0' || c == '1'));
                prop_assert_eq!(sym.to_string(), text);
            }
            Err(_) => {
                prop_assert!(
                    text.is_empty()
                        || text.len() > 16
                        || text.chars().any(|c| c != '0' && c != '1')
                );
            }
        }
    }
}
