//! Seeded panic-injection fuzz for the supervised worker pool: thousands of
//! runs with deterministic panic schedules must produce zero escaping
//! panics, index-ordered reports identical at every worker count, and
//! counter totals that match the injected schedule exactly.
//!
//! Override the iteration count with `PANIC_FUZZ_ITERS` (a quick smoke
//! value while debugging, or a larger soak).

use smart_meter_symbolics::core::pool::{
    run_indexed_supervised, Outcome, PoolConfig, RetryPolicy, SupervisorPolicy,
};

/// SplitMix64 — the same deterministic scramble the pool's retry jitter
/// uses, re-derived here so the schedule needs no RNG state.
fn splitmix64(mut x: u64) -> u64 {
    x = x.wrapping_add(0x9E37_79B9_7F4A_7C15);
    x = (x ^ (x >> 30)).wrapping_mul(0xBF58_476D_1CE4_E5B9);
    x = (x ^ (x >> 27)).wrapping_mul(0x94D0_49BB_1331_11EB);
    x ^ (x >> 31)
}

/// How many leading attempts of job `idx` panic in iteration `iter`:
/// 0 (clean), 1 (flaky, recoverable), or 2 (dead under 2 attempts).
fn panics_for(iter: u64, idx: usize) -> u32 {
    (splitmix64(iter ^ ((idx as u64) << 17)) % 3) as u32
}

/// The ISSUE's headline robustness guarantee: ≥1k seeded iterations of a
/// 16-job supervised run where every job panics 0, 1, or 2 times by
/// schedule, retried at most twice with zero backoff — at workers 1, 2,
/// and 8. No panic may escape (the harness would abort the test), every
/// report must be byte-identical across worker counts, and the stats
/// counters must equal the totals the schedule implies.
#[test]
fn seeded_panic_fuzz_never_escapes_and_reports_deterministically() {
    let iters: u64 =
        std::env::var("PANIC_FUZZ_ITERS").ok().and_then(|s| s.parse().ok()).unwrap_or(1_000);
    const JOBS: usize = 16;
    let policy = SupervisorPolicy::with_retry(RetryPolicy::with_max_attempts(2).no_backoff());

    for iter in 0..iters {
        // The schedule implies exact totals: a 1-panic job costs one panic
        // and one retry; a 2-panic job costs two panics, one retry, and one
        // gave-up slot.
        let schedule: Vec<u32> = (0..JOBS).map(|idx| panics_for(iter, idx)).collect();
        let want_panics: u64 = schedule.iter().map(|&p| p.min(2) as u64).sum();
        let want_retries: u64 = schedule.iter().filter(|&&p| p >= 1).count() as u64;
        let want_gave_up: u64 = schedule.iter().filter(|&&p| p >= 2).count() as u64;

        let mut reference: Option<Vec<Outcome<usize>>> = None;
        for workers in [1usize, 2, 8] {
            let report = run_indexed_supervised(
                JOBS,
                &PoolConfig::with_workers(workers),
                &policy,
                |idx, attempt| {
                    if attempt <= panics_for(iter, idx) {
                        panic!("injected: iter {iter} job {idx} attempt {attempt}");
                    }
                    idx * 10
                },
            );

            assert_eq!(report.results.len(), JOBS, "iter {iter} workers {workers}");
            for (idx, outcome) in report.results.iter().enumerate() {
                match (schedule[idx], outcome) {
                    (0, Outcome::Ok(v)) => assert_eq!(*v, idx * 10),
                    (1, Outcome::Retried { value, retries }) => {
                        assert_eq!((*value, *retries), (idx * 10, 1));
                    }
                    (2, Outcome::Panicked { attempts, .. }) => assert_eq!(*attempts, 2),
                    (p, o) => {
                        panic!("iter {iter} job {idx}: {p} panics gave {o:?} (workers {workers})")
                    }
                }
            }
            // Failures mirror the failed outcomes, in index order.
            let failed: Vec<usize> = (0..JOBS).filter(|&i| schedule[i] >= 2).collect();
            assert_eq!(
                report.errors.iter().map(|e| e.index).collect::<Vec<_>>(),
                failed,
                "iter {iter} workers {workers}"
            );

            assert_eq!(report.stats.panics, want_panics, "iter {iter} workers {workers}");
            assert_eq!(report.stats.retries, want_retries, "iter {iter} workers {workers}");
            assert_eq!(report.stats.gave_up, want_gave_up, "iter {iter} workers {workers}");
            assert_eq!(report.stats.deadline_exceeded, 0);

            // Worker count must not change a single outcome or error.
            match &reference {
                None => reference = Some(report.results),
                Some(want) => {
                    assert_eq!(&report.results, want, "iter {iter} workers {workers}")
                }
            }
        }
    }
}

/// Panic payloads that are not `&str`/`String` still surface as outcomes
/// with a stable placeholder message, never as an escape.
#[test]
fn non_string_panic_payloads_are_contained() {
    let policy = SupervisorPolicy::with_retry(RetryPolicy::with_max_attempts(1));
    let report =
        run_indexed_supervised(3, &PoolConfig::with_workers(2), &policy, |idx, _attempt| {
            if idx == 1 {
                std::panic::panic_any(42usize);
            }
            idx
        });
    assert!(report.results[0].is_success() && report.results[2].is_success());
    match &report.results[1] {
        Outcome::Panicked { message, attempts } => {
            assert_eq!(*attempts, 1);
            assert_eq!(message, "non-string panic payload");
        }
        other => panic!("expected a contained panic, got {other:?}"),
    }
    assert_eq!(report.stats.panics, 1);
}
