//! Cross-crate determinism guarantees for the parallel fleet-encoding
//! engine: its output must be byte-identical to the serial `SymbolicCodec`
//! path regardless of worker count, and sharding must never drop or
//! reorder a house.

use meterdata::generator::fleet_series;
use proptest::prelude::*;
use smart_meter_symbolics::core::engine::{
    encode_fleet, EngineConfig, FleetEngine, PanicPlan, QuarantinePolicy, QuarantineReason,
    TableMode,
};
use smart_meter_symbolics::core::horizontal::SymbolicSeries;
use smart_meter_symbolics::core::pipeline::CodecBuilder;
use smart_meter_symbolics::core::pool::RetryPolicy;
use smart_meter_symbolics::core::quality::SanitizerConfig;
use smart_meter_symbolics::core::separators::SeparatorMethod;
use smart_meter_symbolics::core::timeseries::{Sample, TimeSeries};

fn builder() -> CodecBuilder {
    CodecBuilder::new()
        .method(SeparatorMethod::Median)
        .alphabet_size(16)
        .expect("16 symbols")
        .window_secs(3600)
}

/// Serial reference: per-house train + encode through `SymbolicCodec`.
fn serial_reference(fleet: &[TimeSeries], b: &CodecBuilder) -> Vec<SymbolicSeries> {
    fleet.iter().map(|h| b.train(h).expect("train").encode(h).expect("encode")).collect()
}

/// The acceptance-gate determinism test: a seeded 50-house fleet encodes
/// byte-identically through the engine at 1, 2, and 8 workers.
#[test]
fn engine_matches_serial_on_50_house_fleet_for_all_worker_counts() {
    let fleet = fleet_series(2013, 50, 2, 600).expect("fleet generator");
    assert_eq!(fleet.len(), 50);
    let b = builder();
    let serial = serial_reference(&fleet, &b);

    for workers in [1usize, 2, 8] {
        let engine = FleetEngine::new(b.clone(), EngineConfig::with_workers(workers));
        let enc = engine.encode_fleet(&fleet).expect("engine encode");
        assert_eq!(enc.series.len(), fleet.len(), "workers={workers}");
        assert_eq!(enc.series, serial, "workers={workers}");
        assert_eq!(enc.stats.houses, fleet.len());
        assert_eq!(
            enc.stats.samples_in,
            fleet.iter().map(|h| h.len() as u64).sum::<u64>(),
            "workers={workers}"
        );
    }
}

/// Shared-table mode is also deterministic across worker counts (it just
/// has a different — pooled — serial reference).
#[test]
fn shared_table_mode_is_worker_count_invariant() {
    let fleet = fleet_series(7, 20, 1, 900).expect("fleet generator");
    let b = builder();
    let reference =
        FleetEngine::new(b.clone(), EngineConfig::with_workers(1).table_mode(TableMode::Shared))
            .encode_fleet(&fleet)
            .expect("1-worker shared encode")
            .series;
    for workers in [2usize, 8] {
        let config = EngineConfig::with_workers(workers).table_mode(TableMode::Shared);
        let enc = FleetEngine::new(b.clone(), config).encode_fleet(&fleet).expect("shared encode");
        assert_eq!(enc.series, reference, "workers={workers}");
    }
}

/// The supervised acceptance gate: a fleet with NaN-corrupted houses *and*
/// seeded panicking encode jobs completes under `Isolate` at 1, 2, and 8
/// workers — clean houses byte-identical to the serial no-fault reference,
/// corrupted houses quarantined with dirty-data reasons, flaky houses
/// recovered by retries, and the whole report independent of worker count.
#[test]
fn supervised_fleet_is_worker_count_invariant_under_faults() {
    let mut fleet = fleet_series(2013, 20, 1, 600).expect("fleet generator");
    let b = builder();
    let serial = serial_reference(&fleet, &b);

    // Houses 3 and 11 carry NaN runs (unrepairable under a strict
    // sanitizer); houses 5 and 14 panic on their first encode attempt.
    for &h in &[3usize, 11] {
        let mut samples: Vec<Sample> = fleet[h].samples().to_vec();
        let mid = samples.len() / 2;
        for s in &mut samples[mid..mid + 4] {
            s.v = f64::NAN;
        }
        fleet[h] = TimeSeries::from_samples_unchecked(samples);
    }
    let chaos = PanicPlan { houses: [5usize, 14].into_iter().collect(), panics_per_job: 1 };

    let mut reference = None;
    for workers in [1usize, 2, 8] {
        let config = EngineConfig::with_workers(workers)
            .quarantine(QuarantinePolicy::Isolate)
            .sanitizer(SanitizerConfig::strict())
            .retry(RetryPolicy::with_max_attempts(2).no_backoff())
            .chaos(chaos.clone());
        let enc = FleetEngine::new(b.clone(), config).encode_fleet(&fleet).expect("encode");

        assert_eq!(
            enc.quarantined.iter().map(|q| q.house).collect::<Vec<_>>(),
            vec![3, 11],
            "workers={workers}"
        );
        for q in &enc.quarantined {
            assert!(matches!(q.reason, QuarantineReason::DirtyData(_)), "{q:?}");
        }
        for (i, got) in enc.series.iter().enumerate() {
            if enc.is_quarantined(i) {
                assert!(got.is_empty(), "quarantined house {i} must hold a placeholder");
            } else {
                assert_eq!(got, &serial[i], "house {i} diverged (workers={workers})");
            }
        }
        let pool = enc.stats.pool.expect("pool stats");
        assert_eq!((pool.panics, pool.retries, pool.gave_up), (2, 2, 0), "workers={workers}");
        let quality = enc.stats.quality.expect("quality stats");
        assert_eq!(quality.quarantined, 2, "workers={workers}");

        match &reference {
            None => reference = Some((enc.series.clone(), enc.quarantined.clone())),
            Some((series, quarantined)) => {
                assert_eq!(&enc.series, series, "workers={workers}");
                assert_eq!(&enc.quarantined, quarantined, "workers={workers}");
            }
        }
    }
}

/// Build a synthetic fleet where every house's values are unique to that
/// house, so any dropped, duplicated, or reordered house changes the
/// encoded output for its slot.
fn tagged_fleet(houses: usize, samples: usize) -> Vec<TimeSeries> {
    (0..houses)
        .map(|h| {
            let values: Vec<f64> = (0..samples)
                .map(|i| 10.0 + (h * 1_000) as f64 + ((i * 37 + h * 13) % 400) as f64)
                .collect();
            TimeSeries::from_regular(0, 600, &values).expect("regular series")
        })
        .collect()
}

proptest! {
    #![proptest_config(ProptestConfig::with_cases(24))]

    /// Sharding across any worker count never drops or reorders a house:
    /// slot `i` of the engine output always equals the serial encoding of
    /// house `i`, and the output length always equals the fleet size.
    #[test]
    fn sharding_never_drops_or_reorders_a_house(
        houses in 0usize..40,
        workers in 1usize..9,
        samples in 24usize..120,
    ) {
        let fleet = tagged_fleet(houses, samples);
        let b = builder();
        let config = EngineConfig::with_workers(workers);
        let got = encode_fleet(&fleet, &b, &config).expect("engine encode");
        prop_assert_eq!(got.len(), fleet.len());
        for (i, house) in fleet.iter().enumerate() {
            let want = b.train(house).expect("train").encode(house).expect("encode");
            prop_assert_eq!(&got[i], &want, "house {} misplaced (workers={})", i, workers);
        }
    }
}
