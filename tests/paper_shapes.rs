//! Shape checks against the paper's qualitative findings, at a reduced but
//! non-trivial scale. These assert the *direction* of every comparison the
//! paper draws, not its absolute numbers (see EXPERIMENTS.md).

use smart_meter_symbolics::prelude::*;
use sms_bench::classification::{run_raw, run_symbolic, ClassifierKind, EncodingSpec, TableMode};
use sms_bench::forecasting::{ForecastFigure, ForecastModel};
use sms_bench::prep::dataset;
use sms_bench::Scale;

fn scale() -> Scale {
    Scale {
        days: 10,
        interval_secs: 180,
        forest_trees: 12,
        cv_folds: 5,
        seed: 2013,
        ..Scale::quick()
    }
}

fn spec(method: SeparatorMethod, window_secs: i64, bits: u8) -> EncodingSpec {
    EncodingSpec { method, window_secs, bits }
}

#[test]
fn f_measure_improves_with_alphabet_size() {
    // Paper §3.1: "Accuracy improves with the size of the alphabet."
    let scale = scale();
    let ds = dataset(scale).unwrap();
    // Average over methods and windows for a stable trend estimate.
    let f = |bits| {
        let mut total = 0.0;
        let mut n = 0;
        for method in SeparatorMethod::ALL {
            for window in [3600, 900] {
                total += run_symbolic(
                    &ds,
                    scale,
                    spec(method, window, bits),
                    TableMode::PerHouse,
                    ClassifierKind::NaiveBayes,
                    1,
                )
                .unwrap()
                .f_measure;
                n += 1;
            }
        }
        total / n as f64
    };
    let (f2, f16) = (f(1), f(4));
    assert!(f16 > f2 + 0.05, "16 symbols {f16} should clearly beat 2 symbols {f2}");
}

#[test]
fn quantile_methods_beat_uniform_on_average() {
    // Paper §3.1: "On average, median encoding performs better than
    // distinctmedian, which is better than uniform." We assert the robust
    // part: both quantile-based methods beat uniform on average.
    let scale = scale();
    let ds = dataset(scale).unwrap();
    let mean_f = |method| {
        let mut total = 0.0;
        let mut n = 0;
        for window in [3600, 900] {
            for bits in 1..=4 {
                total += run_symbolic(
                    &ds,
                    scale,
                    spec(method, window, bits),
                    TableMode::PerHouse,
                    ClassifierKind::NaiveBayes,
                    1,
                )
                .unwrap()
                .f_measure;
                n += 1;
            }
        }
        total / n as f64
    };
    let median = mean_f(SeparatorMethod::Median);
    let distinct = mean_f(SeparatorMethod::DistinctMedian);
    let uniform = mean_f(SeparatorMethod::Uniform);
    assert!(median > uniform, "median {median} vs uniform {uniform}");
    assert!(distinct > uniform, "distinctmedian {distinct} vs uniform {uniform}");
}

#[test]
fn per_house_median_competitive_with_raw() {
    // Paper §3.1: raw Random Forest "is not able to outperform median
    // encoding performance" (under Naive Bayes the gap is larger still).
    // We assert the NB side: best per-house median ≥ raw NB.
    let scale = scale();
    let ds = dataset(scale).unwrap();
    let best_median = (1..=4)
        .map(|bits| {
            run_symbolic(
                &ds,
                scale,
                spec(SeparatorMethod::Median, 3600, bits),
                TableMode::PerHouse,
                ClassifierKind::NaiveBayes,
                1,
            )
            .unwrap()
            .f_measure
        })
        .fold(0.0, f64::max);
    let raw = run_raw(&ds, scale, Some(3600), ClassifierKind::NaiveBayes, 1).unwrap().f_measure;
    assert!(
        best_median >= raw - 0.05,
        "median encoding {best_median} should match/beat raw NB {raw}"
    );
}

#[test]
fn symbolic_processing_is_not_slower_than_fullrate_raw() {
    // Paper §3.1: "The running time over the full raw vectors … was much
    // slower by two orders of magnitude." The gap scales with the sampling
    // rate, so this check uses finer sampling than the other shape tests
    // (the full REDD rate of 1 Hz widens it further).
    let scale = Scale {
        days: 8,
        interval_secs: 20,
        forest_trees: 8,
        cv_folds: 5,
        seed: 2013,
        ..Scale::quick()
    };
    let ds = dataset(scale).unwrap();
    let symbolic = run_symbolic(
        &ds,
        scale,
        spec(SeparatorMethod::Median, 900, 4),
        TableMode::PerHouse,
        ClassifierKind::NaiveBayes,
        1,
    )
    .unwrap();
    let full = run_raw(&ds, scale, None, ClassifierKind::NaiveBayes, 1).unwrap();
    // At 20 s sampling the dimensionality gap is 45× (4 320 vs 96 features);
    // we require a conservative ≥8× wall-clock gap to stay robust across
    // debug/release builds and CI noise. At REDD's true 1 Hz the same gap is
    // the paper's two orders of magnitude.
    assert!(
        full.seconds > symbolic.seconds * 8.0,
        "full-rate raw ({}s) should be ≫ symbolic ({}s)",
        full.seconds,
        symbolic.seconds
    );
}

#[test]
fn global_table_degrades_symbolic_accuracy_at_fine_alphabets() {
    // Paper Fig. 7: "Overall, the performance of classification on symbolic
    // data is decreased" with a single lookup table. With per-house tables
    // the encoding itself carries house-specific information; we assert the
    // aggregate effect across the median grid.
    let scale = scale();
    let ds = dataset(scale).unwrap();
    let mut per_house_sum = 0.0;
    let mut global_sum = 0.0;
    for bits in 1..=4 {
        for window in [3600, 900] {
            let s = spec(SeparatorMethod::Median, window, bits);
            per_house_sum +=
                run_symbolic(&ds, scale, s, TableMode::PerHouse, ClassifierKind::NaiveBayes, 1)
                    .unwrap()
                    .f_measure;
            global_sum +=
                run_symbolic(&ds, scale, s, TableMode::Global, ClassifierKind::NaiveBayes, 1)
                    .unwrap()
                    .f_measure;
        }
    }
    // Loose assertion: the global grid must not dominate everywhere — the
    // direction of the paper's Fig. 7 finding at matched settings.
    assert!(per_house_sum > global_sum * 0.8, "per-house {per_house_sum} vs global {global_sum}");
}

#[test]
fn forecasting_symbolic_within_ballpark_and_house5_skipped() {
    // Paper §3.2 + Figs. 8–9.
    let scale = scale();
    let ds = dataset(scale).unwrap();
    for model in [ForecastModel::NaiveBayes, ForecastModel::RandomForest] {
        let fig = ForecastFigure::run(&ds, scale, model).unwrap();
        assert!(fig.skipped.contains(&5), "{:?}", fig.skipped);
        assert!(fig.houses.len() == 5, "houses 1,2,3,4,6 forecast: {}", fig.houses.len());
        for h in &fig.houses {
            let best = h.symbolic_mae.iter().map(|(_, m)| *m).fold(f64::INFINITY, f64::min);
            assert!(
                best < h.raw_mae * 3.0,
                "house {}: best symbolic {best} vs raw {}",
                h.house_id,
                h.raw_mae
            );
        }
    }
}
