//! End-to-end tests of the network-facing fleet gateway: loopback TCP
//! round-trips through the token handshake, length-prefixed framing, the
//! supervised session workers, and graceful drain.
//!
//! The contract under test, at every worker count: the gateway's decoded
//! fleet output is byte-identical to feeding the same per-meter byte
//! streams into an in-process [`FleetIngest`], rejections are counted
//! exactly, and no acknowledged frame is ever missing from the final
//! report.

use std::io::{ErrorKind, Read, Write};
use std::net::{SocketAddr, TcpStream};
use std::time::{Duration, Instant};

use smart_meter_symbolics::core::encoder::{EncodedWindow, SensorMessage};
use smart_meter_symbolics::core::gateway::{
    encode_handshake, Gateway, GatewayConfig, HANDSHAKE_ACK, HANDSHAKE_NAK,
};
use smart_meter_symbolics::core::ingest::{FleetIngest, IngestConfig};
use smart_meter_symbolics::core::wire::encode_message;
use smart_meter_symbolics::prelude::*;
use sms_bench::gateway_exp::run_gateway;
use sms_bench::Scale;

const TOKEN: &[u8] = b"smg-local-dev";

fn shared_table() -> LookupTable {
    let values: Vec<f64> = (0..300).map(|i| ((i * 29) % 640) as f64).collect();
    LookupTable::learn(SeparatorMethod::Median, Alphabet::with_size(8).unwrap(), &values).unwrap()
}

/// A meter's stream: its table frame followed by `windows` window frames
/// whose symbols vary with `meter` so streams differ per meter.
fn meter_wire(table: &LookupTable, meter: u64, windows: i64) -> (Vec<SensorMessage>, Vec<u8>) {
    let mut msgs = vec![SensorMessage::Table(table.clone())];
    msgs.extend((0..windows).map(|i| {
        SensorMessage::Window(EncodedWindow {
            window_start: i * 900,
            symbol: Symbol::from_rank(((i + meter as i64) % 8) as u16, 3).unwrap(),
            samples: 900,
        })
    }));
    let wire = msgs.iter().flat_map(|m| encode_message(m).unwrap()).collect();
    (msgs, wire)
}

/// Streams `wire` for `meter` over a fresh connection and returns the final
/// cumulative ack the server reported before EOF.
fn stream_meter(addr: SocketAddr, meter: u64, wire: &[u8]) -> u64 {
    let mut conn = TcpStream::connect(addr).unwrap();
    conn.write_all(&encode_handshake(meter, TOKEN)).unwrap();
    let mut ack = [0u8; 1];
    conn.read_exact(&mut ack).unwrap();
    assert_eq!(ack[0], HANDSHAKE_ACK, "meter {meter} handshake");
    conn.write_all(wire).unwrap();
    conn.shutdown(std::net::Shutdown::Write).unwrap();
    let mut last = 0u64;
    let mut buf = [0u8; 8];
    while conn.read_exact(&mut buf).is_ok() {
        last = u64::from_le_bytes(buf);
    }
    last
}

#[test]
fn gateway_output_is_byte_identical_to_in_process_ingest_at_every_worker_count() {
    let table = shared_table();
    let meters: Vec<u64> = (0..6).collect();
    let mut reference: Option<Vec<(u64, usize)>> = None;

    for workers in [1usize, 2, 8] {
        let gw = Gateway::start(GatewayConfig::default().workers(workers)).unwrap();
        let addr = gw.local_addr();
        for &m in &meters {
            let (msgs, wire) = meter_wire(&table, m, 12);
            let acked = stream_meter(addr, m, &wire);
            assert_eq!(acked, msgs.len() as u64, "workers={workers} meter={m}");
        }
        let report = gw.shutdown();

        // Replay the identical byte streams through the in-process path.
        let mut fleet = FleetIngest::new(IngestConfig::default());
        for &m in &meters {
            let (msgs, wire) = meter_wire(&table, m, 12);
            let decoded = fleet.ingest(m, &wire).unwrap();
            assert_eq!(decoded, msgs, "in-process decode must round-trip");
            assert_eq!(
                report.output.get(&m).map(Vec::as_slice),
                Some(decoded.as_slice()),
                "workers={workers} meter={m}: gateway output diverges from FleetIngest"
            );
        }

        // The decoded fleet is the same regardless of session parallelism.
        let shape: Vec<(u64, usize)> = report.output.iter().map(|(m, v)| (*m, v.len())).collect();
        match &reference {
            None => reference = Some(shape),
            Some(want) => assert_eq!(&shape, want, "workers={workers}"),
        }
        assert_eq!(report.stats.connections_accepted, meters.len() as u64);
        assert_eq!(report.stats.connections_active, 0);
        assert_eq!(report.pool.workers, workers);
    }
}

#[test]
fn auth_rejections_are_counted_exactly() {
    let gw = Gateway::start(GatewayConfig::default().workers(2)).unwrap();
    let addr = gw.local_addr();
    let table = shared_table();

    let bad = 5u64;
    for m in 0..bad {
        let mut conn = TcpStream::connect(addr).unwrap();
        conn.write_all(&encode_handshake(m, b"intruder")).unwrap();
        let mut ack = [0u8; 1];
        conn.read_exact(&mut ack).unwrap();
        assert_eq!(ack[0], HANDSHAKE_NAK);
        let mut rest = Vec::new();
        assert_eq!(conn.read_to_end(&mut rest).unwrap_or(0), 0, "server must hang up");
    }
    for m in 100..103u64 {
        let (_, wire) = meter_wire(&table, m, 4);
        stream_meter(addr, m, &wire);
    }

    let report = gw.shutdown();
    assert_eq!(report.stats.auth_failures, bad);
    assert_eq!(report.stats.handshake_errors, 0);
    assert_eq!(report.stats.connections_accepted, bad + 3);
    assert_eq!(report.output.len(), 3, "rejected meters contribute no output");
}

#[test]
fn rate_limited_session_is_throttled_counted_and_lossless() {
    // 1 KiB burst, 64 KiB/s refill against a ~28 KiB stream: the bucket
    // must run dry at least once, pausing reads without losing a frame.
    let gw =
        Gateway::start(GatewayConfig::default().workers(1).rate_limit(64 * 1024, 1024)).unwrap();
    let table = shared_table();
    let (msgs, wire) = meter_wire(&table, 9, 1500);
    let acked = stream_meter(gw.local_addr(), 9, &wire);
    assert_eq!(acked, msgs.len() as u64, "throttling must not drop frames");
    let report = gw.shutdown();
    assert!(report.stats.rate_limit_hits >= 1, "token bucket never ran dry: {:?}", report.stats);
    assert_eq!(report.output[&9], msgs);
    assert_eq!(report.stats.quota_closed, 0);
}

#[test]
fn graceful_shutdown_loses_no_acknowledged_frame() {
    let gw = Gateway::start(
        GatewayConfig::default().workers(2).drain_timeout(Duration::from_millis(400)),
    )
    .unwrap();
    let addr = gw.local_addr();
    let table = shared_table();

    // A client that streams frames indefinitely, draining cumulative acks
    // as it goes; it stops when the draining gateway hangs up on it.
    let client = std::thread::spawn(move || -> u64 {
        let mut conn = TcpStream::connect(addr).unwrap();
        conn.write_all(&encode_handshake(77, TOKEN)).unwrap();
        let mut ack = [0u8; 1];
        conn.read_exact(&mut ack).unwrap();
        assert_eq!(ack[0], HANDSHAKE_ACK);
        conn.set_nonblocking(true).unwrap();

        let mut last_ack = 0u64;
        let mut partial: Vec<u8> = Vec::new();
        let drain = |conn: &mut TcpStream, partial: &mut Vec<u8>, last: &mut u64| -> bool {
            let mut buf = [0u8; 64];
            loop {
                match conn.read(&mut buf) {
                    Ok(0) => return true,
                    Ok(n) => {
                        partial.extend_from_slice(&buf[..n]);
                        while partial.len() >= 8 {
                            *last = u64::from_le_bytes(partial[..8].try_into().unwrap());
                            partial.drain(..8);
                        }
                    }
                    Err(e) if e.kind() == ErrorKind::WouldBlock => return false,
                    Err(_) => return true,
                }
            }
        };

        let frame = encode_message(&SensorMessage::Table(table)).unwrap();
        let deadline = Instant::now() + Duration::from_secs(10);
        'outer: for _ in 0..50_000 {
            let mut written = 0usize;
            while written < frame.len() {
                match conn.write(&frame[written..]) {
                    Ok(0) => break 'outer,
                    Ok(n) => written += n,
                    Err(e) if e.kind() == ErrorKind::WouldBlock => {
                        if drain(&mut conn, &mut partial, &mut last_ack) {
                            break 'outer;
                        }
                        std::thread::sleep(Duration::from_micros(100));
                    }
                    Err(_) => break 'outer,
                }
            }
            if drain(&mut conn, &mut partial, &mut last_ack) {
                break;
            }
            if Instant::now() > deadline {
                break;
            }
            std::thread::sleep(Duration::from_micros(200));
        }
        // Collect any acks still in flight until the server closes.
        let final_deadline = Instant::now() + Duration::from_secs(5);
        while !drain(&mut conn, &mut partial, &mut last_ack) {
            if Instant::now() > final_deadline {
                break;
            }
            std::thread::sleep(Duration::from_micros(200));
        }
        last_ack
    });

    // Let traffic flow, then pull the plug mid-stream.
    std::thread::sleep(Duration::from_millis(150));
    let report = gw.shutdown();
    let acked = client.join().unwrap();

    assert!(acked > 0, "client should have streamed long enough to see acks");
    let committed = report.output.get(&77).map(|v| v.len() as u64).unwrap_or(0);
    assert!(
        committed >= acked,
        "{acked} frames acknowledged but only {committed} committed to the output"
    );
    assert_eq!(report.stats.frames_acked, committed, "server-side ack counter matches output");
    assert_eq!(report.stats.connections_active, 0, "drain must close every session");
}

#[test]
fn fault_injected_client_mix_recovers_most_frames_and_stays_identical() {
    let mut scale = Scale::quick();
    scale.days = 2;
    // run_gateway internally fails unless the gateway output is
    // byte-identical to the in-process ingest replay and every clean
    // connection is fully acknowledged.
    let r = run_gateway(scale, 40, 2, true).unwrap();
    assert!(r.auth_rejected > 0, "the mix must include bad tokens");
    assert!(r.truncated_streams > 0, "the mix must include truncated streams");
    assert!(r.slow_writers > 0, "the mix must include slow writers");
    assert_eq!(r.stats.gateway.unwrap().auth_failures, r.auth_rejected);
    assert!(
        r.faulted_recovery >= 0.95,
        "truncated streams recovered only {:.1}% of their frames",
        100.0 * r.faulted_recovery
    );
    assert!(r.stats.ingest.as_ref().unwrap().resyncs > 0, "recovery must involve resyncs");
}
