//! Old-vs-new encode equivalence: the columnar fast path (flat branchless
//! separator scan + batched `Symbol` construction) must be *bit-identical*
//! to the legacy per-value binary-search encode — same `SymbolicSeries`,
//! same wire bytes — for every alphabet the flat scan covers (k ≤ 32),
//! including exact-separator ties, ±∞, subnormals, and long constant runs,
//! and at every worker count.

use proptest::prelude::*;
use smart_meter_symbolics::core::engine::{EngineConfig, FleetEngine};
use smart_meter_symbolics::core::separators::def3_bin_index;
use smart_meter_symbolics::core::wire::{encode_message, encode_message_into};
use smart_meter_symbolics::prelude::*;

/// The pre-fast-path encoder, reconstructed exactly: one binary search per
/// value (Definition 3 tie rule), one checked `Symbol::from_rank` each.
fn legacy_scalar_encode(table: &LookupTable, values: &[f64]) -> Vec<Symbol> {
    values
        .iter()
        .map(|&v| {
            Symbol::from_rank(def3_bin_index(table.separators(), v) as u16, table.resolution_bits())
                .expect("bin index fits the table's resolution")
        })
        .collect()
}

/// Finite training values for learning a table.
fn training_values(max_len: usize) -> impl Strategy<Value = Vec<f64>> {
    prop::collection::vec(-1000.0f64..1000.0, 32..max_len)
}

/// Probe values weighted toward the hard cases: ±∞, ±0.0, subnormals, and
/// plain finite values. Exact separators and constant runs are appended in
/// the test body (they depend on the learned table).
fn probe_values(max_len: usize) -> impl Strategy<Value = Vec<f64>> {
    prop::collection::vec((0u8..16, -2000.0f64..2000.0), 1..max_len).prop_map(|pairs| {
        pairs
            .into_iter()
            .map(|(code, finite)| match code {
                0 => f64::INFINITY,
                1 => f64::NEG_INFINITY,
                2 => f64::MIN_POSITIVE,
                3 => 5e-324, // smallest positive subnormal
                4 => -5e-324,
                5 => 0.0,
                6 => -0.0,
                _ => finite,
            })
            .collect()
    })
}

proptest! {
    #![proptest_config(ProptestConfig::with_cases(48))]

    /// Batched encode == legacy scalar encode, symbol for symbol, over every
    /// flat-scan alphabet (k = 2, 4, 8, 16, 32), every separator method, and
    /// a probe set stacked with ties and edge values.
    #[test]
    fn batched_encode_is_bit_identical_to_legacy_scalar(
        train in training_values(400),
        probes in probe_values(200),
        bits in 1u8..6,
        method_idx in 0usize..SeparatorMethod::ALL.len(),
    ) {
        let method = SeparatorMethod::ALL[method_idx];
        let table = LookupTable::learn(
            method,
            Alphabet::with_resolution(bits).unwrap(),
            &train,
        ).unwrap();

        // Stack the deck: every exact separator (the Definition 3 tie), its
        // immediate neighbours, and a long constant run.
        let mut probes = probes;
        for &b in table.separators() {
            probes.extend([b, b.next_up(), b.next_down()]);
        }
        probes.extend(std::iter::repeat_n(train[0], 64));

        let batched = table.encode_slice(&probes).unwrap();
        let legacy = legacy_scalar_encode(&table, &probes);
        prop_assert_eq!(&batched, &legacy, "k={} method={}", table.size(), method);

        // The scalar entry point agrees with both.
        for (i, &v) in probes.iter().enumerate() {
            prop_assert_eq!(table.encode_value(v).unwrap(), legacy[i], "v={}", v);
        }
    }

    /// Wire framing: the zero-copy `encode_message_into` produces the exact
    /// bytes of the allocating `encode_message`, for tables and windows, and
    /// appends (never clobbers) when the buffer already holds frames.
    #[test]
    fn zero_copy_wire_encode_matches_allocating_encode(
        train in training_values(200),
        bits in 1u8..6,
        start in 0i64..1_000_000,
        samples in 0u16..2000,
    ) {
        let table = LookupTable::learn(
            SeparatorMethod::Median,
            Alphabet::with_resolution(bits).unwrap(),
            &train,
        ).unwrap();
        let rank = (table.size() - 1) as u16;
        let msgs = [
            SensorMessage::Table(table.clone()),
            SensorMessage::Window(EncodedWindow {
                window_start: start,
                symbol: Symbol::from_rank(rank, bits).unwrap(),
                samples: samples as u32,
            }),
        ];
        let mut streamed = Vec::new();
        let mut expected = Vec::new();
        for m in &msgs {
            encode_message_into(m, &mut streamed).unwrap();
            expected.extend(encode_message(m).unwrap());
        }
        prop_assert_eq!(streamed, expected);
    }
}

/// The full engine path on the fast encode: identical `SymbolicSeries` and
/// identical wire bytes at 1, 2, and 8 workers.
#[test]
fn fleet_encode_and_wire_bytes_are_worker_count_invariant() {
    let fleet = meterdata::generator::fleet_series(42, 24, 2, 800).expect("fleet generator");
    let builder = CodecBuilder::new()
        .method(SeparatorMethod::Median)
        .alphabet_size(32)
        .expect("32 symbols")
        .window_secs(900);

    let encode = |workers: usize| {
        FleetEngine::new(builder.clone(), EngineConfig::with_workers(workers))
            .encode_fleet(&fleet)
            .expect("encode")
    };

    let reference = encode(1);
    let reference_wire = fleet_wire_bytes(&reference.series);
    assert!(!reference_wire.is_empty());
    for workers in [2usize, 8] {
        let enc = encode(workers);
        assert_eq!(enc.series, reference.series, "series diverge at workers={workers}");
        assert_eq!(
            fleet_wire_bytes(&enc.series),
            reference_wire,
            "wire bytes diverge at workers={workers}"
        );
    }
}

/// Serializes every house's windows through the zero-copy wire path.
fn fleet_wire_bytes(series: &[SymbolicSeries]) -> Vec<u8> {
    let mut wire = Vec::new();
    for s in series {
        for (t, sym) in s.iter() {
            encode_message_into(
                &SensorMessage::Window(EncodedWindow { window_start: t, symbol: sym, samples: 1 }),
                &mut wire,
            )
            .expect("window frame");
        }
    }
    wire
}
