//! Backpressure contract of the streaming fleet engine, exercised across
//! crate boundaries: `try_feed` must account exactly one stall per
//! rejection and queue nothing on failure, `feed_timeout` must back off
//! (counting every wait) and give up at the deadline, and a producer
//! throttled by either path must still recover the exact event stream an
//! unthrottled run produces.

use meterdata::generator::fleet_series;
use smart_meter_symbolics::core::engine::{EngineConfig, FleetStream, WindowEvent};
use smart_meter_symbolics::core::error::Error;
use smart_meter_symbolics::core::pipeline::{CodecBuilder, SymbolicCodec};
use smart_meter_symbolics::core::separators::SeparatorMethod;
use smart_meter_symbolics::core::timeseries::Timestamp;
use std::time::{Duration, Instant};

/// One generated house plus a codec trained on it.
fn house_and_codec() -> (Vec<(Timestamp, f64)>, SymbolicCodec) {
    let house = fleet_series(42, 1, 1, 300).expect("fleet generator").remove(0);
    let codec = CodecBuilder::new()
        .method(SeparatorMethod::Median)
        .alphabet_size(16)
        .expect("16 symbols")
        .window_secs(3600)
        .train(&house)
        .expect("train");
    (house.iter().collect(), codec)
}

/// A 1-worker, capacity-1 stream saturates after a handful of chunks when
/// nobody drains; this feeds until a *sustained* rejection and returns the
/// index of the permanently rejected chunk. A first rejection can be
/// transient — the worker may drain the input queue moments later — so a
/// chunk only counts as rejected once it has bounced repeatedly with pauses
/// long enough for the worker to park on the full event queue.
fn saturate(stream: &mut FleetStream, samples: &[(Timestamp, f64)]) -> usize {
    for (i, chunk) in samples.chunks(16).enumerate() {
        let mut rejections = 0u32;
        loop {
            match stream.try_feed(0, chunk) {
                Ok(()) => break,
                Err(Error::WouldBlock) if rejections < 25 => {
                    rejections += 1;
                    std::thread::sleep(Duration::from_millis(2));
                }
                Err(Error::WouldBlock) => return i,
                Err(e) => panic!("unexpected error while saturating: {e}"),
            }
        }
    }
    panic!("a never-draining producer must saturate a capacity-1 stream");
}

#[test]
fn try_feed_accounts_exactly_one_stall_per_rejection() {
    let (samples, codec) = house_and_codec();
    let mut stream = FleetStream::spawn(&codec, &EngineConfig::with_workers(1).channel_capacity(1))
        .expect("spawn");

    let mut expected_stalls = 0u64;
    let mut accepted_samples = 0u64;
    let mut rejections = 0u32;
    for chunk in samples.chunks(16) {
        loop {
            let before = stream.samples_in();
            match stream.try_feed(0, chunk) {
                Ok(()) => {
                    // An accepted chunk is counted in full and costs no stall.
                    accepted_samples += chunk.len() as u64;
                    assert_eq!(stream.samples_in(), before + chunk.len() as u64);
                    assert_eq!(stream.backpressure_stalls(), expected_stalls);
                    break;
                }
                Err(Error::WouldBlock) => {
                    // A rejected chunk queues nothing and costs exactly one.
                    expected_stalls += 1;
                    rejections += 1;
                    assert_eq!(stream.samples_in(), before, "rejected chunk must not queue");
                    assert_eq!(stream.backpressure_stalls(), expected_stalls);
                    let _ = stream.drain().expect("drain");
                }
                Err(e) => panic!("unexpected error: {e}"),
            }
        }
    }
    assert!(rejections > 0, "capacity-1 stream must reject at least once");
    assert_eq!(stream.samples_in(), accepted_samples);
    let _ = stream.finish().expect("finish");
}

#[test]
fn feed_timeout_backs_off_counting_every_wait() {
    let (samples, codec) = house_and_codec();
    let mut stream = FleetStream::spawn(&codec, &EngineConfig::with_workers(1).channel_capacity(1))
        .expect("spawn");
    let rejected_at = saturate(&mut stream, &samples);
    let stalls_before = stream.backpressure_stalls();
    let samples_before = stream.samples_in();

    // The pipeline is full and nobody is draining: a 25 ms deadline with a
    // 50 µs starting backoff must wait several times before giving up.
    let timeout = Duration::from_millis(25);
    let chunk: Vec<(Timestamp, f64)> = samples.chunks(16).nth(rejected_at).unwrap().to_vec();
    let t0 = Instant::now();
    match stream.feed_timeout(0, &chunk, timeout) {
        Err(Error::FeedTimeout { waited_ms }) => {
            assert!(waited_ms >= 25, "reported wait below the deadline: {waited_ms} ms");
        }
        other => panic!("saturated feed_timeout must time out, got {other:?}"),
    }
    assert!(t0.elapsed() >= timeout, "gave up before the deadline");
    let waits = stream.backpressure_stalls() - stalls_before;
    assert!(waits >= 2, "a 25 ms deadline must back off repeatedly, saw {waits} waits");
    assert_eq!(stream.samples_in(), samples_before, "timed-out chunk must not queue");

    // The stream is still healthy: drain, retry with a generous deadline.
    let _ = stream.drain().expect("drain");
    stream.feed_timeout(0, &chunk, Duration::from_secs(30)).expect("post-drain feed");
    let _ = stream.finish().expect("finish");
}

#[test]
fn throttled_producer_recovers_the_unthrottled_event_stream() {
    let (samples, codec) = house_and_codec();

    // Reference: blocking feeds through a roomy pipeline.
    let mut roomy = FleetStream::spawn(&codec, &EngineConfig::with_workers(1).channel_capacity(64))
        .expect("spawn roomy");
    for chunk in samples.chunks(16) {
        roomy.feed(0, chunk).expect("feed");
    }
    let mut want = Vec::new();
    want.extend(roomy.finish().expect("finish roomy"));

    // Throttled: capacity 1, every rejection drained and retried.
    let mut tight = FleetStream::spawn(&codec, &EngineConfig::with_workers(1).channel_capacity(1))
        .expect("spawn tight");
    let mut got: Vec<WindowEvent> = Vec::new();
    for chunk in samples.chunks(16) {
        loop {
            match tight.try_feed(0, chunk) {
                Ok(()) => break,
                Err(Error::WouldBlock) => got.extend(tight.drain().expect("drain")),
                Err(e) => panic!("unexpected error: {e}"),
            }
        }
    }
    let stalls = tight.backpressure_stalls();
    got.extend(tight.finish().expect("finish tight"));

    assert!(stalls > 0, "the tight pipeline must have stalled at least once");
    assert_eq!(got, want, "backpressure must never change the emitted windows");
}
