//! Cross-crate guarantees of the telemetry subsystem: engine stats —
//! including the new histograms and span tree — must be byte-identical at
//! every worker count once wall-clock fields are normalized, the legacy
//! `EngineStats::to_json` key layout must survive the migration onto
//! `telemetry::Registry` byte for byte, spans must stay well-formed when
//! supervised encode jobs panic, and both exporters must emit stable,
//! parseable documents.

use meterdata::generator::fleet_series;
use smart_meter_symbolics::core::engine::{
    EngineConfig, EngineStats, EvalStats, FleetEncoding, FleetEngine, PanicPlan, QuarantinePolicy,
};
use smart_meter_symbolics::core::ingest::IngestStats;
use smart_meter_symbolics::core::json::{parse, JsonValue};
use smart_meter_symbolics::core::pipeline::CodecBuilder;
use smart_meter_symbolics::core::pool::{PoolStats, RetryPolicy};
use smart_meter_symbolics::core::quality::{DefectCounts, QualityStats, SanitizerConfig};
use smart_meter_symbolics::core::separators::SeparatorMethod;
use smart_meter_symbolics::core::telemetry::{render_metrics_json, Registry};
use smart_meter_symbolics::core::timeseries::{Sample, TimeSeries};

fn builder() -> CodecBuilder {
    CodecBuilder::new()
        .method(SeparatorMethod::Median)
        .alphabet_size(16)
        .expect("16 symbols")
        .window_secs(3600)
}

/// Zeroes every wall-clock quantity in a stats block so two runs of the
/// same workload can be compared byte for byte. Worker counts and queue
/// high-water marks are scheduling-dependent gauges, so they are
/// normalized too; everything else — counters, histograms, span paths and
/// call counts — is part of the determinism contract and left untouched.
fn scrub(mut s: EngineStats) -> EngineStats {
    s.workers = 0;
    s.train_secs = 0.0;
    s.encode_secs = 0.0;
    if let Some(i) = &mut s.ingest {
        i.decode_secs = 0.0;
        i.feed_secs = 0.0;
    }
    if let Some(e) = &mut s.eval {
        e.train_secs = 0.0;
        e.test_secs = 0.0;
        e.workers = 0;
        e.max_queue_depth = 0;
    }
    if let Some(p) = &mut s.pool {
        p.workers = 0;
        p.max_queue_depth = 0;
    }
    if let Some(q) = &mut s.quality {
        q.sanitize_secs = 0.0;
    }
    for span in &mut s.spans {
        span.secs = 0.0;
    }
    s
}

/// Histograms, counters, span structure: byte-identical engine stats at 1,
/// 2, and 8 workers on a clean fleet.
#[test]
fn engine_stats_are_worker_count_invariant_after_timing_scrub() {
    let fleet = fleet_series(99, 40, 2, 600).expect("fleet generator");
    let b = builder();
    let run = |workers: usize| -> FleetEncoding {
        FleetEngine::new(b.clone(), EngineConfig::with_workers(workers))
            .encode_fleet(&fleet)
            .expect("encode")
    };

    let reference = scrub(run(1).stats).to_json();
    assert!(reference.contains("\"histograms\""));
    for workers in [2usize, 8] {
        assert_eq!(scrub(run(workers).stats).to_json(), reference, "workers={workers}");
    }

    // The histograms actually saw the fleet: one observation per house.
    let stats = run(2).stats;
    assert_eq!(stats.house_samples.count(), 40);
    assert_eq!(stats.house_symbols.count(), 40);
    assert_eq!(stats.house_samples.sum(), fleet.iter().map(|h| h.len() as u64).sum::<u64>());
    // Clean fleet: every house went through the columnar fast path, one
    // batch per house, pushing exactly its symbol count in values.
    assert_eq!(stats.encode_batch_values.count(), 40);
    assert_eq!(stats.encode_batch_values.sum(), stats.house_symbols.sum());
    let pool = stats.pool.expect("pool stats");
    assert_eq!(pool.job_attempts.count(), 40, "one resolved encode job per house");
    assert_eq!(pool.job_attempts.sum(), 40, "clean jobs succeed on attempt 1");
}

/// The supervised path keeps the contract under injected faults: NaN
/// houses quarantined, panicking jobs retried — and the scrubbed stats,
/// histograms and span tree still byte-identical at every worker count.
#[test]
fn faulted_supervised_stats_and_spans_are_worker_count_invariant() {
    let mut fleet = fleet_series(2013, 20, 1, 600).expect("fleet generator");
    for &h in &[3usize, 11] {
        let mut samples: Vec<Sample> = fleet[h].samples().to_vec();
        let mid = samples.len() / 2;
        for s in &mut samples[mid..mid + 4] {
            s.v = f64::NAN;
        }
        fleet[h] = TimeSeries::from_samples_unchecked(samples);
    }
    let chaos = PanicPlan { houses: [5usize, 14].into_iter().collect(), panics_per_job: 1 };
    let b = builder();

    let mut reference: Option<String> = None;
    for workers in [1usize, 2, 8] {
        let config = EngineConfig::with_workers(workers)
            .quarantine(QuarantinePolicy::Isolate)
            .sanitizer(SanitizerConfig::strict())
            .retry(RetryPolicy::with_max_attempts(2).no_backoff())
            .chaos(chaos.clone());
        let enc = FleetEngine::new(b.clone(), config).encode_fleet(&fleet).expect("encode");

        // Spans survive the panics intact: every stage appears exactly
        // once, correctly nested under the root, with no orphan paths.
        let spans = &enc.stats.spans;
        for path in
            ["encode_fleet", "encode_fleet/sanitize", "encode_fleet/train", "encode_fleet/encode"]
        {
            let matches: Vec<_> = spans.iter().filter(|s| s.path == path).collect();
            assert_eq!(matches.len(), 1, "span {path} (workers={workers})");
            assert_eq!(matches[0].calls, 1, "span {path} (workers={workers})");
        }
        for s in spans {
            if let Some((parent, _)) = s.path.rsplit_once('/') {
                assert!(
                    spans.iter().any(|p| p.path == parent),
                    "span {} has no parent {parent}",
                    s.path
                );
            }
        }

        // Retried jobs need 2 attempts; job_attempts counts one entry per
        // resolved job over the 18 surviving houses.
        let pool = enc.stats.pool.as_ref().expect("pool stats");
        assert_eq!(pool.job_attempts.count(), 18, "workers={workers}");
        assert_eq!(pool.job_attempts.sum(), 20, "two flaky houses cost one extra attempt each");
        let quality = enc.stats.quality.as_ref().expect("quality stats");
        assert_eq!(quality.house_defects.count(), 18, "one observation per sanitized house");

        let scrubbed = scrub(enc.stats).to_json();
        match &reference {
            None => reference = Some(scrubbed),
            Some(want) => assert_eq!(&scrubbed, want, "workers={workers}"),
        }
    }
}

/// The migration compat gate: a fully-populated `EngineStats` renders the
/// exact pre-telemetry scalar layout, with the `"histograms"` and
/// `"spans"` sections appended — asserted byte for byte.
#[test]
fn to_json_preserves_legacy_keys_byte_for_byte() {
    let stats = EngineStats {
        workers: 4,
        houses: 7,
        samples_in: 3500,
        symbols_out: 350,
        train_secs: 1.0,
        encode_secs: 0.75,
        ingest: Some(IngestStats {
            frames_ok: 9,
            frames_corrupt: 8,
            resyncs: 7,
            frames_oversized: 6,
            bytes_in: 5,
            bytes_decoded: 11,
            bytes_discarded: 10,
            backpressure_stalls: 4,
            meters_rejected: 3,
            backlog_rejections: 2,
            decode_secs: 0.5,
            feed_secs: 0.25,
            ..IngestStats::default()
        }),
        eval: Some(EvalStats {
            cells: 26,
            folds: 260,
            train_secs: 1.5,
            test_secs: 2.5,
            workers: 4,
            max_queue_depth: 9,
            ..EvalStats::default()
        }),
        pool: Some(PoolStats {
            workers: 4,
            jobs: 7,
            queue_capacity: 64,
            max_queue_depth: 7,
            panics: 2,
            retries: 2,
            gave_up: 0,
            deadline_exceeded: 0,
            respawns: 1,
            ..PoolStats::default()
        }),
        quality: Some(QualityStats {
            houses: 7,
            quarantined: 1,
            samples_in: 3500,
            samples_out: 3400,
            defects: DefectCounts {
                non_finite: 1,
                negative_power: 2,
                duplicate_timestamps: 3,
                out_of_order: 4,
                gaps: 5,
                reset_spikes: 6,
            },
            dropped: 50,
            clamped: 20,
            filled: 30,
            marked_missing: 2,
            sanitize_secs: 0.125,
            ..QualityStats::default()
        }),
        ..EngineStats::default()
    };

    let want = concat!(
        "{\"workers\":4,\"houses\":7,\"samples_in\":3500,\"symbols_out\":350,",
        "\"train_secs\":1.0,\"encode_secs\":0.75,",
        "\"samples_per_sec\":2000.0,\"symbols_per_sec\":200.0,",
        "\"ingest\":{\"frames_ok\":9,\"frames_corrupt\":8,\"resyncs\":7,",
        "\"frames_oversized\":6,\"bytes_in\":5,\"bytes_decoded\":11,",
        "\"bytes_discarded\":10,\"backpressure_stalls\":4,",
        "\"meters_rejected\":3,\"backlog_rejections\":2,",
        "\"decode_secs\":0.5,\"feed_secs\":0.25},",
        "\"eval\":{\"cells\":26,\"folds\":260,\"train_secs\":1.5,\"test_secs\":2.5,",
        "\"workers\":4,\"max_queue_depth\":9},",
        "\"pool\":{\"workers\":4,\"jobs\":7,\"queue_capacity\":64,\"max_queue_depth\":7,",
        "\"panics\":2,\"retries\":2,\"gave_up\":0,\"deadline_exceeded\":0,\"respawns\":1},",
        "\"quality\":{\"houses\":7,\"quarantined\":1,\"samples_in\":3500,",
        "\"samples_out\":3400,\"defects\":{\"non_finite\":1,\"negative_power\":2,",
        "\"duplicate_timestamps\":3,\"out_of_order\":4,\"gaps\":5,\"reset_spikes\":6},",
        "\"dropped\":50,\"clamped\":20,\"filled\":30,\"marked_missing\":2,",
        "\"sanitize_secs\":0.125},",
        "\"histograms\":{",
        "\"sms_engine_house_samples\":{\"unit\":\"samples\",\"count\":0,\"sum\":0,\"buckets\":[]},",
        "\"sms_engine_house_symbols\":{\"unit\":\"symbols\",\"count\":0,\"sum\":0,\"buckets\":[]},",
        "\"sms_engine_encode_batch_values\":{\"unit\":\"values\",\"count\":0,\"sum\":0,\"buckets\":[]},",
        "\"sms_ingest_frame_bytes\":{\"unit\":\"bytes\",\"count\":0,\"sum\":0,\"buckets\":[]},",
        "\"sms_eval_fold_test_rows\":{\"unit\":\"rows\",\"count\":0,\"sum\":0,\"buckets\":[]},",
        "\"sms_pool_job_attempts\":{\"unit\":\"attempts\",\"count\":0,\"sum\":0,\"buckets\":[]},",
        "\"sms_quality_house_defects\":{\"unit\":\"defects\",\"count\":0,\"sum\":0,\"buckets\":[]}",
        "},\"spans\":[]}",
    );
    assert_eq!(stats.to_json(), want);
}

/// Both exporters on a real run: the Prometheus text is stable across
/// renders and line-by-line parseable, histogram bucket series are
/// cumulative and agree with their `_count`, and the merged JSON document
/// round-trips through `sms_core::json` with the documented shape.
#[test]
fn exporters_are_stable_and_parseable() {
    let fleet = fleet_series(7, 10, 1, 900).expect("fleet generator");
    let enc = FleetEngine::new(builder(), EngineConfig::with_workers(2))
        .encode_fleet(&fleet)
        .expect("encode");

    let reg = Registry::with_catalog();
    enc.stats.register_into(&reg);

    let text = reg.render_prometheus();
    assert_eq!(text, reg.render_prometheus(), "exposition must be stable across renders");

    let mut last_bucket: Option<(String, u64)> = None;
    for line in text.lines() {
        if line.starts_with('#') {
            assert!(
                line.starts_with("# HELP ") || line.starts_with("# TYPE "),
                "bad comment line: {line}"
            );
            continue;
        }
        // Every sample line is `name[{labels}] value` with a numeric value.
        let (series, value) = line.rsplit_once(' ').expect("sample line");
        assert!(value.parse::<f64>().is_ok(), "unparseable value in: {line}");
        assert!(series.starts_with("sms_"), "unprefixed series: {line}");

        // Bucket series must be cumulative within one histogram.
        if let Some((name, _)) = series.split_once("_bucket{le=") {
            let count: u64 = value.parse().expect("bucket count");
            if let Some((prev_name, prev_count)) = &last_bucket {
                if prev_name == name {
                    assert!(count >= *prev_count, "non-cumulative buckets in: {line}");
                }
            }
            last_bucket = Some((name.to_string(), count));
        }
    }
    assert!(text.contains("sms_engine_house_samples_bucket{le=\"+Inf\"} 10"));
    assert!(text.contains("sms_engine_house_samples_count 10"));
    assert!(text.contains("sms_span_calls{span=\"encode_fleet\"} 1"));

    let doc = render_metrics_json(&reg, "fleet");
    let parsed = parse(&doc).expect("metrics JSON parses");
    assert_eq!(parsed.get("experiment").and_then(JsonValue::as_str), Some("fleet"));
    for key in ["metrics", "histograms", "spans"] {
        assert!(parsed.get(key).is_some(), "missing top-level key {key}");
    }
    let engine = parsed.get("metrics").and_then(|m| m.get("engine")).expect("engine block");
    assert_eq!(engine.get("houses").and_then(JsonValue::as_u64), Some(10));
    assert_eq!(
        engine.get("samples_in").and_then(JsonValue::as_u64),
        Some(fleet.iter().map(|h| h.len() as u64).sum())
    );
    let hists = parsed.get("histograms").and_then(JsonValue::as_object).expect("histograms");
    assert!(hists.contains_key("sms_engine_house_samples"));
    let spans = parsed.get("spans").and_then(JsonValue::as_array).expect("spans");
    assert!(
        spans.iter().any(|s| s.get("path").and_then(JsonValue::as_str) == Some("encode_fleet")),
        "root span missing from spans section"
    );
}
