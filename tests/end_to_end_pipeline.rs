//! Cross-crate integration: generator → codec → wire → reconstruction.

use smart_meter_symbolics::core::encoder::{SensorMessage, SensorPipeline};
use smart_meter_symbolics::core::horizontal::SymbolicSeries;
use smart_meter_symbolics::meterdata::generator::redd_like;
use smart_meter_symbolics::prelude::*;

fn house_series() -> TimeSeries {
    redd_like(7, 3, 30).generate().unwrap().house(1).unwrap().clone()
}

#[test]
fn codec_roundtrip_error_is_bounded_by_bin_width() {
    let series = house_series();
    let history = series.head_duration(2 * 86_400);
    for method in SeparatorMethod::ALL {
        let codec = CodecBuilder::new()
            .method(method)
            .alphabet_size(16)
            .unwrap()
            .window_secs(900)
            .train(&history)
            .unwrap();
        let aggregated = codec.aggregate(&series).unwrap();
        let symbols = codec.encode(&series).unwrap();
        let decoded = codec.decode(&symbols, SymbolSemantics::RangeCenter).unwrap();
        assert_eq!(aggregated.len(), decoded.len());
        for ((t1, actual), (t2, approx)) in aggregated.iter().zip(decoded.iter()) {
            assert_eq!(t1, t2);
            let sym = codec.table().encode_value(actual).unwrap();
            let (lo, hi) = codec.table().range_of(sym).unwrap();
            // The decoded center must sit inside the symbol's range, and the
            // actual value can only escape the range at the outer bins.
            assert!(approx >= lo - 1e-9 && approx <= hi + 1e-9, "{method}: {approx} ∉ [{lo},{hi}]");
            if sym.rank() > 0 && (sym.rank() as usize) < codec.table().size() - 1 {
                assert!(
                    actual > lo - 1e-9 && actual <= hi + 1e-9,
                    "{method}: inner-bin value {actual} outside ({lo},{hi}]"
                );
            }
        }
    }
}

#[test]
fn online_pipeline_matches_batch_encoding() {
    let series = house_series();
    let mut pipeline = SensorPipeline::new(
        SeparatorMethod::Median,
        Alphabet::with_size(16).unwrap(),
        900,
        Aggregation::Mean,
        2 * 86_400,
    )
    .unwrap();
    let mut online: Vec<(Timestamp, Symbol)> = Vec::new();
    let mut table = None;
    for (t, v) in series.iter() {
        for m in pipeline.push(t, v).unwrap() {
            match m {
                SensorMessage::Table(t) | SensorMessage::EpochTable { table: t, .. } => {
                    table = Some(t)
                }
                SensorMessage::Window(w) => online.push((w.window_start, w.symbol)),
            }
        }
    }
    for m in pipeline.finish() {
        if let SensorMessage::Window(w) = m {
            online.push((w.window_start, w.symbol));
        }
    }
    let table = table.expect("pipeline must emit its table");

    // Batch reference: same table, same windows.
    let codec = CodecBuilder::new().window_secs(900).with_table(table);
    let batch = codec.encode(&series).unwrap();
    let batch_pairs: Vec<(Timestamp, Symbol)> = batch.iter().collect();
    assert_eq!(online, batch_pairs);
}

#[test]
fn wire_roundtrip_preserves_symbols_and_tables() {
    let series = house_series();
    let history = series.head_duration(86_400);
    let codec = CodecBuilder::new()
        .method(SeparatorMethod::DistinctMedian)
        .alphabet_size(8)
        .unwrap()
        .window_secs(3600)
        .train(&history)
        .unwrap();
    let symbols = codec.encode(&series).unwrap();

    // Table over JSON.
    let json = codec.table().to_json().unwrap();
    let table2 = LookupTable::from_json(&json).unwrap();
    assert_eq!(codec.table(), &table2);

    // Symbols over packed bits (regular hourly stream).
    let packed = symbols.pack_symbols();
    assert_eq!(packed.len(), (symbols.len() * 3).div_ceil(8));
    let first_t = symbols.timestamps()[0];
    let restored =
        SymbolicSeries::unpack_symbols(&packed, 3, symbols.len(), first_t, 3600).unwrap();
    assert_eq!(restored.symbols(), symbols.symbols());
}

#[test]
fn truncation_equals_coarse_reencoding_on_real_data() {
    let series = house_series();
    let history = series.head_duration(2 * 86_400);
    for method in SeparatorMethod::ALL {
        let codec = CodecBuilder::new()
            .method(method)
            .alphabet_size(16)
            .unwrap()
            .window_secs(900)
            .train(&history)
            .unwrap();
        let fine = codec.encode(&series).unwrap();
        for bits in [1u8, 2, 3] {
            let coarse_table = codec.table().coarsen(bits).unwrap();
            let coarse_codec = CodecBuilder::new().window_secs(900).with_table(coarse_table);
            let direct = coarse_codec.encode(&series).unwrap();
            let truncated = fine.truncate_resolution(bits).unwrap();
            assert_eq!(direct.symbols(), truncated.symbols(), "{method} at {bits} bits");
        }
    }
}

#[test]
fn adaptive_encoder_handles_generated_regime_change() {
    use smart_meter_symbolics::core::adaptive::AdaptiveEncoder;

    // Two different houses spliced: distribution changes at the seam.
    let ds = redd_like(3, 2, 30).generate().unwrap();
    let small = ds.house(2).unwrap();
    let big = ds.house(6).unwrap();
    let train = small.head_duration(86_400).values();
    let table =
        LookupTable::learn(SeparatorMethod::Median, Alphabet::with_size(8).unwrap(), &train)
            .unwrap();
    let mut enc = AdaptiveEncoder::new(
        table,
        train,
        SeparatorMethod::Median,
        900,
        Aggregation::Mean,
        0.3,
        1000,
    )
    .unwrap();
    let mut t = 0i64;
    for (_, v) in small.iter() {
        enc.push(t, v).unwrap();
        t += 30;
    }
    let before = enc.stats().rebuilds;
    for (_, v) in big.iter() {
        enc.push(t, v * 3.0).unwrap();
        t += 30;
    }
    assert!(enc.stats().rebuilds > before, "splice to a 3× bigger house must trigger a rebuild");
}

#[test]
fn csv_io_roundtrips_generated_dataset() {
    use smart_meter_symbolics::meterdata::io::{read_dataset, write_dataset};
    let ds = redd_like(11, 1, 300).generate().unwrap();
    let dir = std::env::temp_dir().join(format!("sms_e2e_io_{}", std::process::id()));
    let _ = std::fs::remove_dir_all(&dir);
    write_dataset(&ds, &dir).unwrap();
    let back = read_dataset(&dir).unwrap();
    assert_eq!(back, ds);
    let _ = std::fs::remove_dir_all(&dir);
}
