//! Integration tests for the extension features (§4 directions and the
//! supporting machinery), exercised end-to-end on generated meter data.

use smart_meter_symbolics::core::distance::{prefix_distance, rank_l1, table_distance};
use smart_meter_symbolics::core::encoder::SensorMessage;
use smart_meter_symbolics::core::utility::{reconstruction_separators, supervised_separators};
use smart_meter_symbolics::core::wire::{encode_message, FrameDecoder};
use smart_meter_symbolics::meterdata::generator::redd_like;
use smart_meter_symbolics::prelude::*;
use sms_ml::arff::{from_arff, to_arff};
use sms_ml::classifier::Classifier;
use sms_ml::eval::cross_validate;
use sms_ml::feature::rank_features;
use sms_ml::report::{classification_report, confusion_table};

fn two_house_codecs() -> (SymbolicCodec, SymbolicCodec, TimeSeries, TimeSeries) {
    let ds = redd_like(21, 3, 60).generate().unwrap();
    let h1 = ds.house(1).unwrap().clone();
    let h6 = ds.house(6).unwrap().clone();
    let mk = |s: &TimeSeries| {
        CodecBuilder::new()
            .method(SeparatorMethod::Median)
            .alphabet_size(16)
            .unwrap()
            .window_secs(3600)
            .train(&s.head_duration(2 * 86_400))
            .unwrap()
    };
    (mk(&h1), mk(&h6), h1, h6)
}

#[test]
fn mixed_resolution_distance_pipeline() {
    let (c1, c6, h1, h6) = two_house_codecs();
    let s1 = c1.encode(&h1.skip_duration(2 * 86_400)).unwrap();
    let s6 = c6.encode(&h6.skip_duration(2 * 86_400)).unwrap();

    // Same-resolution distance works; after truncating one side, only the
    // prefix distance still applies.
    let full = rank_l1(&s1, &s6).unwrap();
    assert!(full.is_finite());
    let coarse6 = s6.truncate_resolution(2).unwrap();
    assert!(rank_l1(&s1, &coarse6).is_err(), "rank_l1 demands equal resolutions");
    let mixed = prefix_distance(&s1, &coarse6).unwrap();
    assert!(mixed.is_finite() && mixed >= 0.0);

    // Watt-space distance through each house's own table separates the
    // big consumer (house 6) from the average one (house 1).
    let d = table_distance(&s1, c1.table(), &s6, c6.table()).unwrap();
    assert!(d > 100.0, "house 6 runs far hotter than house 1: {d} W");
}

#[test]
fn binary_wire_carries_a_whole_sensor_session() {
    let (c1, _, h1, _) = two_house_codecs();
    let symbols = c1.encode(&h1).unwrap();

    let mut wire = Vec::new();
    wire.extend(encode_message(&SensorMessage::Table(c1.table().clone())).unwrap());
    for (t, sym) in symbols.iter() {
        wire.extend(
            encode_message(&SensorMessage::Window(
                smart_meter_symbolics::core::encoder::EncodedWindow {
                    window_start: t,
                    symbol: sym,
                    samples: 60,
                },
            ))
            .unwrap(),
        );
    }

    // Decode in awkward chunk sizes.
    let mut dec = FrameDecoder::new();
    let mut restored_table = None;
    let mut restored = Vec::new();
    for chunk in wire.chunks(7) {
        dec.feed(chunk);
        for m in dec.drain().unwrap() {
            match m {
                SensorMessage::Table(t) | SensorMessage::EpochTable { table: t, .. } => {
                    restored_table = Some(t)
                }
                SensorMessage::Window(w) => restored.push((w.window_start, w.symbol)),
            }
        }
    }
    assert_eq!(restored_table.as_ref(), Some(c1.table()));
    let expected: Vec<(Timestamp, Symbol)> = symbols.iter().collect();
    assert_eq!(restored, expected);
}

#[test]
fn markov_forecaster_competitive_on_meter_data() {
    use sms_bench::forecasting::{ForecastFigure, ForecastModel};
    use sms_bench::prep::dataset;
    use sms_bench::Scale;

    let scale = Scale {
        days: 10,
        interval_secs: 300,
        forest_trees: 8,
        cv_folds: 3,
        seed: 77,
        ..Scale::quick()
    };
    let ds = dataset(scale).unwrap();
    let markov = ForecastFigure::run(&ds, scale, ForecastModel::Markov).unwrap();
    assert!(markov.skipped.contains(&5));
    for h in &markov.houses {
        let best = h.symbolic_mae.iter().map(|(_, m)| *m).fold(f64::INFINITY, f64::min);
        assert!(
            best < h.raw_mae * 4.0,
            "house {}: markov best {best} vs raw {}",
            h.house_id,
            h.raw_mae
        );
    }
}

#[test]
fn utility_separators_work_inside_lookup_tables() {
    let ds = redd_like(33, 3, 120).generate().unwrap();
    // Pool hourly values with house labels.
    let mut values = Vec::new();
    let mut labels = Vec::new();
    for (idx, r) in ds.records().iter().enumerate() {
        let hourly = aggregate_by_window(&r.series, 3600, Aggregation::Mean, 1).unwrap();
        values.extend(hourly.values());
        labels.extend(std::iter::repeat_n(idx, hourly.len()));
    }
    for seps in [
        supervised_separators(&values, &labels, 8).unwrap(),
        reconstruction_separators(&values, 8).unwrap(),
    ] {
        let table = LookupTable::from_parts(
            SeparatorMethod::Uniform,
            Alphabet::with_size(8).unwrap(),
            seps,
            &values,
        )
        .unwrap();
        // Encode/decode stays within range; coarsening still works.
        for &v in values.iter().step_by(13) {
            let sym = table.encode_value(v).unwrap();
            let (lo, hi) = table.range_of(sym).unwrap();
            let dec = table.decode_symbol(sym, SymbolSemantics::RangeCenter).unwrap();
            assert!(dec >= lo - 1e-9 && dec <= hi + 1e-9);
        }
        let coarse = table.coarsen(1).unwrap();
        assert_eq!(coarse.size(), 2);
    }
}

#[test]
fn feature_ranking_identifies_informative_hours() {
    use sms_bench::prep::{dataset, per_house_tables, symbolic_day_vectors, PAPER_MIN_COVERAGE};
    use sms_bench::Scale;

    let scale = Scale {
        days: 10,
        interval_secs: 300,
        forest_trees: 4,
        cv_folds: 2,
        seed: 55,
        ..Scale::quick()
    };
    let ds = dataset(scale).unwrap();
    let tables =
        per_house_tables(&ds, SeparatorMethod::Median, 4, scale.training_prefix_secs()).unwrap();
    let inst = symbolic_day_vectors(&ds, 3600, &tables, PAPER_MIN_COVERAGE).unwrap();
    let ranked = rank_features(&inst, 4).unwrap();
    assert_eq!(ranked.len(), 24, "24 hourly attributes ranked");
    assert!(ranked[0].1 > ranked[23].1, "ranking is non-trivial");
    assert!(ranked[0].1 > 0.3, "some hour identifies houses: {}", ranked[0].1);
}

#[test]
fn reports_render_on_real_evaluation() {
    use sms_bench::prep::{dataset, per_house_tables, symbolic_day_vectors, PAPER_MIN_COVERAGE};
    use sms_bench::Scale;
    use sms_ml::naive_bayes::NaiveBayes;

    let scale = Scale {
        days: 8,
        interval_secs: 300,
        forest_trees: 4,
        cv_folds: 3,
        seed: 91,
        ..Scale::quick()
    };
    let ds = dataset(scale).unwrap();
    let tables =
        per_house_tables(&ds, SeparatorMethod::Median, 4, scale.training_prefix_secs()).unwrap();
    let inst = symbolic_day_vectors(&ds, 3600, &tables, PAPER_MIN_COVERAGE).unwrap();
    let cv =
        cross_validate(|| Box::new(NaiveBayes::new()) as Box<dyn Classifier>, &inst, 3, 1).unwrap();
    let names: Vec<String> = (1..=6).map(|i| format!("house{i}")).collect();
    let report = classification_report(&cv.confusion, &names).unwrap();
    assert!(report.contains("house1") && report.contains("weighted avg"));
    let table = confusion_table(&cv.confusion, &names).unwrap();
    assert_eq!(table.lines().count(), 7, "header + 6 rows");
}

#[test]
fn arff_roundtrip_preserves_cv_results() {
    use sms_bench::prep::{dataset, per_house_tables, symbolic_day_vectors, PAPER_MIN_COVERAGE};
    use sms_bench::Scale;
    use sms_ml::naive_bayes::NaiveBayes;

    let scale = Scale {
        days: 8,
        interval_secs: 300,
        forest_trees: 4,
        cv_folds: 3,
        seed: 13,
        ..Scale::quick()
    };
    let ds = dataset(scale).unwrap();
    let tables =
        per_house_tables(&ds, SeparatorMethod::Median, 3, scale.training_prefix_secs()).unwrap();
    let inst = symbolic_day_vectors(&ds, 3600, &tables, PAPER_MIN_COVERAGE).unwrap();
    let text = to_arff(&inst, "roundtrip").unwrap();
    let back = from_arff(&text).unwrap();
    assert_eq!(back, inst);

    // Same data ⇒ same CV outcome (deterministic seeds).
    let f = |d: &sms_ml::Instances| {
        cross_validate(|| Box::new(NaiveBayes::new()) as Box<dyn Classifier>, d, 3, 7)
            .unwrap()
            .weighted_f_measure()
    };
    assert_eq!(f(&inst), f(&back));
}
