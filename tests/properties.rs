//! Property-based tests (proptest) over the core invariants, spanning
//! crates: symbol algebra, lookup-table laws, packing, segmentation, SAX
//! lower-bounding, and the ML evaluation protocol.

use proptest::prelude::*;
use smart_meter_symbolics::core::horizontal::horizontal_segmentation;
use smart_meter_symbolics::core::sax::{euclidean, z_normalize, Sax};
use smart_meter_symbolics::core::symbol::{SymbolReader, SymbolWriter};
use smart_meter_symbolics::prelude::*;
use sms_ml::data::{nominal_row, DatasetBuilder};
use sms_ml::eval::stratified_folds;

fn finite_values(max_len: usize) -> impl Strategy<Value = Vec<f64>> {
    prop::collection::vec(0.0f64..10_000.0, 1..max_len)
}

proptest! {
    #![proptest_config(ProptestConfig::with_cases(64))]

    #[test]
    fn symbol_truncate_is_prefix_and_parent_consistent(rank in 0u16..4096, extra in 0u8..4) {
        let bits = 12 + extra; // 12..=15
        let sym = Symbol::from_rank(rank, bits).unwrap();
        for to in 1..=bits {
            let t = sym.truncate(to).unwrap();
            prop_assert!(t.covers(sym));
            prop_assert_eq!(t.to_string(), sym.to_string()[..to as usize].to_string());
        }
        // parent == truncate(bits - 1)
        prop_assert_eq!(sym.parent().unwrap(), sym.truncate(bits - 1).unwrap());
    }

    #[test]
    fn prefix_order_is_antisymmetric_and_transitive(
        a in 0u16..256, la in 1u8..9, b in 0u16..256, lb in 1u8..9, c in 0u16..256, lc in 1u8..9
    ) {
        use std::cmp::Ordering;
        let mk = |r: u16, l: u8| Symbol::from_rank(r % (1 << l.min(15)), l).unwrap();
        let (x, y, z) = (mk(a, la), mk(b, lb), mk(c, lc));
        // Antisymmetry of the strict order.
        if x.partial_cmp_prefix(y) == Some(Ordering::Less) {
            prop_assert_eq!(y.partial_cmp_prefix(x), Some(Ordering::Greater));
        }
        // Transitivity.
        if x.partial_cmp_prefix(y) == Some(Ordering::Less)
            && y.partial_cmp_prefix(z) == Some(Ordering::Less)
        {
            prop_assert_eq!(x.partial_cmp_prefix(z), Some(Ordering::Less));
        }
        // Compatibility is symmetric.
        prop_assert_eq!(x.compatible(y), y.compatible(x));
    }

    #[test]
    fn separators_are_sorted_and_encode_is_monotone(values in finite_values(300), bits in 1u8..5) {
        let alphabet = Alphabet::with_resolution(bits).unwrap();
        for method in SeparatorMethod::ALL {
            let table = LookupTable::learn(method, alphabet, &values).unwrap();
            for w in table.separators().windows(2) {
                prop_assert!(w[0] <= w[1]);
            }
            // Encoding is monotone in the value.
            let mut sorted = values.clone();
            sorted.sort_by(|a, b| a.partial_cmp(b).unwrap());
            for w in sorted.windows(2) {
                let r0 = table.encode_value(w[0]).unwrap().rank();
                let r1 = table.encode_value(w[1]).unwrap().rank();
                prop_assert!(r0 <= r1, "{method}: encode({}) = {r0} > encode({}) = {r1}", w[0], w[1]);
            }
        }
    }

    #[test]
    fn decode_center_lies_in_symbol_range(values in finite_values(200), bits in 1u8..5) {
        let alphabet = Alphabet::with_resolution(bits).unwrap();
        let table = LookupTable::learn(SeparatorMethod::Median, alphabet, &values).unwrap();
        for sym in alphabet.symbols() {
            let (lo, hi) = table.range_of(sym).unwrap();
            for semantics in [SymbolSemantics::RangeCenter, SymbolSemantics::RangeMean] {
                let v = table.decode_symbol(sym, semantics).unwrap();
                prop_assert!(v >= lo - 1e-9 && v <= hi + 1e-9, "{v} ∉ [{lo}, {hi}]");
            }
        }
    }

    #[test]
    fn coarsen_commutes_with_truncation(values in finite_values(400), to_bits in 1u8..4) {
        let table = LookupTable::learn(
            SeparatorMethod::Median,
            Alphabet::with_resolution(4).unwrap(),
            &values,
        )
        .unwrap();
        let coarse = table.coarsen(to_bits).unwrap();
        for &v in &values {
            prop_assert_eq!(
                table.encode_value(v).unwrap().truncate(to_bits).unwrap(),
                coarse.encode_value(v).unwrap()
            );
        }
    }

    #[test]
    fn pack_unpack_roundtrip(ranks in prop::collection::vec(0u16..16, 0..200), bits in 1u8..6) {
        let k = 1u16 << bits;
        let symbols: Vec<Symbol> =
            ranks.iter().map(|&r| Symbol::from_rank(r % k, bits).unwrap()).collect();
        let mut w = SymbolWriter::new();
        for &s in &symbols {
            w.write(s);
        }
        let bytes = w.into_bytes();
        let mut r = SymbolReader::new(&bytes, bits).unwrap();
        let mut restored = Vec::new();
        for _ in 0..symbols.len() {
            restored.push(r.read().unwrap());
        }
        prop_assert_eq!(restored, symbols);
    }

    #[test]
    fn vertical_mean_is_bounded_by_extremes(values in finite_values(200), n in 1usize..20) {
        let series = TimeSeries::from_regular(0, 1, &values).unwrap();
        let agg = vertical_segmentation(&series, n, Aggregation::Mean).unwrap();
        let lo = series.min_value().unwrap();
        let hi = series.max_value().unwrap();
        for (_, v) in agg.iter() {
            prop_assert!(v >= lo - 1e-9 && v <= hi + 1e-9);
        }
        prop_assert_eq!(agg.len(), values.len() / n);
    }

    #[test]
    fn windowed_aggregation_conserves_sum(values in finite_values(300), window in 1i64..100) {
        let series = TimeSeries::from_regular(0, 1, &values).unwrap();
        let agg = aggregate_by_window(&series, window, Aggregation::Sum, 1).unwrap();
        let total: f64 = agg.iter().map(|(_, v)| v).sum();
        let expected: f64 = values.iter().sum();
        prop_assert!((total - expected).abs() < 1e-6 * expected.max(1.0));
    }

    #[test]
    fn sax_mindist_lower_bounds_euclidean(
        a in prop::collection::vec(-100.0f64..100.0, 32..64),
        b in prop::collection::vec(-100.0f64..100.0, 32..64),
    ) {
        let n = a.len().min(b.len());
        let (a, b) = (&a[..n], &b[..n]);
        let sax = Sax::new(8, 6).unwrap();
        let wa = sax.encode(a).unwrap();
        let wb = sax.encode(b).unwrap();
        let lower = sax.mindist(&wa, &wb).unwrap();
        let true_d = euclidean(&z_normalize(a), &z_normalize(b)).unwrap();
        prop_assert!(lower <= true_d + 1e-6, "mindist {lower} > euclidean {true_d}");
    }

    #[test]
    fn stratified_folds_partition_and_balance(
        class_counts in prop::collection::vec(4usize..20, 2..5),
        folds in 2usize..5,
        seed in 0u64..1000,
    ) {
        let n_classes = class_counts.len();
        let mut ds = DatasetBuilder::nominal(1, 2, n_classes).unwrap();
        for (c, &count) in class_counts.iter().enumerate() {
            for i in 0..count {
                ds.push_row(nominal_row(&[(i % 2) as u32], c as u32)).unwrap();
            }
        }
        let fold_sets = stratified_folds(&ds, folds, seed).unwrap();
        // Partition: every row exactly once.
        let mut all: Vec<usize> = fold_sets.iter().flatten().copied().collect();
        all.sort_unstable();
        prop_assert_eq!(all, (0..ds.len()).collect::<Vec<_>>());
        // Balance: fold sizes differ by at most n_classes.
        let sizes: Vec<usize> = fold_sets.iter().map(Vec::len).collect();
        let (min, max) = (sizes.iter().min().unwrap(), sizes.iter().max().unwrap());
        prop_assert!(max - min <= n_classes, "{sizes:?}");
    }

    #[test]
    fn classifier_probabilities_are_distributions(
        rows in prop::collection::vec((0u32..4, 0u32..4, 0u32..3), 6..40)
    ) {
        use sms_ml::naive_bayes::NaiveBayes;
        let mut ds = DatasetBuilder::nominal(2, 4, 3).unwrap();
        for &(f1, f2, c) in &rows {
            ds.push_row(nominal_row(&[f1, f2], c)).unwrap();
        }
        let mut nb = NaiveBayes::new();
        nb.fit(&ds).unwrap();
        for &(f1, f2, _) in rows.iter().take(10) {
            let p = nb.predict_proba(&nominal_row(&[f1, f2], 0)).unwrap();
            prop_assert_eq!(p.len(), 3);
            prop_assert!((p.iter().sum::<f64>() - 1.0).abs() < 1e-9);
            prop_assert!(p.iter().all(|&x| (0.0..=1.0).contains(&x)));
        }
    }

    #[test]
    fn horizontal_segmentation_preserves_length_and_time(values in finite_values(150)) {
        let series = TimeSeries::from_regular(100, 7, &values).unwrap();
        let table = LookupTable::learn(
            SeparatorMethod::Uniform,
            Alphabet::with_size(4).unwrap(),
            &values,
        )
        .unwrap();
        let sym = horizontal_segmentation(&series, &table).unwrap();
        prop_assert_eq!(sym.len(), series.len());
        prop_assert_eq!(sym.timestamps(), &series.timestamps()[..]);
    }
}
